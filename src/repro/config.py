"""Unified compiler configuration.

:class:`FuserConfig` is the single carrier for every search/compile knob the
stack understands.  One frozen value object flows through
:class:`~repro.api.FlashFuser`, :class:`~repro.runtime.batch.BatchCompiler`,
:func:`~repro.runtime.warmup.warmup_workloads` and
:class:`~repro.runtime.server.KernelServer` instead of each of them copying
the same kwarg list, and :meth:`FuserConfig.cache_key_fields` is the one
canonical definition of which knobs shape compiled plans — the plan cache
derives its keys from it, so the key format cannot drift between call sites.

The module also hosts the deprecation machinery for the pre-config API:
shims call :func:`warn_deprecated`, which emits each distinct
:class:`DeprecationWarning` exactly once per process and attributes it to the
*caller* (so the test suite's ``error::DeprecationWarning:repro.*`` filter
turns any internal use of a deprecated path into a hard failure while
downstream callers merely see a warning).
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass, fields, replace as _dataclass_replace
from typing import TYPE_CHECKING, Dict, Optional, Set, Union

from repro.analysis.locks import make_lock
from repro.hardware.registry import device_name_of, get_device
from repro.hardware.spec import HardwareSpec

if TYPE_CHECKING:
    from repro.runtime.cache import PlanCache


# --------------------------------------------------------------------- #
# Deprecation plumbing
# --------------------------------------------------------------------- #
_WARNED: Set[str] = set()
_WARNED_LOCK = make_lock("deprecation-warned")


def warn_deprecated(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a :class:`DeprecationWarning`, once per ``key``.

    ``stacklevel`` defaults to attributing the warning to the caller of the
    deprecated shim (shim -> this helper is two frames), which is what makes
    module-scoped warning filters distinguish internal from external use.
    """
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which deprecations already fired (test helper)."""
    with _WARNED_LOCK:
        _WARNED.clear()


# --------------------------------------------------------------------- #
# The configuration object
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FuserConfig:
    """Every knob of the FlashFuser compiler stack, as one frozen value.

    Parameters
    ----------
    device:
        Target hardware: a :class:`~repro.hardware.spec.HardwareSpec` or a
        name registered with
        :func:`~repro.hardware.registry.register_device` (``"h100"``,
        ``"a100"``, ...).
    top_k:
        Top-K candidates profiled after the cost-model ranking (11 in the
        paper).
    include_dsm:
        Disable to restrict fusion to a single SM's resources (prior-work
        behaviour), used by the ablation experiments.
    max_tile:
        Largest block tile extent the search considers.
    cache:
        Optional plan cache: a :class:`~repro.runtime.cache.PlanCache`
        instance, or a directory path from which one is created.
    parallelism:
        Cold-compile fan-out.  ``None`` or ``1`` runs the serial search
        engine; a larger value shards the candidate space across that many
        worker processes.  Never part of the cache key — it cannot change
        the selected plan.
    transfer:
        Warm-start cold compiles from the nearest previously compiled shape
        (same chain kind/device, different M/N/K): a bounded local search
        around the transferred plan replaces full enumeration when it stays
        within ``transfer_bound`` of the chain's cost lower bound.  Off by
        default — a transferred plan may differ from the exact search's, so
        both knobs are part of the cache key.
    transfer_bound:
        Acceptance bound of transferred plans, as a factor over the chain's
        admissible cost lower bound (must be >= 1.0).  Only meaningful with
        ``transfer=True``.
    incremental:
        Memoize kind-independent subchain analysis cores inside the search
        engines, so e.g. a gated-FFN search reuses its standard-FFN prefix
        work.  Plan-neutral (selected plans are bit-identical either way),
        so never part of the cache key.
    rewrite:
        Canonicalize operator graphs (:func:`repro.graphs.rewrite.canonicalize`)
        before chain extraction, so export spellings — interior reshapes,
        transposed weights, swapped gating operands, missing link
        activations — still extract their fusible chains.  On by default.
        Plan-neutral: rewriting changes *which* chains are extracted, never
        which plan a given chain compiles to (an extracted chain has the
        same canonical identity as the same chain built directly), so never
        part of the cache key.
    trace:
        Observability opt-in carried alongside the compile knobs (see
        :mod:`repro.obs.trace`; the ``REPRO_TRACE`` environment variable is
        the usual switch).  Plan-neutral by construction — tracing can never
        change a selected plan — so never part of the cache key.

    Example
    -------
    >>> config = FuserConfig(device="a100", top_k=5)
    >>> config.replace(top_k=7).top_k
    7
    >>> FuserConfig.from_dict(config.to_dict()) == config
    True
    >>> sorted(config.cache_key_fields())
    ['include_dsm', 'max_tile', 'top_k', 'transfer', 'transfer_bound']
    """

    device: Union[str, HardwareSpec] = "h100"
    top_k: int = 11
    include_dsm: bool = True
    max_tile: int = 256
    cache: Optional[Union["PlanCache", str, os.PathLike]] = None
    parallelism: Optional[int] = None
    transfer: bool = False
    transfer_bound: float = 2.0
    incremental: bool = True
    rewrite: bool = True
    trace: bool = False

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.max_tile < 1:
            raise ValueError("max_tile must be >= 1")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError("parallelism must be >= 1 (or None for serial)")
        if self.transfer_bound < 1.0:
            raise ValueError("transfer_bound must be >= 1.0")

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def replace(self, **overrides: object) -> "FuserConfig":
        """A copy with ``overrides`` applied (validated like construction)."""
        if not overrides:
            return self
        return _dataclass_replace(self, **overrides)

    def resolve_device(self) -> HardwareSpec:
        """The concrete :class:`HardwareSpec` this config targets."""
        return get_device(self.device)

    def resolve_cache(self) -> Optional["PlanCache"]:
        """The concrete :class:`PlanCache`, constructing one from a path."""
        if self.cache is None:
            return None
        from repro.runtime.cache import PlanCache

        if isinstance(self.cache, PlanCache):
            return self.cache
        return PlanCache(directory=self.cache)

    def cache_key_fields(self) -> Dict[str, object]:
        """The knobs that shape compiled plans — the plan-cache key part.

        This is the single canonical definition: exactly ``top_k``,
        ``include_dsm``, ``max_tile``, ``transfer`` and ``transfer_bound``
        (the transfer knobs can change which plan is selected, so they must
        partition the cache).  Device identity enters the key separately
        (via the hardware fingerprint) and ``parallelism``, ``incremental``,
        ``rewrite`` and ``cache`` never do — they cannot change the selected
        plan, so toggling them does not invalidate cached plans.
        """
        return {
            "top_k": self.top_k,
            "include_dsm": self.include_dsm,
            "max_tile": self.max_tile,
            "transfer": self.transfer,
            "transfer_bound": self.transfer_bound,
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form, suitable for JSON.

        The device is stored by registry name (an unregistered
        :class:`HardwareSpec` raises — register it first) and the cache by
        its directory path (a memory-only cache raises, since the handle
        cannot survive serialization).
        """
        device = self.device
        if isinstance(device, HardwareSpec):
            name = device_name_of(device)
            if name is None:
                raise ValueError(
                    f"device {device.name!r} is not registered; call "
                    "register_device() before serializing a FuserConfig "
                    "that references it"
                )
            device = name
        cache: Optional[str] = None
        if self.cache is not None:
            from repro.runtime.cache import PlanCache

            if isinstance(self.cache, PlanCache):
                if self.cache.directory is None:
                    raise ValueError(
                        "a memory-only PlanCache cannot be serialized; use a "
                        "directory-backed cache (or cache=None)"
                    )
                cache = str(self.cache.directory)
            else:
                cache = os.fspath(self.cache)
        return {
            "device": device,
            "top_k": self.top_k,
            "include_dsm": self.include_dsm,
            "max_tile": self.max_tile,
            "cache": cache,
            "parallelism": self.parallelism,
            "transfer": self.transfer,
            "transfer_bound": self.transfer_bound,
            "incremental": self.incremental,
            "rewrite": self.rewrite,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuserConfig":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FuserConfig fields {sorted(unknown)}; known: "
                f"{sorted(known)}"
            )
        return cls(**payload)
