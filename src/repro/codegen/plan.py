"""Execution plans: the hand-off between the front-end and the back-end.

An :class:`ExecutionPlan` packages everything the back-end needs to generate
a kernel: the chain, the schedule, the tile sizes, the cluster geometry, the
resource mapping and the dsm_comm plan — plus the predicted and simulated
cost, so experiments can report them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataflow.analyzer import DataflowResult
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.dsm_comm.primitives import CombineOp, CommPlan, DsmPrimitive, PrimitiveKind
from repro.ir.graph import GemmChainSpec


@dataclass
class ExecutionPlan:
    """A fully specified fused-kernel execution plan."""

    chain: GemmChainSpec
    schedule: LoopSchedule
    tile: TileConfig
    geometry: ClusterGeometry
    comm_plan: CommPlan
    volumes: Dict[str, float]
    predicted_cost_us: Optional[float] = None
    simulated_time_us: Optional[float] = None

    @classmethod
    def from_dataflow(
        cls,
        result: DataflowResult,
        predicted_cost_us: Optional[float] = None,
        simulated_time_us: Optional[float] = None,
    ) -> "ExecutionPlan":
        """Build a plan from a dataflow analysis result."""
        return cls(
            chain=result.chain,
            schedule=result.schedule,
            tile=result.tile,
            geometry=result.geometry,
            comm_plan=result.comm_plan,
            volumes=dict(result.volumes),
            predicted_cost_us=predicted_cost_us,
            simulated_time_us=simulated_time_us,
        )

    @property
    def kernel_name(self) -> str:
        """Deterministic kernel name used by the emitter and the runtime table."""
        cluster = "x".join(str(v) for v in self.geometry.as_tuple())
        tiles = "x".join(
            str(self.tile.block_of(dim)) for dim in ("m", "n", "k", "l")
        )
        return f"flashfuser_{self.chain.name}_cls{cluster}_blk{tiles}".replace("-", "_").replace(".", "_")

    # ------------------------------------------------------------------ #
    # Serialization (used by the runtime plan cache)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Serialize the plan to plain JSON-compatible data.

        The kernel IR and CUDA source are *not* stored: both are
        deterministic functions of the plan and are regenerated on load.
        """
        return {
            "chain": self.chain.to_dict(),
            "schedule": {
                "spatial": sorted(self.schedule.spatial),
                "temporal": list(self.schedule.temporal),
            },
            "tile": self.tile.as_dict(),
            "geometry": list(self.geometry.as_tuple()),
            "comm": {
                "clusters_per_output": self.comm_plan.clusters_per_output,
                "primitives": [
                    {
                        "kind": primitive.kind.value,
                        "group_size": primitive.group_size,
                        "combine": primitive.combine.value,
                        "volume_bytes": primitive.volume_bytes,
                        "invocations": primitive.invocations,
                    }
                    for primitive in self.comm_plan.primitives
                ],
            },
            "volumes": dict(self.volumes),
            "predicted_cost_us": self.predicted_cost_us,
            "simulated_time_us": self.simulated_time_us,
        }

    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        chain: Optional[GemmChainSpec] = None,
    ) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        ``chain`` optionally substitutes the stored chain with an equally
        shaped one — the plan cache uses this so an entry compiled under one
        workload name serves requests made under another.
        """
        stored_chain = GemmChainSpec.from_dict(payload["chain"])  # type: ignore[arg-type]
        if chain is not None:
            if not chain.same_shape(stored_chain):
                raise ValueError(
                    "substitute chain does not match the serialized plan: "
                    f"{chain.canonical_dict()} != {stored_chain.canonical_dict()}"
                )
            stored_chain = chain
        schedule_payload = payload["schedule"]
        schedule = LoopSchedule(
            spatial=frozenset(schedule_payload["spatial"]),
            temporal=tuple(schedule_payload["temporal"]),
        )
        tile_payload = payload["tile"]
        tile = TileConfig(
            block_m=int(tile_payload["m"]),
            block_n=int(tile_payload["n"]),
            block_k=int(tile_payload["k"]),
            block_l=int(tile_payload["l"]),
        )
        geometry = ClusterGeometry(*(int(v) for v in payload["geometry"]))
        comm_payload = payload["comm"]
        comm_plan = CommPlan(
            chain=stored_chain,
            geometry=geometry,
            primitives=[
                DsmPrimitive(
                    kind=PrimitiveKind(entry["kind"]),
                    group_size=int(entry["group_size"]),
                    combine=CombineOp(entry["combine"]),
                    volume_bytes=float(entry["volume_bytes"]),
                    invocations=int(entry["invocations"]),
                )
                for entry in comm_payload["primitives"]
            ],
            clusters_per_output=int(comm_payload["clusters_per_output"]),
        )
        return cls(
            chain=stored_chain,
            schedule=schedule,
            tile=tile,
            geometry=geometry,
            comm_plan=comm_plan,
            volumes={str(k): float(v) for k, v in payload["volumes"].items()},
            predicted_cost_us=payload.get("predicted_cost_us"),
            simulated_time_us=payload.get("simulated_time_us"),
        )

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by experiment reports."""
        return {
            "workload": self.chain.name,
            "schedule": self.schedule.label(),
            "cluster": self.geometry.as_tuple(),
            "block_tile": self.tile.as_dict(),
            "dsm_bytes": self.comm_plan.dsm_bytes(),
            "predicted_cost_us": self.predicted_cost_us,
            "simulated_time_us": self.simulated_time_us,
        }
