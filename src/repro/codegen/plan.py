"""Execution plans: the hand-off between the front-end and the back-end.

An :class:`ExecutionPlan` packages everything the back-end needs to generate
a kernel: the chain, the schedule, the tile sizes, the cluster geometry, the
resource mapping and the dsm_comm plan — plus the predicted and simulated
cost, so experiments can report them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataflow.analyzer import DataflowResult
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.dsm_comm.primitives import CommPlan
from repro.ir.graph import GemmChainSpec


@dataclass
class ExecutionPlan:
    """A fully specified fused-kernel execution plan."""

    chain: GemmChainSpec
    schedule: LoopSchedule
    tile: TileConfig
    geometry: ClusterGeometry
    comm_plan: CommPlan
    volumes: Dict[str, float]
    predicted_cost_us: Optional[float] = None
    simulated_time_us: Optional[float] = None

    @classmethod
    def from_dataflow(
        cls,
        result: DataflowResult,
        predicted_cost_us: Optional[float] = None,
        simulated_time_us: Optional[float] = None,
    ) -> "ExecutionPlan":
        """Build a plan from a dataflow analysis result."""
        return cls(
            chain=result.chain,
            schedule=result.schedule,
            tile=result.tile,
            geometry=result.geometry,
            comm_plan=result.comm_plan,
            volumes=dict(result.volumes),
            predicted_cost_us=predicted_cost_us,
            simulated_time_us=simulated_time_us,
        )

    @property
    def kernel_name(self) -> str:
        """Deterministic kernel name used by the emitter and the runtime table."""
        cluster = "x".join(str(v) for v in self.geometry.as_tuple())
        tiles = "x".join(
            str(self.tile.block_of(dim)) for dim in ("m", "n", "k", "l")
        )
        return f"flashfuser_{self.chain.name}_cls{cluster}_blk{tiles}".replace("-", "_").replace(".", "_")

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by experiment reports."""
        return {
            "workload": self.chain.name,
            "schedule": self.schedule.label(),
            "cluster": self.geometry.as_tuple(),
            "block_tile": self.tile.as_dict(),
            "dsm_bytes": self.comm_plan.dsm_bytes(),
            "predicted_cost_us": self.predicted_cost_us,
            "simulated_time_us": self.simulated_time_us,
        }
