"""Back-end: execution plans, kernel IR and CUDA-like code emission.

The paper's back-end lowers the plan selected by the search engine onto
CUTLASS's prologue / mainloop / epilogue kernel structure, inserting the
dsm_comm collectives at the appropriate points (Section V-B).  Without a GPU
toolchain the reproduction emits the same structure as

* a structured :class:`~repro.codegen.kernel_ir.KernelIR` (inspectable by
  tests and by the experiments), and
* human-readable CUDA-like source text
  (:func:`~repro.codegen.cuda_emitter.emit_cuda`), useful for eyeballing what
  the generated kernel would look like.
"""

from repro.codegen.cuda_emitter import emit_cuda
from repro.codegen.kernel_ir import KernelIR, KernelSection, KernelStatement, lower_plan
from repro.codegen.plan import ExecutionPlan

__all__ = [
    "emit_cuda",
    "KernelIR",
    "KernelSection",
    "KernelStatement",
    "lower_plan",
    "ExecutionPlan",
]
