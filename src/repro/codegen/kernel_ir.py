"""Kernel IR: the prologue / mainloop / epilogue structure of a fused kernel.

Section V-B describes how FlashFuser extends the CUTLASS kernel skeleton:

* **prologue** — TMA descriptors, SMEM allocation, DSM semaphore (mbarrier)
  initialisation across the cluster;
* **mainloop** — the temporal loops, the GEMM0 accumulation, the
  all_exchange (Add or Mul), the GEMM1 accumulation fed by the shuffle ring;
* **epilogue** — the scatter-reduce across shuffle groups, the optional TMA
  inter-cluster atomic reduction, and the final store.

:func:`lower_plan` turns an :class:`~repro.codegen.plan.ExecutionPlan` into
this structure so tests and the emitter can inspect it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.codegen.plan import ExecutionPlan
from repro.dsm_comm.primitives import PrimitiveKind
from repro.ir.graph import ChainKind


class KernelSection(Enum):
    """The three CUTLASS-style kernel sections."""

    PROLOGUE = "prologue"
    MAINLOOP = "mainloop"
    EPILOGUE = "epilogue"


@dataclass(frozen=True)
class KernelStatement:
    """One statement of the kernel IR."""

    section: KernelSection
    opcode: str
    detail: str = ""


@dataclass
class KernelIR:
    """Structured representation of one generated kernel."""

    name: str
    statements: List[KernelStatement] = field(default_factory=list)

    def add(self, section: KernelSection, opcode: str, detail: str = "") -> None:
        """Append one statement."""
        self.statements.append(KernelStatement(section, opcode, detail))

    def section(self, section: KernelSection) -> List[KernelStatement]:
        """Statements belonging to one section, in order."""
        return [s for s in self.statements if s.section is section]

    def opcodes(self, section: Optional[KernelSection] = None) -> List[str]:
        """Opcodes, optionally restricted to one section."""
        statements = self.statements if section is None else self.section(section)
        return [s.opcode for s in statements]

    def has_opcode(self, opcode: str) -> bool:
        """Whether any statement uses ``opcode``."""
        return any(s.opcode == opcode for s in self.statements)


def lower_plan(plan: ExecutionPlan) -> KernelIR:
    """Lower an execution plan into the prologue/mainloop/epilogue IR."""
    ir = KernelIR(name=plan.kernel_name)
    chain = plan.chain
    geometry = plan.geometry
    comm = plan.comm_plan

    # ----------------------------- prologue --------------------------- #
    ir.add(
        KernelSection.PROLOGUE,
        "declare_cluster",
        f"cluster_dims=({geometry.cls_m},{geometry.cls_n},{geometry.cls_k},{geometry.cls_l})",
    )
    ir.add(
        KernelSection.PROLOGUE,
        "alloc_smem",
        f"block_tile={plan.tile.as_dict()}",
    )
    ir.add(KernelSection.PROLOGUE, "init_tma_descriptors", "A, B, D, E")
    if geometry.uses_dsm:
        ir.add(
            KernelSection.PROLOGUE,
            "init_dsm_mbarriers",
            f"blocks_per_cluster={geometry.blocks_per_cluster}",
        )

    # ----------------------------- mainloop --------------------------- #
    temporal = "".join(plan.schedule.temporal) or "-"
    ir.add(KernelSection.MAINLOOP, "temporal_loops", f"order={temporal}")
    ir.add(KernelSection.MAINLOOP, "gemm0_mma", f"tile_k={plan.tile.block_k}")
    all_exchange = comm.get(PrimitiveKind.ALL_EXCHANGE)
    if all_exchange is not None:
        ir.add(
            KernelSection.MAINLOOP,
            PrimitiveKind.ALL_EXCHANGE.value,
            f"combine={all_exchange.combine.value} group={all_exchange.group_size}",
        )
    ir.add(KernelSection.MAINLOOP, "activation", chain.activation.value)
    if chain.kind is ChainKind.GATED_FFN and all_exchange is None:
        ir.add(KernelSection.MAINLOOP, "gated_sequential_mainloop", "doubled K")
    shuffle = comm.get(PrimitiveKind.SHUFFLE)
    if shuffle is not None:
        ir.add(
            KernelSection.MAINLOOP,
            PrimitiveKind.SHUFFLE.value,
            f"ring group={shuffle.group_size}",
        )
    ir.add(KernelSection.MAINLOOP, "gemm1_mma", f"tile_l={plan.tile.block_l}")

    # ----------------------------- epilogue --------------------------- #
    reduce_scatter = comm.get(PrimitiveKind.REDUCE_SCATTER)
    if reduce_scatter is not None:
        ir.add(
            KernelSection.EPILOGUE,
            PrimitiveKind.REDUCE_SCATTER.value,
            f"groups={reduce_scatter.group_size}",
        )
    inter = comm.get(PrimitiveKind.INTER_CLUSTER_REDUCE)
    if inter is not None:
        ir.add(
            KernelSection.EPILOGUE,
            PrimitiveKind.INTER_CLUSTER_REDUCE.value,
            f"cp.reduce.async.bulk clusters={inter.group_size}",
        )
    ir.add(KernelSection.EPILOGUE, "store_global", "E")
    return ir
