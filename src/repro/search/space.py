"""Search-space construction and candidate enumeration.

The initial space (Section IV-C2) is the cross product of

* 41 loop schedules (Table IV),
* 5^4 per-dimension cluster sizes drawn from {1, 2, 4, 8, 16}, and
* all block tile sizes that are multiples of the 16x16x16 MMA granularity,

which for GPT-6.7B-sized problems reaches ~2.75e13 candidates (Table III's
first row).  :func:`initial_space_size` reproduces that count analytically;
:class:`SearchSpace` lazily enumerates a tractable, hardware-aware subset
(power-of-two tiles) that the pruning rules then filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.dataflow.loop_schedule import (
    LoopSchedule,
    count_schedules,
    enumerate_schedules,
)
from repro.dataflow.tiling import TileConfig, candidate_tile_sizes
from repro.dsm_comm.geometry import ClusterGeometry
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import ChainKind, GemmChainSpec


@dataclass(frozen=True)
class FusionCandidate:
    """One point of the search space.

    Parameters
    ----------
    chain:
        The fused chain being compiled.
    schedule:
        Spatial/temporal loop schedule.
    tile:
        Block tile sizes.
    geometry:
        Per-dimension cluster sizes.
    gated_sequential:
        For gated FFNs, whether the two branches run sequentially within a
        block (doubled K) instead of spatially across the cls_k partition.
    """

    chain: GemmChainSpec
    schedule: LoopSchedule
    tile: TileConfig
    geometry: ClusterGeometry
    gated_sequential: bool = False

    def label(self) -> str:
        """Readable description used in logs and experiment reports."""
        cluster = "x".join(str(v) for v in self.geometry.as_tuple())
        tiles = "x".join(str(self.tile.block_of(d)) for d in ("m", "n", "k", "l"))
        return f"{self.schedule.label()} cls[{cluster}] blk[{tiles}]"


def initial_space_size(
    chain: GemmChainSpec,
    device: HardwareSpec,
    mma: int = 16,
) -> float:
    """Size of the unpruned search space (Table III, "Original Space").

    The count multiplies the number of loop schedules, the raw cluster-size
    combinations and the number of MMA-granular tile choices per dimension
    (``extent / 16`` each).
    """
    schedules = count_schedules(num_dims=4, min_spatial=1)
    cluster_choices = len(device.cluster_limits.allowed_dim_sizes) ** 4
    tile_choices = 1.0
    for extent in chain.dimension_sizes().values():
        tile_choices *= max(1, extent // mma)
    return float(schedules) * cluster_choices * tile_choices


class SearchSpace:
    """Lazy enumeration of fusion candidates for one chain.

    Parameters
    ----------
    device:
        Target hardware (supplies cluster limits).
    max_tile:
        Largest block tile extent considered per dimension.
    powers_of_two_only:
        Restrict block tiles to power-of-two multiples of the MMA size,
        matching the shapes CUTLASS mainloops instantiate.
    include_clusters:
        When ``False`` only the degenerate single-block geometry is
        enumerated (used by non-DSM baselines).
    """

    def __init__(
        self,
        device: HardwareSpec,
        max_tile: int = 256,
        powers_of_two_only: bool = True,
        include_clusters: bool = True,
        min_tile: int = 64,
        prevalidate_geometries: bool = True,
    ) -> None:
        self.device = device
        self.max_tile = max_tile
        self.powers_of_two_only = powers_of_two_only
        self.include_clusters = include_clusters
        self.min_tile = min_tile
        self.prevalidate_geometries = prevalidate_geometries

    # ------------------------------------------------------------------ #
    # Component enumerations
    # ------------------------------------------------------------------ #
    def schedules(self) -> List[LoopSchedule]:
        """The 41 loop schedules of Table IV."""
        return enumerate_schedules()

    def geometries(self) -> List[ClusterGeometry]:
        """Cluster geometries drawn from the allowed per-dimension sizes.

        With ``prevalidate_geometries`` (the default) geometries that violate
        the hardware block-per-cluster limit are skipped up front — they
        would be discarded by pruning Rule 2 anyway, and skipping them keeps
        the enumeration tractable.
        """
        if not self.include_clusters or not self.device.has_dsm:
            return [ClusterGeometry.single_block()]
        return list(
            ClusterGeometry.enumerate(
                self.device.cluster_limits, validate=self.prevalidate_geometries
            )
        )

    def tiles(self, chain: GemmChainSpec) -> List[TileConfig]:
        """Candidate block tiles for one chain."""
        mma = self.device.cluster_limits.mma_tile[0]
        options = {}
        for dim, extent in chain.dimension_sizes().items():
            sizes = candidate_tile_sizes(
                extent,
                mma=mma,
                max_tile=self.max_tile,
                powers_of_two_only=self.powers_of_two_only,
            )
            if extent % self.min_tile == 0:
                # Regular extents: skip the smallest tiles, they are never
                # competitive and only blow up the search.
                sizes = [size for size in sizes if size >= min(self.min_tile, extent)]
            # Irregular extents (e.g. the M of im2col conv chains) keep the
            # small tiles so a low-padding-waste choice exists.
            options[dim] = sizes
        tiles = []
        for block_m in options["m"]:
            for block_n in options["n"]:
                for block_k in options["k"]:
                    for block_l in options["l"]:
                        tiles.append(TileConfig(block_m, block_n, block_k, block_l))
        return tiles

    # ------------------------------------------------------------------ #
    # Candidate enumeration
    # ------------------------------------------------------------------ #
    def candidates(self, chain: GemmChainSpec) -> Iterator[FusionCandidate]:
        """Yield every candidate of the (restricted) initial space."""
        gated_modes: Tuple[bool, ...] = (False,)
        if chain.kind is ChainKind.GATED_FFN:
            gated_modes = (False, True)
        schedules = self.schedules()
        geometries = self.geometries()
        tiles = self.tiles(chain)
        for schedule in schedules:
            for geometry in geometries:
                for tile in tiles:
                    for gated_sequential in gated_modes:
                        yield FusionCandidate(
                            chain=chain,
                            schedule=schedule,
                            tile=tile,
                            geometry=geometry,
                            gated_sequential=gated_sequential,
                        )

    def candidates_range(
        self,
        chain: GemmChainSpec,
        start: int,
        stop: int,
        components: Optional["SpaceComponents"] = None,
    ) -> Iterator[Tuple[int, FusionCandidate]]:
        """Yield ``(global_index, candidate)`` for one slice of the space.

        Candidates carry the index they occupy in the full :meth:`candidates`
        stream, so disjoint ``[start, stop)`` ranges partition the space
        deterministically: concatenating the slices in index order
        reproduces the serial enumeration exactly.  This is the sharding
        primitive of :class:`repro.search.parallel.ParallelSearchEngine` —
        a worker reconstructs its shard from ``(chain, start, stop)`` alone
        instead of receiving pickled candidates.
        """
        parts = components or self.components(chain)
        total = parts.size
        start = max(0, start)
        stop = min(total, stop)
        for index in range(start, stop):
            schedule_index, geometry_index, tile_index, gated_index = parts.decompose(
                index
            )
            yield index, FusionCandidate(
                chain=chain,
                schedule=parts.schedules[schedule_index],
                tile=parts.tiles[tile_index],
                geometry=parts.geometries[geometry_index],
                gated_sequential=parts.gated_modes[gated_index],
            )

    def components(self, chain: GemmChainSpec) -> "SpaceComponents":
        """The materialised component lists behind :meth:`candidates`."""
        gated_modes: Tuple[bool, ...] = (False,)
        if chain.kind is ChainKind.GATED_FFN:
            gated_modes = (False, True)
        return SpaceComponents(
            schedules=self.schedules(),
            geometries=self.geometries(),
            tiles=self.tiles(chain),
            gated_modes=gated_modes,
        )

    def size_estimate(self, chain: GemmChainSpec) -> int:
        """Number of candidates :meth:`candidates` will yield."""
        gated_factor = 2 if chain.kind is ChainKind.GATED_FFN else 1
        return (
            len(self.schedules())
            * len(self.geometries())
            * len(self.tiles(chain))
            * gated_factor
        )


@dataclass
class SpaceComponents:
    """The per-axis choice lists of one chain's search space.

    The enumeration index of a candidate decomposes over these lists as
    ``((schedule * |geometries| + geometry) * |tiles| + tile) * |gated|
    + gated`` — the exact nesting order of :meth:`SearchSpace.candidates`.
    """

    schedules: List[LoopSchedule]
    geometries: List[ClusterGeometry]
    tiles: List[TileConfig]
    gated_modes: Tuple[bool, ...]

    @property
    def size(self) -> int:
        """Total number of candidates the components span."""
        return (
            len(self.schedules)
            * len(self.geometries)
            * len(self.tiles)
            * len(self.gated_modes)
        )

    def decompose(self, index: int) -> Tuple[int, int, int, int]:
        """Component indices ``(schedule, geometry, tile, gated)`` at ``index``.

        The single source of truth for the enumeration-order contract: both
        :meth:`SearchSpace.candidates_range` and the parallel engine's shard
        workers map global indices through this method, so the ordering can
        never silently diverge between them.
        """
        remainder, gated_index = divmod(index, len(self.gated_modes))
        remainder, tile_index = divmod(remainder, len(self.tiles))
        schedule_index, geometry_index = divmod(remainder, len(self.geometries))
        return schedule_index, geometry_index, tile_index, gated_index
