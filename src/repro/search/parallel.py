"""Parallel sharded fusion search (Algorithm 2, fanned across processes).

The serial :class:`~repro.search.engine.SearchEngine` walks the candidate
space in one Python loop — the compile-time hot path a cold compile pays in
full.  This module shards that walk: the enumeration index range is split
into chunks, each chunk is searched independently (prune → analyze →
batched cost-model rank, keeping only a local top-K), and the per-shard
top-K lists are merged into the global top-K, which is then profiled once
in the parent.  Because every candidate carries its global enumeration
index and the batched scorer is bit-identical to the scalar one, the merge
reproduces the serial ranking exactly — the selected plan is guaranteed to
be the same plan the serial engine picks.

Two mechanisms make the sharding efficient:

* **Per-shard memoization.**  Pruning Rules 1-4 depend on strict subsets of
  the (schedule, geometry, tile) triple, so a shard evaluates each rule
  once per distinct key instead of once per candidate, and candidate
  objects are only constructed for survivors.  Rule outcomes are identical
  to the serial cascade, so the per-rule survivor counts (Table III) merge
  additively.
* **Adaptive shard sizing.**  Prune rates vary wildly across the space
  (schedule-major regions prune at very different rates), so static chunks
  load-balance poorly.  :class:`AdaptiveShardSizer` re-targets the chunk
  size from observed per-shard prune rates — a work-stealing-style dynamic
  rebalancing in the spirit of hp-adaptive load balancing — keeping the
  *analysis* work per shard roughly constant.  Shard boundaries affect only
  wall-clock, never the selected plan.

With a single worker the engine skips the process pool entirely and runs
the same memoized, batch-scored shard loop inline, which is itself faster
than the serial engine — so ``parallelism=1`` is a sound default on
single-core hosts.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataflow.analyzer import DataflowAnalyzer, DataflowResult
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec
from repro.obs.trace import tracer
from repro.search.cost_model import CostModel
from repro.search.engine import ProfilerFn, RankedPlan, SearchEngine, SearchResult
from repro.search.incremental import (
    CandidateLowerBound,
    SubchainAnalysisCache,
    TransferSearch,
    TransferSeed,
)
from repro.search.pruning import Pruner, PruningRule, PruningStats
from repro.search.space import FusionCandidate, SearchSpace


@dataclass(frozen=True)
class SpaceConfig:
    """Picklable recipe for rebuilding a :class:`SearchSpace` in a worker."""

    max_tile: int
    powers_of_two_only: bool
    include_clusters: bool
    min_tile: int
    prevalidate_geometries: bool

    @classmethod
    def from_space(cls, space: SearchSpace) -> "SpaceConfig":
        """Capture the construction parameters of an existing space."""
        return cls(
            max_tile=space.max_tile,
            powers_of_two_only=space.powers_of_two_only,
            include_clusters=space.include_clusters,
            min_tile=space.min_tile,
            prevalidate_geometries=space.prevalidate_geometries,
        )

    def build(self, device: HardwareSpec) -> SearchSpace:
        """Instantiate the space against a device."""
        return SearchSpace(
            device,
            max_tile=self.max_tile,
            powers_of_two_only=self.powers_of_two_only,
            include_clusters=self.include_clusters,
            min_tile=self.min_tile,
            prevalidate_geometries=self.prevalidate_geometries,
        )


@dataclass(frozen=True)
class ShardTask:
    """One chunk of the candidate space, self-contained and picklable.

    Workers reconstruct the enumeration from ``(chain, start, stop)`` via
    :meth:`SearchSpace.candidates_range` semantics instead of receiving
    pickled candidates, so task payloads stay ~1 KB regardless of chunk
    size.
    """

    device: HardwareSpec
    chain: GemmChainSpec
    space: SpaceConfig
    include_dsm: bool
    require_feasible: bool
    keep: int
    compute_efficiency: float
    start: int
    stop: int
    #: Memoize kind-independent analysis cores within the worker process.
    incremental: bool = True
    #: Skip analyses whose admissible lower bound exceeds the shard-local
    #: top-K threshold (plan-identical; only ``analyzed`` shrinks).
    lower_bound_prune: bool = False

    def context_key(self) -> str:
        """Identity of the per-process search context this task can reuse."""
        return json.dumps(
            [
                self.device.fingerprint(),
                self.chain.canonical_hash(),
                [
                    self.space.max_tile,
                    self.space.powers_of_two_only,
                    self.space.include_clusters,
                    self.space.min_tile,
                    self.space.prevalidate_geometries,
                ],
                self.include_dsm,
                self.compute_efficiency,
                self.incremental,
                self.lower_bound_prune,
            ],
            sort_keys=True,
            default=str,
        )


@dataclass
class ShardOutcome:
    """What one shard sends back: local top-K plus merge-ready statistics."""

    start: int
    stop: int
    enumerated: int
    analyzed: int
    rule_counts: Dict[PruningRule, int]
    #: ``(predicted_cost_us, global_index, candidate, analysis)`` tuples,
    #: at most ``keep`` of them, sorted by ``(cost, index)``.
    plans: List[Tuple[float, int, FusionCandidate, DataflowResult]]
    elapsed_s: float = 0.0
    #: Candidates skipped by the admissible lower bound (0 unless the task
    #: enables ``lower_bound_prune``).
    skipped: int = 0

    @property
    def survival_rate(self) -> float:
        """Fraction of enumerated candidates that reached analysis."""
        if self.enumerated <= 0:
            return 0.0
        return self.analyzed / self.enumerated


class _ShardContext:
    """Per-process state reused across the shards of one logical search.

    Workers are long-lived: the first shard of a search builds the component
    lists, analyzer and memo tables; subsequent shards of the same search
    (same :meth:`ShardTask.context_key`) reuse them, so rule memoization
    compounds across chunks.
    """

    def __init__(self, task: ShardTask) -> None:
        self.device = task.device
        self.chain = task.chain
        space = task.space.build(self.device)
        self.components = space.components(self.chain)
        self.analysis_cache = (
            SubchainAnalysisCache(
                context=json.dumps(
                    self.device.fingerprint(), sort_keys=True, default=str
                )
            )
            if task.incremental
            else None
        )
        self.analyzer = DataflowAnalyzer(
            self.device,
            include_dsm=task.include_dsm,
            analysis_cache=self.analysis_cache,
        )
        self.cost_model = CostModel(
            self.device, compute_efficiency=task.compute_efficiency
        )
        self.bounds = CandidateLowerBound(self.device, self.cost_model)
        self.pruner = Pruner(self.device, include_dsm=task.include_dsm)
        self._rule1: Dict[Tuple[int, int], bool] = {}
        self._rule2: Dict[int, bool] = {}
        self._rule3: Dict[Tuple[int, int, int], bool] = {}
        self._rule4: Dict[Tuple[int, int, int, int], bool] = {}
        self._rule5: Dict[Tuple[int, int, int], bool] = {}

    def _probe(
        self, schedule_index: int, geometry_index: int, tile_index: int
    ) -> FusionCandidate:
        """A candidate object for rule evaluation (gated mode irrelevant)."""
        return FusionCandidate(
            chain=self.chain,
            schedule=self.components.schedules[schedule_index],
            tile=self.components.tiles[tile_index],
            geometry=self.components.geometries[geometry_index],
        )

    # The memo keys are exactly the rule inputs: Rules 1-2 ignore the loop
    # schedule, Rule 3 reads only (schedule, block_k, cls_k), Rule 4 only
    # (schedule, block_n, block_l, cls_l); no rule reads the gated mode.
    def rule1(self, schedule_index: int, geometry_index: int, tile_index: int) -> bool:
        key = (tile_index, geometry_index)
        verdict = self._rule1.get(key)
        if verdict is None:
            verdict = self.pruner.rule1_divisible_tiles(
                self._probe(schedule_index, geometry_index, tile_index)
            )
            self._rule1[key] = verdict
        return verdict

    def rule2(self, schedule_index: int, geometry_index: int, tile_index: int) -> bool:
        verdict = self._rule2.get(geometry_index)
        if verdict is None:
            verdict = self.pruner.rule2_cluster_size(
                self._probe(schedule_index, geometry_index, tile_index)
            )
            self._rule2[geometry_index] = verdict
        return verdict

    def rule3(self, schedule_index: int, geometry_index: int, tile_index: int) -> bool:
        tile = self.components.tiles[tile_index]
        geometry = self.components.geometries[geometry_index]
        key = (schedule_index, tile.block_k, geometry.cls_k)
        verdict = self._rule3.get(key)
        if verdict is None:
            verdict = self.pruner.rule3_activation(
                self._probe(schedule_index, geometry_index, tile_index)
            )
            self._rule3[key] = verdict
        return verdict

    def rule4(self, schedule_index: int, geometry_index: int, tile_index: int) -> bool:
        tile = self.components.tiles[tile_index]
        geometry = self.components.geometries[geometry_index]
        key = (schedule_index, tile.block_n, tile.block_l, geometry.cls_l)
        verdict = self._rule4.get(key)
        if verdict is None:
            verdict = self.pruner.rule4_dependency(
                self._probe(schedule_index, geometry_index, tile_index)
            )
            self._rule4[key] = verdict
        return verdict

    def rule5(self, schedule_index: int, geometry_index: int, tile_index: int) -> bool:
        key = (schedule_index, tile_index, geometry_index)
        verdict = self._rule5.get(key)
        if verdict is None:
            verdict = self.pruner.rule5_memory_capacity(
                self._probe(schedule_index, geometry_index, tile_index)
            )
            self._rule5[key] = verdict
        return verdict


#: Per-process context cache; at most one live search context per key.
_WORKER_CONTEXTS: Dict[str, _ShardContext] = {}


def _context_for(task: ShardTask) -> _ShardContext:
    """Fetch or build the per-process context for ``task``."""
    key = task.context_key()
    context = _WORKER_CONTEXTS.get(key)
    if context is not None and context.chain != task.chain:
        # The canonical hash ignores presentation fields like the chain
        # name; candidates must carry the exact chain object searched, so
        # any difference invalidates the cached context.
        context = None
    if context is None:
        # Keep a single context per worker: searches over different chains
        # should not accumulate unbounded analyzer state.
        _WORKER_CONTEXTS.clear()
        context = _ShardContext(task)
        _WORKER_CONTEXTS[key] = context
    return context


def _search_shard(task: ShardTask) -> ShardOutcome:
    """Search one chunk: enumerate → prune (memoized) → analyze → rank.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; also called inline by the single-worker fast path.
    """
    started = time.perf_counter()
    context = _context_for(task)
    if task.lower_bound_prune:
        return _search_shard_bounded(task, context, started)
    components = context.components
    decompose = components.decompose

    counts = {rule: 0 for rule in PruningRule}
    rules = (context.rule1, context.rule2, context.rule3, context.rule4, context.rule5)
    rule_ids = tuple(PruningRule)

    indices: List[int] = []
    candidates: List[FusionCandidate] = []
    analyses: List[DataflowResult] = []
    analyzed = 0
    for index in range(task.start, task.stop):
        schedule_index, geometry_index, tile_index, gated_index = decompose(index)

        # The serial cascade short-circuits at the first failing rule and
        # counts survivors per rule; the memoized cascade replicates both.
        alive = True
        for rule_id, rule in zip(rule_ids, rules):
            if not rule(schedule_index, geometry_index, tile_index):
                alive = False
                break
            counts[rule_id] += 1
        if not alive:
            continue

        candidate = FusionCandidate(
            chain=context.chain,
            schedule=components.schedules[schedule_index],
            tile=components.tiles[tile_index],
            geometry=components.geometries[geometry_index],
            gated_sequential=components.gated_modes[gated_index],
        )
        result = context.analyzer.analyze(
            candidate.chain,
            candidate.schedule,
            candidate.tile,
            candidate.geometry,
            gated_sequential=candidate.gated_sequential,
        )
        analyzed += 1
        if task.require_feasible and not result.feasible:
            continue
        indices.append(index)
        candidates.append(candidate)
        analyses.append(result)

    costs = context.cost_model.evaluate_batch(analyses)
    plans = heapq.nsmallest(
        task.keep,
        (
            (float(cost), index, candidate, result)
            for cost, index, candidate, result in zip(
                costs, indices, candidates, analyses
            )
        ),
        key=lambda entry: (entry[0], entry[1]),
    )
    return ShardOutcome(
        start=task.start,
        stop=task.stop,
        enumerated=task.stop - task.start,
        analyzed=analyzed,
        rule_counts=counts,
        plans=plans,
        elapsed_s=time.perf_counter() - started,
    )


def _search_shard_bounded(
    task: ShardTask, context: _ShardContext, started: float
) -> ShardOutcome:
    """Shard search with admissible lower-bound skipping.

    Scores candidates one at a time (the scalar scorer is bit-identical to
    the batched one) while maintaining the shard-local top-``keep`` heap,
    so a candidate whose lower bound strictly exceeds the current K-th
    smallest cost is never analysed.  A skipped candidate's true cost is at
    least its bound, hence strictly above the heap's worst entry — and a
    later enumeration index loses cost ties anyway — so the returned plans
    are exactly the ``keep`` smallest ``(cost, index)`` pairs of the chunk,
    identical to the default path's; only ``analyzed`` shrinks.
    """
    components = context.components
    decompose = components.decompose

    counts = {rule: 0 for rule in PruningRule}
    rules = (context.rule1, context.rule2, context.rule3, context.rule4, context.rule5)
    rule_ids = tuple(PruningRule)

    # Max-heap of (-cost, -index, candidate, result): the root is the worst
    # (cost, index) of the current shard-local top-K.  Indices are unique,
    # so tuple comparison never reaches the (unorderable) candidate.
    heap: List[Tuple[float, int, FusionCandidate, DataflowResult]] = []
    analyzed = 0
    skipped = 0
    for index in range(task.start, task.stop):
        schedule_index, geometry_index, tile_index, gated_index = decompose(index)

        alive = True
        for rule_id, rule in zip(rule_ids, rules):
            if not rule(schedule_index, geometry_index, tile_index):
                alive = False
                break
            counts[rule_id] += 1
        if not alive:
            continue

        candidate = FusionCandidate(
            chain=context.chain,
            schedule=components.schedules[schedule_index],
            tile=components.tiles[tile_index],
            geometry=components.geometries[geometry_index],
            gated_sequential=components.gated_modes[gated_index],
        )
        if (
            len(heap) == task.keep
            and context.bounds.lower_bound(task.chain, candidate) > -heap[0][0]
        ):
            skipped += 1
            continue
        result = context.analyzer.analyze(
            candidate.chain,
            candidate.schedule,
            candidate.tile,
            candidate.geometry,
            gated_sequential=candidate.gated_sequential,
        )
        analyzed += 1
        if task.require_feasible and not result.feasible:
            continue
        cost = context.cost_model.evaluate(result)
        if len(heap) < task.keep:
            heapq.heappush(heap, (-cost, -index, candidate, result))
        elif -heap[0][0] > cost:
            heapq.heapreplace(heap, (-cost, -index, candidate, result))

    plans = sorted(
        (
            (-neg_cost, -neg_index, candidate, result)
            for neg_cost, neg_index, candidate, result in heap
        ),
        key=lambda entry: (entry[0], entry[1]),
    )
    return ShardOutcome(
        start=task.start,
        stop=task.stop,
        enumerated=task.stop - task.start,
        analyzed=analyzed,
        rule_counts=counts,
        plans=plans,
        elapsed_s=time.perf_counter() - started,
        skipped=skipped,
    )


@dataclass
class AdaptiveShardSizer:
    """Rebalance chunk sizes from observed per-shard prune rates.

    Analysis, not enumeration, dominates shard cost, and the fraction of a
    chunk surviving the pruning cascade varies by orders of magnitude across
    schedule-major regions of the space.  The sizer tracks an exponential
    moving average of the survival rate and sizes the next chunk so its
    *expected analysis work* stays near ``target_analyzed`` — sparse regions
    get large chunks, dense regions small ones.  Chunk boundaries never
    change the selected plan (the global merge is order-independent), so the
    feedback loop is free to react to completion order.
    """

    target_analyzed: int = 768
    initial_chunk: int = 8192
    min_chunk: int = 1024
    max_chunk: int = 131072
    smoothing: float = 0.5
    _survival_rate: Optional[float] = field(default=None, init=False, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.target_analyzed < 1:
            raise ValueError("target_analyzed must be >= 1")
        if not 0 < self.min_chunk <= self.initial_chunk <= self.max_chunk:
            raise ValueError("require 0 < min_chunk <= initial_chunk <= max_chunk")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")

    def next_chunk_size(self) -> int:
        """Chunk size for the next shard submission."""
        with self._lock:
            rate = self._survival_rate
        if rate is None:
            return self.initial_chunk
        size = int(self.target_analyzed / max(rate, 1e-4))
        return max(self.min_chunk, min(self.max_chunk, size))

    def observe(self, enumerated: int, analyzed: int) -> None:
        """Fold one shard's observed prune rate into the estimate."""
        if enumerated <= 0:
            return
        rate = analyzed / enumerated
        with self._lock:
            if self._survival_rate is None:
                self._survival_rate = rate
            else:
                self._survival_rate = (
                    self.smoothing * rate
                    + (1.0 - self.smoothing) * self._survival_rate
                )


class ParallelSearchEngine:
    """Sharded, process-parallel drop-in for :class:`SearchEngine`.

    Exposes the same ``search(chain) -> SearchResult`` contract and — by
    construction — returns the identical best plan, top-K ordering, per-rule
    pruning statistics and candidate counts.  Wall-clock is the only thing
    sharding changes.

    Parameters
    ----------
    device:
        Target hardware, as for :class:`SearchEngine`.
    parallelism:
        Worker-process count; defaults to ``os.cpu_count()``.  With one
        worker the shard loop runs inline (no pool, no pickling) but still
        benefits from memoized pruning and batched scoring.
    executor:
        Optional externally managed executor (shared across engines); when
        provided it is not shut down by :meth:`close` and ``parallelism``
        only bounds in-flight shard submissions.
    sizer:
        Chunk-size policy; defaults to a fresh :class:`AdaptiveShardSizer`.
    max_candidates:
        Analysis budget.  Budgeted searches depend on enumeration order in a
        way sharding cannot reproduce cheaply, so they are delegated to the
        serial engine.

    The remaining parameters mirror :class:`SearchEngine`.  One caveat: a
    custom ``cost_model`` is honoured for budgeted (serial-fallback)
    searches, but shard workers always score with a stock
    :class:`CostModel` rebuilt from ``compute_efficiency`` — subclassed
    models do not transfer across the process boundary.

    Example
    -------
    ::

        from repro import FlashFuser, FuserConfig
        from repro.ir.workloads import get_chain_spec

        # The usual entry point: one FuserConfig knob fans cold searches
        # across 8 worker processes; the selected plan is bit-identical
        # to the serial engine's.
        with FlashFuser(FuserConfig(parallelism=8)) as compiler:
            kernel = compiler.compile_workload("G5")

        # Direct use, mirroring SearchEngine:
        from repro.hardware import h100_spec
        from repro.search import ParallelSearchEngine

        engine = ParallelSearchEngine(h100_spec(), parallelism=4)
        result = engine.search(get_chain_spec("G5"))
        engine.close()
    """

    def __init__(
        self,
        device: HardwareSpec,
        top_k: int = 11,
        include_dsm: bool = True,
        profiler: Optional[ProfilerFn] = None,
        space: Optional[SearchSpace] = None,
        cost_model: Optional[CostModel] = None,
        require_feasible: bool = True,
        max_candidates: Optional[int] = None,
        parallelism: Optional[int] = None,
        executor: Optional[Executor] = None,
        sizer: Optional[AdaptiveShardSizer] = None,
        incremental: bool = True,
        lower_bound_prune: bool = False,
        transfer_bound: float = 2.0,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.device = device
        self.top_k = top_k
        self.include_dsm = include_dsm and device.has_dsm
        self.profiler = profiler
        self.space = space or SearchSpace(device, include_clusters=self.include_dsm)
        self.cost_model = cost_model or CostModel(device)
        self.require_feasible = require_feasible
        self.max_candidates = max_candidates
        self.incremental = incremental
        self.lower_bound_prune = lower_bound_prune
        self.transfer_bound = transfer_bound
        # Warm-start transfer searches run inline in the parent (their
        # neighborhoods are a few hundred candidates — not worth a pool
        # round-trip) and share one analyzer so the subchain cache compounds
        # across transfers.
        self._transfer = TransferSearch(
            device,
            space=self.space,
            cost_model=self.cost_model,
            top_k=self.top_k,
            include_dsm=self.include_dsm,
            require_feasible=self.require_feasible,
            transfer_bound=self.transfer_bound,
            profiler=self.profiler,
            analyzer=DataflowAnalyzer(
                device,
                include_dsm=self.include_dsm,
                analysis_cache=(
                    SubchainAnalysisCache(
                        context=json.dumps(
                            device.fingerprint(), sort_keys=True, default=str
                        )
                    )
                    if incremental
                    else None
                ),
            ),
        )
        self.parallelism = max(
            1, parallelism if parallelism is not None else (os.cpu_count() or 1)
        )
        self.sizer = sizer or AdaptiveShardSizer()
        self._external_executor = executor
        self._owned_executor: Optional[ProcessPoolExecutor] = None
        # compile()/search() may be called concurrently from a thread pool
        # (BatchCompiler, KernelServer); guard the lazy pool creation.
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(
        self, chain: GemmChainSpec, transfer_seed: Optional[TransferSeed] = None
    ) -> SearchResult:
        """Find the best fused plan — identical to the serial engine's.

        A ``transfer_seed`` (from a previously compiled nearby shape)
        triggers a bounded local search first, exactly as in
        :meth:`SearchEngine.search`; the sharded full enumeration only runs
        when the transfer is rejected.
        """
        if transfer_seed is not None:
            with tracer().span("search.transfer", chain=chain.name) as tspan:
                transferred = self._transfer.search(chain, transfer_seed)
                tspan.set("accepted", transferred is not None)
            if transferred is not None:
                if transferred.phase_times_us is None:
                    transferred.phase_times_us = {
                        "transfer": transferred.search_time_s * 1e6
                    }
                return transferred
        if self.max_candidates is not None:
            return self._serial_engine().search(chain)
        start = time.perf_counter()
        total = self.space.size_estimate(chain)
        if self.parallelism <= 1 or self._total_too_small(total):
            outcomes = self._run_inline(chain, total)
        else:
            outcomes = self._run_pool(chain, total)
        return self._merge(chain, outcomes, time.perf_counter() - start)

    def close(self) -> None:
        """Shut down the engine-owned worker pool (idempotent)."""
        with self._executor_lock:
            executor, self._owned_executor = self._owned_executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ParallelSearchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Shard scheduling
    # ------------------------------------------------------------------ #
    def _task(self, chain: GemmChainSpec, start: int, stop: int) -> ShardTask:
        return ShardTask(
            device=self.device,
            chain=chain,
            space=SpaceConfig.from_space(self.space),
            include_dsm=self.include_dsm,
            require_feasible=self.require_feasible,
            keep=self.top_k,
            compute_efficiency=self.cost_model.compute_efficiency,
            start=start,
            stop=stop,
            incremental=self.incremental,
            lower_bound_prune=self.lower_bound_prune,
        )

    def _total_too_small(self, total: int) -> bool:
        """Whether fanning out would cost more than it saves."""
        return total <= self.sizer.min_chunk

    def _run_inline(self, chain: GemmChainSpec, total: int) -> List[ShardOutcome]:
        outcomes: List[ShardOutcome] = []
        frontier = 0
        while frontier < total:
            stop = min(total, frontier + self.sizer.next_chunk_size())
            outcome = _search_shard(self._task(chain, frontier, stop))
            self.sizer.observe(outcome.enumerated, outcome.analyzed)
            outcomes.append(outcome)
            frontier = stop
        return outcomes

    def _run_pool(self, chain: GemmChainSpec, total: int) -> List[ShardOutcome]:
        executor = self._ensure_executor()
        outcomes: List[ShardOutcome] = []
        inflight: Dict[object, Tuple[int, int]] = {}
        # Keep the pool saturated without racing ahead of the sizer: a
        # bounded queue lets early prune-rate observations steer the
        # chunking of the space's tail.
        depth = self.parallelism * 2
        frontier = 0
        while frontier < total or inflight:
            while frontier < total and len(inflight) < depth:
                stop = min(total, frontier + self.sizer.next_chunk_size())
                future = executor.submit(
                    _search_shard, self._task(chain, frontier, stop)
                )
                inflight[future] = (frontier, stop)
                frontier = stop
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                del inflight[future]
                outcome = future.result()
                self.sizer.observe(outcome.enumerated, outcome.analyzed)
                outcomes.append(outcome)
        return outcomes

    def _ensure_executor(self) -> Executor:
        if self._external_executor is not None:
            return self._external_executor
        with self._executor_lock:
            if self._owned_executor is None:
                self._owned_executor = ProcessPoolExecutor(max_workers=self.parallelism)
            return self._owned_executor

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #
    def _merge(
        self,
        chain: GemmChainSpec,
        outcomes: List[ShardOutcome],
        elapsed_s: float,
    ) -> SearchResult:
        initial = 0
        analyzed = 0
        skipped = 0
        rule_counts = {rule: 0 for rule in PruningRule}
        entries: List[Tuple[float, int, FusionCandidate, DataflowResult]] = []
        for outcome in outcomes:
            initial += outcome.enumerated
            analyzed += outcome.analyzed
            skipped += outcome.skipped
            for rule, count in outcome.rule_counts.items():
                rule_counts[rule] += count
            entries.extend(outcome.plans)

        # Global top-K: the K smallest by (cost, enumeration index), exactly
        # the serial heap's selection and tie-break rule.
        rank_start = time.perf_counter()
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        ranked: List[Tuple[RankedPlan, int]] = [
            (
                RankedPlan(candidate=candidate, result=result, predicted_cost_us=cost),
                index,
            )
            for cost, index, candidate, result in entries[: self.top_k]
        ]
        rank_s = time.perf_counter() - rank_start

        profile_s = 0.0
        if self.profiler is not None:
            profile_start = time.perf_counter()
            for plan, _ in ranked:
                plan.profiled_time_us = self.profiler(plan.result)
            ranked.sort(key=lambda pair: (pair[0].best_known_time_us, pair[1]))
            profile_s = time.perf_counter() - profile_start

        top_k = [plan for plan, _ in ranked]
        stats = PruningStats(initial=initial, surviving=dict(rule_counts))
        return SearchResult(
            chain=chain,
            best=top_k[0] if top_k else None,
            top_k=top_k,
            pruning_stats=stats,
            candidates_enumerated=initial,
            candidates_analyzed=analyzed,
            search_time_s=elapsed_s,
            candidates_skipped=skipped,
            # Shards fuse enumeration, pruning and analysis in one pass, so
            # the sharded wall time is attributed to "analyze" wholesale;
            # only the merge-side rank and profile phases are measured.
            phase_times_us={
                "analyze": elapsed_s * 1e6,
                "rank": rank_s * 1e6,
                "profile": profile_s * 1e6,
            },
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _serial_engine(self) -> SearchEngine:
        return SearchEngine(
            self.device,
            top_k=self.top_k,
            include_dsm=self.include_dsm,
            profiler=self.profiler,
            space=self.space,
            cost_model=self.cost_model,
            require_feasible=self.require_feasible,
            max_candidates=self.max_candidates,
            incremental=self.incremental,
            lower_bound_prune=self.lower_bound_prune,
            transfer_bound=self.transfer_bound,
        )
