"""Fusion search engine (Section IV-C).

The search engine explores loop schedules x cluster geometries x tile sizes,
prunes the space with Rules 1-5 (:mod:`repro.search.pruning`), ranks the
survivors with the minimax bandwidth cost model
(:mod:`repro.search.cost_model`) and profiles the top-K candidates on the
performance simulator to pick the final plan
(:mod:`repro.search.engine`, Algorithm 2).  The unpruned exhaustive search
used for the Table VIII comparison lives in :mod:`repro.search.brute_force`,
and the sharded process-parallel engine — same selected plan, cold compiles
fanned across workers — in :mod:`repro.search.parallel`.  The incremental
layer — subchain analysis memoization, admissible lower bounds and
nearest-shape warm-start transfer — lives in
:mod:`repro.search.incremental`.
"""

from repro.search.cost_model import CostBreakdown, CostModel
from repro.search.engine import FusionCandidate, SearchEngine, SearchResult
from repro.search.incremental import (
    CandidateLowerBound,
    ShapeIndex,
    SubchainAnalysisCache,
    TransferSearch,
    TransferSeed,
    seed_from_plan_dict,
    shape_family_key,
)
from repro.search.parallel import AdaptiveShardSizer, ParallelSearchEngine
from repro.search.pruning import PruningRule, PruningStats, Pruner
from repro.search.space import SearchSpace, SpaceComponents, initial_space_size
from repro.search.brute_force import BruteForceSearch

__all__ = [
    "AdaptiveShardSizer",
    "CandidateLowerBound",
    "CostBreakdown",
    "CostModel",
    "FusionCandidate",
    "ParallelSearchEngine",
    "SearchEngine",
    "SearchResult",
    "ShapeIndex",
    "SubchainAnalysisCache",
    "TransferSearch",
    "TransferSeed",
    "PruningRule",
    "PruningStats",
    "Pruner",
    "SearchSpace",
    "SpaceComponents",
    "initial_space_size",
    "BruteForceSearch",
    "seed_from_plan_dict",
    "shape_family_key",
]
