"""Analytical minimax cost model (Section IV-C1).

For every memory level ``l`` the cost of a candidate tiling strategy is the
time its data volume takes at that level's bandwidth,

    C_l(T_l) = V_l(T_l) / B_l,                                  (Eq. 1)

and the objective is to minimise the slowest stage,

    min over T of  max_l C_l(T_l),                              (Eq. 2)

subject to per-level capacity constraints (Eq. 3), which the pruning rules
and the greedy placement enforce.  The model additionally includes the
tensor-core compute time as one more "stage" so that compute-bound
configurations are not ranked purely by their (tiny) memory cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dataflow.analyzer import DataflowResult
from repro.hardware.memory import MemoryLevelName
from repro.hardware.spec import HardwareSpec


@dataclass(frozen=True)
class CostBreakdown:
    """Per-stage cost of one candidate, all in microseconds."""

    per_level_us: Dict[str, float]
    compute_us: float

    @property
    def bottleneck_level(self) -> str:
        """Name of the slowest stage (a memory level or ``"compute"``)."""
        stages = dict(self.per_level_us)
        stages["compute"] = self.compute_us
        return max(stages, key=stages.get)

    @property
    def bottleneck_us(self) -> float:
        """Time of the slowest stage — the minimax objective value."""
        return max(max(self.per_level_us.values(), default=0.0), self.compute_us)

    @property
    def memory_bound(self) -> bool:
        """Whether a memory level, not compute, is the bottleneck."""
        return self.bottleneck_level != "compute"


class CostModel:
    """Evaluate the minimax data-movement cost of analysed candidates.

    Parameters
    ----------
    device:
        Hardware spec providing per-level bandwidths, DSM curves and peak
        compute throughput.
    compute_efficiency:
        Fraction of peak tensor-core throughput a well-tuned mainloop
        sustains (kernel overheads, tail effects).
    """

    def __init__(self, device: HardwareSpec, compute_efficiency: float = 0.75) -> None:
        if not 0.0 < compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        self.device = device
        self.compute_efficiency = compute_efficiency
        # Per-cluster-size bandwidth tables for the batched scorer; a pure
        # function of the hardware, cached because every batch rebuilds the
        # same few cluster sizes.
        self._bandwidth_cache: Dict[int, Dict[str, Tuple[float, bool]]] = {}

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def breakdown(self, result: DataflowResult) -> CostBreakdown:
        """Per-stage cost of one analysed candidate."""
        cluster_size = result.geometry.blocks_per_cluster
        hierarchy = self.device.memory_hierarchy_for_cluster(cluster_size)

        per_level: Dict[str, float] = {}
        for name, volume in result.volumes.items():
            if volume <= 0:
                continue
            if not hierarchy.has(name):
                # DSM volume charged by a candidate whose cluster has a
                # single block (no DSM tier): bill it at global bandwidth.
                level = hierarchy.get(MemoryLevelName.GLOBAL)
            else:
                level = hierarchy.get(name)
            bandwidth = level.bandwidth_gbps
            if name in (MemoryLevelName.REGISTER, MemoryLevelName.SMEM):
                # Per-SM bandwidths aggregate across all SMs working on the
                # problem; scale by the number of SMs the launch occupies.
                bandwidth *= self._occupied_sms(result)
            per_level[name] = volume / (bandwidth * 1e3)

        compute_us = self._compute_time_us(result)
        return CostBreakdown(per_level_us=per_level, compute_us=compute_us)

    def evaluate(self, result: DataflowResult) -> float:
        """The minimax objective (Eq. 2) in microseconds — lower is better."""
        return self.breakdown(result).bottleneck_us

    def evaluate_batch(self, results: Sequence[DataflowResult]) -> np.ndarray:
        """Vectorized :meth:`evaluate` over many analysed candidates.

        One numpy pass scores the whole batch: per-level costs become an
        ``(N, levels)`` matrix, the compute stage one more column, and the
        minimax objective a row-wise maximum.  Every arithmetic operation
        mirrors the scalar path in the same order on the same float64
        values, so the returned costs are bit-identical to calling
        :meth:`evaluate` per result — the property the parallel search
        engine relies on to reproduce the serial ranking exactly.
        """
        count = len(results)
        if count == 0:
            return np.zeros(0, dtype=np.float64)

        # Column layout: the union of level names charged by the batch.
        names: List[str] = []
        for result in results:
            for name in result.volumes:
                if name not in names:
                    names.append(name)
        columns = {name: j for j, name in enumerate(names)}

        volumes = np.zeros((count, max(1, len(names))), dtype=np.float64)
        # Cells with zero volume divide by 1.0 and contribute a zero cost,
        # matching the scalar path's skip of non-positive volumes.
        bandwidths = np.ones_like(volumes)
        occupied = np.empty(count, dtype=np.float64)
        flops = np.empty(count, dtype=np.float64)

        for i, result in enumerate(results):
            sms = self._occupied_sms(result)
            occupied[i] = sms
            flops[i] = result.chain.total_flops()
            table = self._level_bandwidths(result.geometry.blocks_per_cluster)
            for name, volume in result.volumes.items():
                if volume <= 0:
                    continue
                base, scaled = table[name]
                j = columns[name]
                volumes[i, j] = volume
                bandwidths[i, j] = base * sms if scaled else base

        level_costs = volumes / (bandwidths * 1e3)

        occupancy = occupied / self.device.num_sms
        efficiency = self.compute_efficiency * np.maximum(
            0.25, np.minimum(1.0, occupancy)
        )
        effective_tflops = self.device.peak_fp16_tflops * efficiency
        compute_us = flops / (effective_tflops * 1e6)

        return np.maximum(level_costs.max(axis=1), compute_us)

    def predicted_time_us(self, result: DataflowResult) -> float:
        """Predicted kernel time: the bottleneck stage plus launch overhead."""
        return self.breakdown(result).bottleneck_us + self._launch_overhead_us()

    def predicted_tflops(self, result: DataflowResult) -> float:
        """Predicted sustained TFLOPS of the fused kernel."""
        time_us = self.predicted_time_us(result)
        if time_us <= 0:
            return 0.0
        return result.chain.total_flops() / time_us / 1e6

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _compute_time_us(self, result: DataflowResult) -> float:
        flops = result.chain.total_flops()
        # Launches that occupy only part of the machine sustain a lower
        # fraction of peak; the same derating is applied by the performance
        # simulator so the cost-model ranking and the profiling agree.
        occupancy = self._occupied_sms(result) / self.device.num_sms
        efficiency = self.compute_efficiency * max(0.25, min(1.0, occupancy))
        effective_tflops = self.device.peak_fp16_tflops * efficiency
        return flops / (effective_tflops * 1e6)

    def _level_bandwidths(self, cluster_size: int) -> Dict[str, Tuple[float, bool]]:
        """Per-level ``(bandwidth_gbps, scales_with_sms)`` for one cluster size.

        Mirrors the level resolution of :meth:`breakdown`: names absent from
        the cluster's hierarchy (DSM on single-block clusters) are billed at
        global bandwidth, and per-SM levels aggregate across occupied SMs.
        """
        table = self._bandwidth_cache.get(cluster_size)
        if table is None:
            hierarchy = self.device.memory_hierarchy_for_cluster(cluster_size)
            table = {}
            for name in MemoryLevelName.ORDER:
                if hierarchy.has(name):
                    level = hierarchy.get(name)
                else:
                    level = hierarchy.get(MemoryLevelName.GLOBAL)
                scaled = name in (MemoryLevelName.REGISTER, MemoryLevelName.SMEM)
                table[name] = (level.bandwidth_gbps, scaled)
            self._bandwidth_cache[cluster_size] = table
        return table

    def _occupied_sms(self, result: DataflowResult) -> int:
        """How many SMs the candidate's launch keeps busy."""
        chain = result.chain
        tile = result.tile
        geometry = result.geometry
        blocks = 1
        for dim in ("m", "n", "k", "l"):
            if result.schedule.is_spatial(dim):
                extent = chain.dimension_sizes()[dim]
                blocks *= max(1, extent // max(1, tile.block_of(dim)))
            else:
                blocks *= geometry.size_of(dim)
        return max(1, min(self.device.num_sms, blocks))

    def _launch_overhead_us(self) -> float:
        """Fixed kernel launch plus prologue/epilogue overhead."""
        return 3.0
