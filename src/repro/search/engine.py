"""Fusion search algorithm (Algorithm 2).

The engine enumerates candidates, prunes them with Rules 1-5, analyses the
survivors with the dataflow analyzer, ranks them with the minimax cost model
while maintaining a top-K list, and finally "profiles" the top-K candidates —
on real hardware this is an on-device measurement; in this reproduction it is
the cycle-accurate-ish performance simulator (or any callable the caller
provides) — to select the final execution plan.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.dataflow.analyzer import DataflowAnalyzer, DataflowResult
from repro.hardware.spec import HardwareSpec
from repro.obs import trace as obs_trace
from repro.obs.trace import tracer
from repro.search.cost_model import CostModel
from repro.search.pruning import Pruner, PruningStats
from repro.search.space import FusionCandidate, SearchSpace
from repro.ir.graph import GemmChainSpec

#: A profiler maps an analysed candidate to a measured/simulated time in us.
ProfilerFn = Callable[[DataflowResult], float]


@dataclass
class RankedPlan:
    """One analysed candidate together with its predicted and profiled cost."""

    candidate: FusionCandidate
    result: DataflowResult
    predicted_cost_us: float
    profiled_time_us: Optional[float] = None

    @property
    def best_known_time_us(self) -> float:
        """Profiled time when available, predicted cost otherwise."""
        return (
            self.profiled_time_us
            if self.profiled_time_us is not None
            else self.predicted_cost_us
        )


@dataclass
class SearchResult:
    """Outcome of one fusion search.

    ``mode`` records how the plan was found: ``"exact"`` for a full
    enumeration, ``"transfer"`` for a warm-started local search around a
    nearest-shape seed (see :mod:`repro.search.incremental`).
    ``candidates_skipped`` counts candidates whose admissible lower bound
    already exceeded the running top-K threshold, so they were never
    analysed.
    """

    chain: GemmChainSpec
    best: Optional[RankedPlan]
    top_k: List[RankedPlan]
    pruning_stats: PruningStats
    candidates_enumerated: int
    candidates_analyzed: int
    search_time_s: float
    mode: str = "exact"
    candidates_skipped: int = 0
    #: Per-phase wall-clock attribution in microseconds
    #: (``enumerate_prune``/``analyze``/``rank``/``profile`` for exact
    #: searches, ``transfer`` for warm-started ones).
    phase_times_us: Optional[Dict[str, float]] = None

    @property
    def succeeded(self) -> bool:
        """Whether any feasible fused plan was found."""
        return self.best is not None

    def best_result(self) -> DataflowResult:
        """The dataflow analysis of the selected plan."""
        if self.best is None:
            raise RuntimeError("search found no feasible fused plan")
        return self.best.result

    def summary(self) -> "SearchSummary":
        """Compact, serializable summary of this search."""
        return SearchSummary.from_result(self)


@dataclass
class SearchSummary:
    """Serializable digest of one fusion search.

    The plan cache persists this instead of the full :class:`SearchResult`
    (whose ranked candidates hold analyzer state that is expensive to store
    and never needed again).  It exposes the fields downstream consumers
    read — :attr:`succeeded`, :attr:`search_time_s`,
    :attr:`candidates_analyzed` — so a cache-served kernel walks and talks
    like a freshly compiled one.
    """

    workload: str
    succeeded: bool
    candidates_enumerated: int
    candidates_analyzed: int
    search_time_s: float
    predicted_cost_us: Optional[float] = None
    profiled_time_us: Optional[float] = None
    #: ``True`` when this summary was served by the plan cache rather than
    #: produced by a live search.
    from_cache: bool = False
    #: ``"exact"`` or ``"transfer"`` — how the plan was found.
    mode: str = "exact"
    #: Candidates skipped by the admissible lower bound.
    candidates_skipped: int = 0
    #: Per-phase wall-clock attribution in microseconds (``None`` for
    #: summaries persisted before phase attribution existed).
    phase_times_us: Optional[Dict[str, float]] = None

    @classmethod
    def from_result(cls, result: SearchResult) -> "SearchSummary":
        """Digest a full search result."""
        best = result.best
        return cls(
            workload=result.chain.name,
            succeeded=result.succeeded,
            candidates_enumerated=result.candidates_enumerated,
            candidates_analyzed=result.candidates_analyzed,
            search_time_s=result.search_time_s,
            predicted_cost_us=best.predicted_cost_us if best else None,
            profiled_time_us=best.profiled_time_us if best else None,
            mode=result.mode,
            candidates_skipped=result.candidates_skipped,
            phase_times_us=(
                dict(result.phase_times_us)
                if result.phase_times_us is not None
                else None
            ),
        )

    def to_dict(self) -> dict:
        """Serialize to plain JSON-compatible data."""
        return {
            "workload": self.workload,
            "succeeded": self.succeeded,
            "candidates_enumerated": self.candidates_enumerated,
            "candidates_analyzed": self.candidates_analyzed,
            "search_time_s": self.search_time_s,
            "predicted_cost_us": self.predicted_cost_us,
            "profiled_time_us": self.profiled_time_us,
            "mode": self.mode,
            "candidates_skipped": self.candidates_skipped,
            "phase_times_us": self.phase_times_us,
        }

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "SearchSummary":
        """Rebuild a summary from :meth:`to_dict` output.

        Summaries persisted before the incremental-search fields existed
        load with the defaults (``mode="exact"``, no skips, no phase
        attribution).
        """
        raw_phases = payload.get("phase_times_us")
        return cls(
            workload=str(payload["workload"]),
            succeeded=bool(payload["succeeded"]),
            candidates_enumerated=int(payload["candidates_enumerated"]),
            candidates_analyzed=int(payload["candidates_analyzed"]),
            search_time_s=float(payload["search_time_s"]),
            predicted_cost_us=payload.get("predicted_cost_us"),
            profiled_time_us=payload.get("profiled_time_us"),
            from_cache=from_cache,
            mode=str(payload.get("mode", "exact")),
            candidates_skipped=int(payload.get("candidates_skipped", 0)),
            phase_times_us=(
                {str(k): float(v) for k, v in dict(raw_phases).items()}
                if raw_phases is not None
                else None
            ),
        )


class SearchEngine:
    """FlashFuser's fusion search engine.

    Parameters
    ----------
    device:
        Target hardware.
    top_k:
        Number of candidates kept for final profiling; the paper selects 11
        (Figure 12b).
    include_dsm:
        Whether DSM participates in spilling and cluster geometries are
        explored.  Disabling this reproduces SMEM-only prior work.
    profiler:
        Optional callable returning a measured/simulated time for a
        candidate; when omitted the cost model's prediction ranks the top-K.
    space:
        Candidate space (defaults to power-of-two tiles up to 256).
    require_feasible:
        Drop candidates whose persistent intermediate spills to global
        memory (the definition of a fusion failure).
    incremental:
        Memoize the kind-independent core of every candidate analysis in a
        :class:`~repro.search.incremental.SubchainAnalysisCache`, so a
        gated-FFN search reuses its standard-FFN prefix work.  Plan-neutral:
        the selected plans are bit-identical either way.
    lower_bound_prune:
        Skip analysing candidates whose admissible lower bound strictly
        exceeds the running top-K cost threshold.  The bound never
        overestimates (see
        :class:`~repro.search.incremental.CandidateLowerBound`), so the
        surviving top-K — and therefore the selected plan — is unchanged;
        only ``candidates_analyzed`` shrinks.  Off by default because the
        analyzed-count bookkeeping is pinned by equivalence tests.
    transfer_bound:
        Acceptance bound of warm-started transfer searches (used when
        :meth:`search` is given a ``transfer_seed``): the transferred
        plan's predicted cost must stay within this factor of the chain's
        absolute lower bound, else the engine falls back to full
        enumeration.

    Example
    -------
    ::

        from repro.hardware import h100_spec
        from repro.ir.workloads import get_chain_spec
        from repro.search import SearchEngine

        engine = SearchEngine(h100_spec(), top_k=5)
        result = engine.search(get_chain_spec("G1"))
        print(result.succeeded, result.best.predicted_cost_us)
        print(result.summary())      # candidates, prune counts, wall clock

    Most callers should go through :class:`~repro.api.FlashFuser`, which
    memoizes engines per configuration and layers the plan cache on top.
    """

    def __init__(
        self,
        device: HardwareSpec,
        top_k: int = 11,
        include_dsm: bool = True,
        profiler: Optional[ProfilerFn] = None,
        space: Optional[SearchSpace] = None,
        cost_model: Optional[CostModel] = None,
        require_feasible: bool = True,
        max_candidates: Optional[int] = None,
        incremental: bool = True,
        lower_bound_prune: bool = False,
        transfer_bound: float = 2.0,
    ) -> None:
        # Local import: incremental.py returns SearchResult objects, so the
        # module-level dependency must point the other way.
        from repro.search.incremental import (
            CandidateLowerBound,
            SubchainAnalysisCache,
        )

        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.device = device
        self.top_k = top_k
        self.include_dsm = include_dsm and device.has_dsm
        self.profiler = profiler
        self.space = space or SearchSpace(device, include_clusters=self.include_dsm)
        self.cost_model = cost_model or CostModel(device)
        self.incremental = incremental
        self.analysis_cache = SubchainAnalysisCache() if incremental else None
        self.analyzer = DataflowAnalyzer(
            device,
            include_dsm=self.include_dsm,
            analysis_cache=self.analysis_cache,
        )
        self.require_feasible = require_feasible
        self.max_candidates = max_candidates
        self.lower_bound_prune = lower_bound_prune
        self.transfer_bound = transfer_bound
        self.bounds = CandidateLowerBound(device, self.cost_model)

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #
    def search(self, chain: GemmChainSpec, transfer_seed=None) -> SearchResult:
        """Find the best fused execution plan for ``chain``.

        With a ``transfer_seed`` (a
        :class:`~repro.search.incremental.TransferSeed` from a previously
        compiled nearby shape), a bounded local search around the seed
        runs first; its result is returned (``mode="transfer"``) when it
        passes the acceptance bound, otherwise the full enumeration runs
        as usual.
        """
        if transfer_seed is not None:
            with tracer().span("search.transfer", chain=chain.name) as tspan:
                transferred = self._transfer_search(chain, transfer_seed)
                tspan.set("accepted", transferred is not None)
            if transferred is not None:
                if transferred.phase_times_us is None:
                    transferred.phase_times_us = {
                        "transfer": transferred.search_time_s * 1e6
                    }
                return transferred
        start = time.perf_counter()
        analyze_s = 0.0
        rank_s = 0.0
        profile_s = 0.0
        pruner = Pruner(self.device, include_dsm=self.include_dsm)

        enumerated = 0
        analyzed = 0
        skipped = 0
        # Max-heap by (cost, analysis order): entries are (-cost, -counter),
        # so the root is the worst of the current top-K and, among tied
        # costs, the *latest* analysed — evicting it first keeps the top-K
        # membership exactly "the K lexicographically smallest (cost, order)
        # pairs", a fully deterministic rule the sharded parallel engine's
        # merge reproduces independently of shard boundaries.
        heap: List[Tuple[float, int, RankedPlan]] = []
        counter = 0

        candidates = self.space.candidates(chain)
        for candidate in pruner.prune(candidates):
            enumerated += 1
            if self.max_candidates is not None and analyzed >= self.max_candidates:
                # The analysis budget is exhausted; draining the rest of the
                # pruned stream would only burn time without adding plans.
                break
            if (
                self.lower_bound_prune
                and len(heap) == self.top_k
                and self.bounds.lower_bound(chain, candidate) > -heap[0][0]
            ):
                # The admissible bound already exceeds the K-th best cost:
                # this candidate can neither enter the top-K nor change its
                # order, so analysing it would be pure waste.
                skipped += 1
                continue
            analyze_t0 = time.perf_counter()
            result = self.analyzer.analyze(
                chain,
                candidate.schedule,
                candidate.tile,
                candidate.geometry,
                gated_sequential=candidate.gated_sequential,
            )
            analyze_s += time.perf_counter() - analyze_t0
            analyzed += 1
            if self.require_feasible and not result.feasible:
                continue
            cost = self.cost_model.evaluate(result)
            plan = RankedPlan(
                candidate=candidate, result=result, predicted_cost_us=cost
            )
            counter += 1
            if len(heap) < self.top_k:
                heapq.heappush(heap, (-cost, -counter, plan))
            elif -heap[0][0] > cost:
                heapq.heapreplace(heap, (-cost, -counter, plan))

        # Rank by cost with analysis order as the tie-break, so the top-K
        # ordering is fully deterministic (and reproducible by the sharded
        # parallel engine, whose merge uses the same enumeration-order key).
        rank_t0 = time.perf_counter()
        ranked = sorted(
            ((entry[2], -entry[1]) for entry in heap),
            key=lambda pair: (pair[0].predicted_cost_us, pair[1]),
        )
        rank_s += time.perf_counter() - rank_t0

        # Final profiling of the top-K candidates (on-device measurement in
        # the paper, simulator here).
        if self.profiler is not None:
            profile_t0 = time.perf_counter()
            for plan, _ in ranked:
                plan.profiled_time_us = self.profiler(plan.result)
            ranked.sort(key=lambda pair: (pair[0].best_known_time_us, pair[1]))
            profile_s = time.perf_counter() - profile_t0
        top_k = [plan for plan, _ in ranked]

        best = top_k[0] if top_k else None
        elapsed = time.perf_counter() - start
        phase_times_us = {
            "enumerate_prune": max(
                0.0, elapsed - analyze_s - rank_s - profile_s
            )
            * 1e6,
            "analyze": analyze_s * 1e6,
            "rank": rank_s * 1e6,
            "profile": profile_s * 1e6,
        }
        if obs_trace.enabled():
            end_us = obs_trace.now_us()
            tracer().emit(
                "search.exact",
                start_us=end_us - elapsed * 1e6,
                end_us=end_us,
                chain=chain.name,
                analyzed=analyzed,
                skipped=skipped,
            )
        stats = pruner.stats
        stats.initial = max(stats.initial, enumerated)
        return SearchResult(
            chain=chain,
            best=best,
            top_k=top_k,
            pruning_stats=stats,
            candidates_enumerated=stats.initial,
            candidates_analyzed=analyzed,
            search_time_s=elapsed,
            candidates_skipped=skipped,
            phase_times_us=phase_times_us,
        )

    def _transfer_search(self, chain: GemmChainSpec, seed) -> Optional[SearchResult]:
        """Bounded local search around ``seed``; ``None`` means fall back."""
        from repro.search.incremental import TransferSearch

        transfer = TransferSearch(
            self.device,
            space=self.space,
            cost_model=self.cost_model,
            top_k=self.top_k,
            include_dsm=self.include_dsm,
            require_feasible=self.require_feasible,
            transfer_bound=self.transfer_bound,
            profiler=self.profiler,
            analyzer=self.analyzer,
        )
        return transfer.search(chain, seed)
