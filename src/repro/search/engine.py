"""Fusion search algorithm (Algorithm 2).

The engine enumerates candidates, prunes them with Rules 1-5, analyses the
survivors with the dataflow analyzer, ranks them with the minimax cost model
while maintaining a top-K list, and finally "profiles" the top-K candidates —
on real hardware this is an on-device measurement; in this reproduction it is
the cycle-accurate-ish performance simulator (or any callable the caller
provides) — to select the final execution plan.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.dataflow.analyzer import DataflowAnalyzer, DataflowResult
from repro.hardware.spec import HardwareSpec
from repro.search.cost_model import CostModel
from repro.search.pruning import Pruner, PruningStats
from repro.search.space import FusionCandidate, SearchSpace
from repro.ir.graph import GemmChainSpec

#: A profiler maps an analysed candidate to a measured/simulated time in us.
ProfilerFn = Callable[[DataflowResult], float]


@dataclass
class RankedPlan:
    """One analysed candidate together with its predicted and profiled cost."""

    candidate: FusionCandidate
    result: DataflowResult
    predicted_cost_us: float
    profiled_time_us: Optional[float] = None

    @property
    def best_known_time_us(self) -> float:
        """Profiled time when available, predicted cost otherwise."""
        return (
            self.profiled_time_us
            if self.profiled_time_us is not None
            else self.predicted_cost_us
        )


@dataclass
class SearchResult:
    """Outcome of one fusion search."""

    chain: GemmChainSpec
    best: Optional[RankedPlan]
    top_k: List[RankedPlan]
    pruning_stats: PruningStats
    candidates_enumerated: int
    candidates_analyzed: int
    search_time_s: float

    @property
    def succeeded(self) -> bool:
        """Whether any feasible fused plan was found."""
        return self.best is not None

    def best_result(self) -> DataflowResult:
        """The dataflow analysis of the selected plan."""
        if self.best is None:
            raise RuntimeError("search found no feasible fused plan")
        return self.best.result

    def summary(self) -> "SearchSummary":
        """Compact, serializable summary of this search."""
        return SearchSummary.from_result(self)


@dataclass
class SearchSummary:
    """Serializable digest of one fusion search.

    The plan cache persists this instead of the full :class:`SearchResult`
    (whose ranked candidates hold analyzer state that is expensive to store
    and never needed again).  It exposes the fields downstream consumers
    read — :attr:`succeeded`, :attr:`search_time_s`,
    :attr:`candidates_analyzed` — so a cache-served kernel walks and talks
    like a freshly compiled one.
    """

    workload: str
    succeeded: bool
    candidates_enumerated: int
    candidates_analyzed: int
    search_time_s: float
    predicted_cost_us: Optional[float] = None
    profiled_time_us: Optional[float] = None
    #: ``True`` when this summary was served by the plan cache rather than
    #: produced by a live search.
    from_cache: bool = False

    @classmethod
    def from_result(cls, result: SearchResult) -> "SearchSummary":
        """Digest a full search result."""
        best = result.best
        return cls(
            workload=result.chain.name,
            succeeded=result.succeeded,
            candidates_enumerated=result.candidates_enumerated,
            candidates_analyzed=result.candidates_analyzed,
            search_time_s=result.search_time_s,
            predicted_cost_us=best.predicted_cost_us if best else None,
            profiled_time_us=best.profiled_time_us if best else None,
        )

    def to_dict(self) -> dict:
        """Serialize to plain JSON-compatible data."""
        return {
            "workload": self.workload,
            "succeeded": self.succeeded,
            "candidates_enumerated": self.candidates_enumerated,
            "candidates_analyzed": self.candidates_analyzed,
            "search_time_s": self.search_time_s,
            "predicted_cost_us": self.predicted_cost_us,
            "profiled_time_us": self.profiled_time_us,
        }

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "SearchSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            workload=str(payload["workload"]),
            succeeded=bool(payload["succeeded"]),
            candidates_enumerated=int(payload["candidates_enumerated"]),
            candidates_analyzed=int(payload["candidates_analyzed"]),
            search_time_s=float(payload["search_time_s"]),
            predicted_cost_us=payload.get("predicted_cost_us"),
            profiled_time_us=payload.get("profiled_time_us"),
            from_cache=from_cache,
        )


class SearchEngine:
    """FlashFuser's fusion search engine.

    Parameters
    ----------
    device:
        Target hardware.
    top_k:
        Number of candidates kept for final profiling; the paper selects 11
        (Figure 12b).
    include_dsm:
        Whether DSM participates in spilling and cluster geometries are
        explored.  Disabling this reproduces SMEM-only prior work.
    profiler:
        Optional callable returning a measured/simulated time for a
        candidate; when omitted the cost model's prediction ranks the top-K.
    space:
        Candidate space (defaults to power-of-two tiles up to 256).
    require_feasible:
        Drop candidates whose persistent intermediate spills to global
        memory (the definition of a fusion failure).

    Example
    -------
    ::

        from repro.hardware import h100_spec
        from repro.ir.workloads import get_chain_spec
        from repro.search import SearchEngine

        engine = SearchEngine(h100_spec(), top_k=5)
        result = engine.search(get_chain_spec("G1"))
        print(result.succeeded, result.best.predicted_cost_us)
        print(result.summary())      # candidates, prune counts, wall clock

    Most callers should go through :class:`~repro.api.FlashFuser`, which
    memoizes engines per configuration and layers the plan cache on top.
    """

    def __init__(
        self,
        device: HardwareSpec,
        top_k: int = 11,
        include_dsm: bool = True,
        profiler: Optional[ProfilerFn] = None,
        space: Optional[SearchSpace] = None,
        cost_model: Optional[CostModel] = None,
        require_feasible: bool = True,
        max_candidates: Optional[int] = None,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.device = device
        self.top_k = top_k
        self.include_dsm = include_dsm and device.has_dsm
        self.profiler = profiler
        self.space = space or SearchSpace(device, include_clusters=self.include_dsm)
        self.cost_model = cost_model or CostModel(device)
        self.analyzer = DataflowAnalyzer(device, include_dsm=self.include_dsm)
        self.require_feasible = require_feasible
        self.max_candidates = max_candidates

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #
    def search(self, chain: GemmChainSpec) -> SearchResult:
        """Find the best fused execution plan for ``chain``."""
        start = time.perf_counter()
        pruner = Pruner(self.device, include_dsm=self.include_dsm)

        enumerated = 0
        analyzed = 0
        # Max-heap by (cost, analysis order): entries are (-cost, -counter),
        # so the root is the worst of the current top-K and, among tied
        # costs, the *latest* analysed — evicting it first keeps the top-K
        # membership exactly "the K lexicographically smallest (cost, order)
        # pairs", a fully deterministic rule the sharded parallel engine's
        # merge reproduces independently of shard boundaries.
        heap: List[Tuple[float, int, RankedPlan]] = []
        counter = 0

        candidates = self.space.candidates(chain)
        for candidate in pruner.prune(candidates):
            enumerated += 1
            if self.max_candidates is not None and analyzed >= self.max_candidates:
                # The analysis budget is exhausted; draining the rest of the
                # pruned stream would only burn time without adding plans.
                break
            result = self.analyzer.analyze(
                chain,
                candidate.schedule,
                candidate.tile,
                candidate.geometry,
                gated_sequential=candidate.gated_sequential,
            )
            analyzed += 1
            if self.require_feasible and not result.feasible:
                continue
            cost = self.cost_model.evaluate(result)
            plan = RankedPlan(candidate=candidate, result=result, predicted_cost_us=cost)
            counter += 1
            if len(heap) < self.top_k:
                heapq.heappush(heap, (-cost, -counter, plan))
            elif -heap[0][0] > cost:
                heapq.heapreplace(heap, (-cost, -counter, plan))

        # Rank by cost with analysis order as the tie-break, so the top-K
        # ordering is fully deterministic (and reproducible by the sharded
        # parallel engine, whose merge uses the same enumeration-order key).
        ranked = sorted(
            ((entry[2], -entry[1]) for entry in heap),
            key=lambda pair: (pair[0].predicted_cost_us, pair[1]),
        )

        # Final profiling of the top-K candidates (on-device measurement in
        # the paper, simulator here).
        if self.profiler is not None:
            for plan, _ in ranked:
                plan.profiled_time_us = self.profiler(plan.result)
            ranked.sort(key=lambda pair: (pair[0].best_known_time_us, pair[1]))
        top_k = [plan for plan, _ in ranked]

        best = top_k[0] if top_k else None
        elapsed = time.perf_counter() - start
        stats = pruner.stats
        stats.initial = max(stats.initial, enumerated)
        return SearchResult(
            chain=chain,
            best=best,
            top_k=top_k,
            pruning_stats=stats,
            candidates_enumerated=stats.initial,
            candidates_analyzed=analyzed,
            search_time_s=elapsed,
        )
