"""Pruning rules (Section IV-C2).

Five rules cut the search space before any candidate reaches the dataflow
analyzer.  Rule 1 (divisible tile sizes) is inherited from prior work
(MCFuser); Rules 2-5 are specific to the cluster-expanded space:

* **Rule 1 — divisible tile sizes**: block tiles are MMA-granular and the
  cluster tile divides the problem extents evenly.
* **Rule 2 — cluster size constraint**: the per-GEMM product of cluster
  dimensions respects the hardware maximum (16 blocks on H100); both GEMMs
  share one cluster shape by construction of
  :class:`~repro.dsm_comm.geometry.ClusterGeometry`.
* **Rule 3 — activation constraint**: the accumulation dimension of the
  first GEMM (k) must be fully reduced before the activation runs — k is
  the innermost temporal loop, or, if spatial, one cluster covers its whole
  extent (so the all_exchange finishes the reduction on chip).
* **Rule 4 — dependency constraint**: a spatial split of L across clusters
  would require every cluster to see the full intermediate C, which cannot
  be communicated between clusters; L may be spatial only if a single
  cluster tile spans the whole L extent.
* **Rule 5 — memory capacity limit**: the persistent intermediate must fit
  within the on-chip spill budget (registers + SMEM + DSM of the chosen
  cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dataflow.footprint import reused_tensor_footprint
from repro.dataflow.resource_map import default_budgets
from repro.hardware.spec import HardwareSpec
from repro.search.space import FusionCandidate


class PruningRule(Enum):
    """The five rules of Section IV-C2, in application order."""

    DIVISIBLE_TILES = "rule1_divisible_tiles"
    CLUSTER_SIZE = "rule2_cluster_size"
    ACTIVATION = "rule3_activation"
    DEPENDENCY = "rule4_dependency"
    MEMORY_CAPACITY = "rule5_memory_capacity"


@dataclass
class PruningStats:
    """Counts of candidates surviving each rule (Table III)."""

    initial: int = 0
    surviving: Dict[PruningRule, int] = field(default_factory=dict)

    def record(self, rule: PruningRule, count: int) -> None:
        """Record the number of candidates alive after ``rule``."""
        self.surviving[rule] = count

    def reduction_rate(self, rule: PruningRule) -> float:
        """Fractional reduction achieved by ``rule`` relative to its input."""
        rules = list(PruningRule)
        index = rules.index(rule)
        before = self.initial if index == 0 else self.surviving[rules[index - 1]]
        after = self.surviving[rule]
        if before == 0:
            return 0.0
        return 1.0 - after / before

    @property
    def final(self) -> int:
        """Candidates alive after the full cascade."""
        if not self.surviving:
            return self.initial
        return self.surviving[list(PruningRule)[-1]]

    def total_reduction(self) -> float:
        """Overall reduction rate of the cascade."""
        if self.initial == 0:
            return 0.0
        return 1.0 - self.final / self.initial

    def as_rows(self) -> List[Tuple[str, int, float]]:
        """Rows of Table III: (step name, candidate count, reduction rate)."""
        rows: List[Tuple[str, int, float]] = [("Original Space", self.initial, 0.0)]
        for rule in PruningRule:
            if rule in self.surviving:
                rows.append(
                    (f"+ {rule.value}", self.surviving[rule], self.reduction_rate(rule))
                )
        return rows


class Pruner:
    """Apply the pruning cascade to candidates and keep per-rule statistics.

    Parameters
    ----------
    device:
        Hardware spec used for cluster limits and capacity budgets.
    include_dsm:
        Whether the DSM tier counts towards the Rule 5 capacity budget
        (``False`` reproduces the prior-work, SMEM-only space).
    """

    def __init__(self, device: HardwareSpec, include_dsm: bool = True) -> None:
        self.device = device
        self.include_dsm = include_dsm and device.has_dsm
        self.stats = PruningStats()
        # On-chip capacity per cluster size is a pure function of the
        # hardware; cache it because Rule 5 runs for every candidate.
        self._capacity_cache: Dict[Tuple[int, bool], float] = {}

    # ------------------------------------------------------------------ #
    # Individual rules
    # ------------------------------------------------------------------ #
    #: Maximum padding waste tolerated for extents that no MMA-granular tile
    #: divides exactly (e.g. the 196-row M of the C3/C4 conv chains).
    MAX_PADDING_WASTE = 0.125

    def rule1_divisible_tiles(self, candidate: FusionCandidate) -> bool:
        """Rule 1: MMA-granular block tiles that evenly divide the problem.

        Extents that are themselves multiples of the MMA granularity must be
        divided exactly; irregular extents are handled by padding, with the
        waste capped at :data:`MAX_PADDING_WASTE`.
        """
        limits = self.device.cluster_limits
        tile = candidate.tile
        if not tile.respects_mma(limits):
            return False
        if not tile.fits_problem(candidate.chain):
            return False
        mma = limits.mma_tile[0]
        sizes = candidate.chain.dimension_sizes()
        cluster = candidate.tile.cluster_tile(candidate.geometry)
        for dim, extent in sizes.items():
            if extent % cluster[dim] == 0:
                continue
            if extent % mma == 0:
                # A regular extent must be tiled exactly.
                return False
            padded = -(-extent // cluster[dim]) * cluster[dim]
            if (padded - extent) / padded > self.MAX_PADDING_WASTE:
                return False
        return True

    def rule2_cluster_size(self, candidate: FusionCandidate) -> bool:
        """Rule 2: the cluster shape respects the hardware block limit."""
        if not self.include_dsm:
            return candidate.geometry.blocks_per_cluster == 1
        return candidate.geometry.is_valid(self.device.cluster_limits)

    def rule3_activation(self, candidate: FusionCandidate) -> bool:
        """Rule 3: GEMM0's reduction finishes before the activation runs."""
        schedule = candidate.schedule
        chain = candidate.chain
        if schedule.is_temporal("k"):
            return schedule.innermost() == "k"
        # k is spatial: the intra-cluster all_exchange completes the
        # reduction only if one cluster tile spans the whole K extent.
        covered = candidate.tile.block_k * candidate.geometry.cls_k
        return covered >= chain.k

    def rule4_dependency(self, candidate: FusionCandidate) -> bool:
        """Rule 4: a spatial L split must not cross cluster boundaries.

        Blocks in different clusters cannot exchange the intermediate C, so a
        spatial L partition is only legal when one cluster tile spans the
        whole L extent.  Without DSM the same argument applies to a spatial
        split of the GEMM1 reduction dimension N: prior-work kernels have no
        cross-block reduction path, so N may be spatial only if a single
        block covers it.
        """
        schedule = candidate.schedule
        if schedule.is_spatial("l"):
            covered = candidate.tile.block_l * candidate.geometry.cls_l
            if covered < candidate.chain.l:
                return False
        if not self.include_dsm and schedule.is_spatial("n"):
            if candidate.tile.block_n < candidate.chain.n:
                return False
        return True

    def rule5_memory_capacity(self, candidate: FusionCandidate) -> bool:
        """Rule 5: the persistent intermediate fits the on-chip budget."""
        reused = reused_tensor_footprint(
            candidate.chain, candidate.schedule, candidate.tile, candidate.geometry
        )
        on_chip = self._on_chip_capacity(
            candidate.geometry.blocks_per_cluster if self.include_dsm else 1,
            self.include_dsm and candidate.geometry.uses_dsm,
        )
        return reused.footprint_bytes <= on_chip

    def _on_chip_capacity(self, cluster_blocks: int, include_dsm: bool) -> float:
        """Total on-chip spill budget for one cluster size (cached)."""
        key = (cluster_blocks, include_dsm)
        if key not in self._capacity_cache:
            hierarchy = self.device.memory_hierarchy_for_cluster(cluster_blocks)
            budgets = default_budgets(hierarchy, include_dsm=include_dsm)
            self._capacity_cache[key] = sum(
                budget.capacity_bytes
                for budget in budgets
                if budget.capacity_bytes != float("inf")
            )
        return self._capacity_cache[key]

    # ------------------------------------------------------------------ #
    # Cascade application
    # ------------------------------------------------------------------ #
    def rules(self) -> List[Tuple[PruningRule, Callable[[FusionCandidate], bool]]]:
        """The rules in application order."""
        return [
            (PruningRule.DIVISIBLE_TILES, self.rule1_divisible_tiles),
            (PruningRule.CLUSTER_SIZE, self.rule2_cluster_size),
            (PruningRule.ACTIVATION, self.rule3_activation),
            (PruningRule.DEPENDENCY, self.rule4_dependency),
            (PruningRule.MEMORY_CAPACITY, self.rule5_memory_capacity),
        ]

    def passes(self, candidate: FusionCandidate) -> bool:
        """Whether a candidate survives the full cascade."""
        return all(rule(candidate) for _, rule in self.rules())

    def failed_rule(self, candidate: FusionCandidate) -> Optional[PruningRule]:
        """The first rule a candidate fails, or ``None`` if it survives."""
        for rule_id, rule in self.rules():
            if not rule(candidate):
                return rule_id
        return None

    def prune(self, candidates: Iterable[FusionCandidate]) -> Iterator[FusionCandidate]:
        """Yield surviving candidates while accumulating Table III counts."""
        counts = {rule_id: 0 for rule_id, _ in self.rules()}
        initial = 0
        for candidate in candidates:
            initial += 1
            alive = True
            for rule_id, rule in self.rules():
                if alive and rule(candidate):
                    counts[rule_id] += 1
                else:
                    alive = False
            if alive:
                yield candidate
        self.stats = PruningStats(initial=initial, surviving=dict(counts))

    def prune_list(
        self, candidates: Iterable[FusionCandidate]
    ) -> List[FusionCandidate]:
        """Materialised version of :meth:`prune`."""
        return list(self.prune(candidates))
