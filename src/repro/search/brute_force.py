"""Exhaustive brute-force search (the Table VIII baseline).

The brute-force strategy applies only the legality checks that any compiler
must perform (divisible tiles, hardware cluster limit) and then *profiles
every remaining candidate* instead of ranking with the analytical cost model
and profiling a small top-K.  Profiling — an on-device measurement in the
paper, a simulator invocation here — is the expensive step, so the search
engine's cost-model shortcut delivers one to two orders of magnitude lower
compilation time (Table VIII).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.dataflow.analyzer import DataflowAnalyzer
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec
from repro.search.engine import ProfilerFn, RankedPlan
from repro.search.pruning import Pruner
from repro.search.space import SearchSpace


@dataclass
class BruteForceResult:
    """Outcome of a brute-force search."""

    chain: GemmChainSpec
    best: Optional[RankedPlan]
    candidates_profiled: int
    search_time_s: float

    @property
    def succeeded(self) -> bool:
        """Whether a feasible plan was found."""
        return self.best is not None


class BruteForceSearch:
    """Profile every legal candidate and keep the fastest.

    Parameters
    ----------
    device:
        Target hardware.
    profiler:
        Measured/simulated execution time per candidate.  A per-candidate
        ``profiling_overhead_s`` models the compile-and-run cost that makes
        brute force expensive in practice (kernel compilation dominates on
        real hardware); it defaults to zero so unit tests stay fast.
    """

    def __init__(
        self,
        device: HardwareSpec,
        profiler: ProfilerFn,
        include_dsm: bool = True,
        space: Optional[SearchSpace] = None,
        profiling_overhead_s: float = 0.0,
        max_candidates: Optional[int] = None,
    ) -> None:
        self.device = device
        self.profiler = profiler
        self.include_dsm = include_dsm and device.has_dsm
        self.space = space or SearchSpace(device, include_clusters=self.include_dsm)
        self.analyzer = DataflowAnalyzer(device, include_dsm=self.include_dsm)
        self.profiling_overhead_s = profiling_overhead_s
        self.max_candidates = max_candidates

    def search(self, chain: GemmChainSpec) -> BruteForceResult:
        """Profile every legal candidate of ``chain`` and return the best."""
        start = time.perf_counter()
        pruner = Pruner(self.device, include_dsm=self.include_dsm)
        legality_rules = [
            pruner.rule1_divisible_tiles,
            pruner.rule2_cluster_size,
            pruner.rule3_activation,
            pruner.rule4_dependency,
        ]

        best: Optional[RankedPlan] = None
        profiled = 0
        simulated_overhead_s = 0.0
        for candidate in self.space.candidates(chain):
            if self.max_candidates is not None and profiled >= self.max_candidates:
                break
            if not all(rule(candidate) for rule in legality_rules):
                continue
            result = self.analyzer.analyze(
                chain,
                candidate.schedule,
                candidate.tile,
                candidate.geometry,
                gated_sequential=candidate.gated_sequential,
            )
            if not result.feasible:
                continue
            measured = self.profiler(result)
            simulated_overhead_s += self.profiling_overhead_s
            profiled += 1
            plan = RankedPlan(
                candidate=candidate,
                result=result,
                predicted_cost_us=measured,
                profiled_time_us=measured,
            )
            if best is None or measured < best.profiled_time_us:
                best = plan

        elapsed = time.perf_counter() - start + simulated_overhead_s
        return BruteForceResult(
            chain=chain,
            best=best,
            candidates_profiled=profiled,
            search_time_s=elapsed,
        )
