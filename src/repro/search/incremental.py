"""Incremental and transfer-aware search.

Three cooperating mechanisms shrink the cold-compile cliff without ever
changing which plan a full search would select:

* **Compositional reuse** — :class:`SubchainAnalysisCache` memoizes the
  chain-kind-independent core of every dataflow analysis
  (:class:`~repro.dataflow.analyzer.SubchainAnalysis`), keyed by the
  canonical *subchain* hash (the chain with its kind and activation
  normalised away) plus the candidate.  A gated-FFN search analyses each
  (schedule, tile, geometry) point once and reuses the core across both
  gated modes — and across canonically dimension-identical chains of any
  kind — instead of recomputing its standard-FFN prefix work.
* **Admissible lower bounds** — :class:`CandidateLowerBound` prices a
  candidate *before* analysis using only its guaranteed-minimum global
  traffic and its exact compute time.  Both components bound the cost
  model's eventual verdict from below (the global volume only ever grows
  during analysis and the compute stage is replicated exactly), so
  best-first enumeration may skip any candidate whose bound already
  exceeds the current top-K threshold without changing the top-K.
* **Warm-start transfer** — :class:`TransferSearch` seeds a bounded local
  search from the plan of the nearest previously compiled shape
  (:class:`ShapeIndex`), and accepts the result only when it is provably
  within ``transfer_bound`` of the chain's absolute lower bound —
  otherwise the caller falls back to full enumeration.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace as _dataclass_replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.locks import make_lock
from repro.dataflow.analyzer import DataflowAnalyzer, SubchainAnalysis
from repro.dataflow.footprint import io_tensor_traffic, tensor_size_bytes
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import ChainKind, GemmChainSpec
from repro.ir.ops import ActivationKind
from repro.obs.logging import get_logger, log_event
from repro.search.cost_model import CostModel
from repro.search.pruning import Pruner, PruningStats
from repro.search.space import FusionCandidate, SearchSpace

_logger = get_logger(__name__)

#: Chain-kind/activation values every subchain is normalised to before
#: hashing, so chains that differ only in those fields share cache entries.
_NORMAL_KIND = ChainKind.STANDARD_FFN
_NORMAL_ACTIVATION = ActivationKind.RELU


class SubchainAnalysisCache:
    """Bounded, thread-safe memo for kind-independent analysis cores.

    Keys combine the canonical *subchain* token — the chain's canonical
    hash after normalising away its kind and activation, which do not
    enter the core — with the frozen candidate components.  The cache is
    only valid within one analyzer device context (device fingerprint,
    DSM setting, reserve knobs); construct one per analyzer, or pass an
    explicit ``context`` string when sharing.
    """

    def __init__(self, max_entries: int = 65536, context: str = "") -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.context = context
        self.hits = 0
        self.misses = 0
        self._lock = make_lock("subchain-memo")
        self._entries: "OrderedDict[tuple, SubchainAnalysis]" = OrderedDict()
        self._tokens: Dict[GemmChainSpec, str] = {}

    def _token(self, chain: GemmChainSpec) -> str:
        token = self._tokens.get(chain)
        if token is None:
            normalized = chain
            if (
                chain.kind is not _NORMAL_KIND
                or chain.activation is not _NORMAL_ACTIVATION
            ):
                normalized = _dataclass_replace(
                    chain, kind=_NORMAL_KIND, activation=_NORMAL_ACTIVATION
                )
            token = normalized.canonical_hash()
            self._tokens[chain] = token
        return token

    def _key(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: ClusterGeometry,
    ) -> tuple:
        return (self.context, self._token(chain), schedule, tile, geometry)

    def lookup(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: ClusterGeometry,
    ) -> Optional[SubchainAnalysis]:
        """The cached core for one candidate, or ``None``."""
        key = self._key(chain, schedule, tile, geometry)
        with self._lock:
            core = self._entries.get(key)
            if core is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return core

    def store(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: ClusterGeometry,
        analysis: SubchainAnalysis,
    ) -> None:
        """Remember the core for one candidate (evicting LRU entries)."""
        key = self._key(chain, schedule, tile, geometry)
        with self._lock:
            self._entries[key] = analysis
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (diagnostics only)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


class CandidateLowerBound:
    """Admissible cost lower bounds, computable without a dataflow analysis.

    For a candidate, :meth:`lower_bound` is ``max(global-traffic time,
    compute time)`` where the global traffic counts only the streamed
    input/output tensors — exactly the first contribution the analyzer
    charges to global memory, before any spill or communication traffic is
    added — and the compute time replicates the cost model's formula
    exactly.  Since global bandwidth is never SM-scaled, every later
    addition to the global volume can only raise the level cost, and the
    minimax objective is a maximum over stages, the bound never exceeds
    :meth:`CostModel.evaluate` of the analysed candidate.

    :meth:`chain_lower_bound` is candidate-independent: the chain's
    minimum I/O bytes over global bandwidth versus its FLOPs at the best
    possible efficiency.  It bounds every candidate's cost from below,
    including the full search's winner — the anchor the transfer
    acceptance test compares against.
    """

    def __init__(self, device: HardwareSpec, cost_model: CostModel) -> None:
        self.device = device
        self.cost_model = cost_model

    def lower_bound(self, chain: GemmChainSpec, candidate: FusionCandidate) -> float:
        """A cost the analysed candidate can never beat."""
        schedule, tile, geometry = (
            candidate.schedule,
            candidate.tile,
            candidate.geometry,
        )
        a = io_tensor_traffic("A", chain, schedule, tile, geometry)
        b = io_tensor_traffic("B", chain, schedule, tile, geometry)
        d = io_tensor_traffic("D", chain, schedule, tile, geometry)
        input_traffic = (a + b) + d
        volume = input_traffic + float(tensor_size_bytes("E", chain))
        memory_us = volume / (self.device.global_bandwidth_gbps * 1e3)
        return max(memory_us, self._compute_us(chain, candidate))

    def chain_lower_bound(self, chain: GemmChainSpec) -> float:
        """A cost no candidate of ``chain`` can beat."""
        memory_us = float(chain.io_bytes_min()) / (
            self.device.global_bandwidth_gbps * 1e3
        )
        effective_tflops = (
            self.device.peak_fp16_tflops * self.cost_model.compute_efficiency
        )
        compute_us = chain.total_flops() / (effective_tflops * 1e6)
        return max(memory_us, compute_us)

    def _compute_us(self, chain: GemmChainSpec, candidate: FusionCandidate) -> float:
        # Exact replica of CostModel._compute_time_us / _occupied_sms on the
        # candidate's components (no DataflowResult required).
        blocks = 1
        sizes = chain.dimension_sizes()
        for dim in ("m", "n", "k", "l"):
            if candidate.schedule.is_spatial(dim):
                blocks *= max(1, sizes[dim] // max(1, candidate.tile.block_of(dim)))
            else:
                blocks *= candidate.geometry.size_of(dim)
        occupied = max(1, min(self.device.num_sms, blocks))
        occupancy = occupied / self.device.num_sms
        efficiency = self.cost_model.compute_efficiency * max(
            0.25, min(1.0, occupancy)
        )
        effective_tflops = self.device.peak_fp16_tflops * efficiency
        return chain.total_flops() / (effective_tflops * 1e6)


@dataclass(frozen=True)
class TransferSeed:
    """The reusable skeleton of a previously selected execution plan."""

    schedule: LoopSchedule
    tile: TileConfig
    geometry: ClusterGeometry


def seed_from_plan_dict(plan: Dict[str, object]) -> TransferSeed:
    """Extract a :class:`TransferSeed` from an ``ExecutionPlan.to_dict()``.

    Duck-typed on the serialized plan schema so the search layer never
    imports the runtime cache (which would be circular).
    """
    schedule_payload = plan["schedule"]
    schedule = LoopSchedule(
        spatial=frozenset(schedule_payload["spatial"]),
        temporal=tuple(schedule_payload["temporal"]),
    )
    tile_payload = plan["tile"]
    tile = TileConfig(
        block_m=int(tile_payload["m"]),
        block_n=int(tile_payload["n"]),
        block_k=int(tile_payload["k"]),
        block_l=int(tile_payload["l"]),
    )
    geometry = ClusterGeometry(*(int(value) for value in plan["geometry"]))
    return TransferSeed(schedule=schedule, tile=tile, geometry=geometry)


def shape_family_key(
    chain: GemmChainSpec,
    device: HardwareSpec,
    search_config: Dict[str, object],
) -> str:
    """Key grouping shapes whose plans may seed each other.

    A family fixes everything except the problem dimensions: chain kind,
    activation, dtype, the device fingerprint and the plan-shaping search
    knobs.  Within a family, :class:`ShapeIndex` ranks entries by
    dimension distance.
    """
    canonical = {
        key: value
        for key, value in chain.canonical_dict().items()
        if key not in ("m", "n", "k", "l")
    }
    payload = {
        "canonical": canonical,
        "device": device.fingerprint(),
        "search": {key: search_config[key] for key in sorted(search_config)},
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def shape_distance(
    a: Tuple[int, int, int, int], b: Tuple[int, int, int, int]
) -> float:
    """Log-scale distance between two ``(m, n, k, l)`` shapes.

    Each dimension contributes the magnitude of its log2 ratio, so doubling
    any one dimension costs 1.0 and the metric is symmetric:

    >>> shape_distance((64, 768, 768, 1), (64, 768, 768, 1))
    0.0
    >>> shape_distance((64, 768, 768, 1), (256, 768, 768, 1))
    2.0
    >>> shape_distance((256, 768, 768, 1), (64, 768, 768, 1))
    2.0
    """
    return sum(
        abs(math.log2(max(1, x) / max(1, y))) for x, y in zip(a, b)
    )


class ShapeIndex:
    """Nearest-shape registry of previously selected plans.

    Maps a family key (see :func:`shape_family_key`) to a bounded set of
    ``(m, n, k, l) -> payload`` entries; :meth:`nearest` returns the
    payload whose shape minimises :func:`shape_distance` (ties broken by
    the smaller shape tuple, so lookups are deterministic).  Payloads are
    opaque — the in-process index stores serialized plans, the plan cache
    stores entry keys.
    """

    def __init__(self, max_entries_per_family: int = 64) -> None:
        if max_entries_per_family < 1:
            raise ValueError("max_entries_per_family must be >= 1")
        self.max_entries_per_family = max_entries_per_family
        self._lock = make_lock("shape-index")
        self._families: Dict[str, "OrderedDict[tuple, object]"] = {}

    def register(
        self, family: str, dims: Tuple[int, int, int, int], payload: object
    ) -> None:
        """Remember ``payload`` as the plan for ``dims`` in ``family``."""
        dims = tuple(int(value) for value in dims)
        with self._lock:
            entries = self._families.setdefault(family, OrderedDict())
            entries[dims] = payload
            entries.move_to_end(dims)
            while len(entries) > self.max_entries_per_family:
                entries.popitem(last=False)

    def nearest(
        self, family: str, dims: Tuple[int, int, int, int]
    ) -> Optional[object]:
        """The payload of the family's nearest registered shape."""
        dims = tuple(int(value) for value in dims)
        with self._lock:
            entries = self._families.get(family)
            if not entries:
                return None
            best = min(
                entries.items(),
                key=lambda item: (shape_distance(dims, item[0]), item[0]),
            )
            return best[1]

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._families.values())


class TransferSearch:
    """Bounded local search around a transferred plan (warm start).

    The neighborhood fixes the seed's loop schedule and explores tiles and
    geometries whose per-dimension extents are within a factor of two of
    the seed's, across all gated modes — a few hundred candidates instead
    of the full cross product.  Candidates run through the same pruning
    cascade, analyzer and cost model as the full search, best-first in
    ``(lower bound, enumeration index)`` order so the neighborhood top-K
    is exact while most of it is skipped.

    The result is accepted only when the neighborhood's cheapest predicted
    cost stays within ``transfer_bound`` times the chain's absolute lower
    bound; since that bound also undercuts the full search's winner, an
    accepted transfer carries a plan provably within ``transfer_bound`` of
    optimal in its top-K.  A rejection returns ``None`` and the caller
    falls back to full enumeration.
    """

    def __init__(
        self,
        device: HardwareSpec,
        space: SearchSpace,
        cost_model: CostModel,
        top_k: int = 11,
        include_dsm: bool = True,
        require_feasible: bool = True,
        transfer_bound: float = 2.0,
        profiler=None,
        analyzer: Optional[DataflowAnalyzer] = None,
    ) -> None:
        if transfer_bound < 1.0:
            raise ValueError("transfer_bound must be >= 1.0")
        self.device = device
        self.space = space
        self.cost_model = cost_model
        self.top_k = top_k
        self.include_dsm = include_dsm and device.has_dsm
        self.require_feasible = require_feasible
        self.transfer_bound = transfer_bound
        self.profiler = profiler
        self.analyzer = analyzer or DataflowAnalyzer(
            device, include_dsm=self.include_dsm
        )
        self.bounds = CandidateLowerBound(device, cost_model)

    # ------------------------------------------------------------------ #
    # Neighborhood construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _near(value: int, seed_value: int) -> bool:
        return seed_value // 2 <= value <= seed_value * 2

    def neighborhood(
        self, chain: GemmChainSpec, seed: TransferSeed
    ) -> List[FusionCandidate]:
        """Seed-local candidates, in deterministic enumeration order."""
        components = self.space.components(chain)
        if seed.schedule not in components.schedules:
            return []
        tiles = [
            tile
            for tile in components.tiles
            if all(
                self._near(tile.block_of(dim), seed.tile.block_of(dim))
                for dim in ("m", "n", "k", "l")
            )
        ]
        geometries = [
            geometry
            for geometry in components.geometries
            if all(
                self._near(geometry.size_of(dim), seed.geometry.size_of(dim))
                for dim in ("m", "n", "k", "l")
            )
        ]
        candidates: List[FusionCandidate] = []
        for geometry in geometries:
            for tile in tiles:
                for gated_sequential in components.gated_modes:
                    candidates.append(
                        FusionCandidate(
                            chain=chain,
                            schedule=seed.schedule,
                            tile=tile,
                            geometry=geometry,
                            gated_sequential=gated_sequential,
                        )
                    )
        return candidates

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, chain: GemmChainSpec, seed: TransferSeed):
        """Run the bounded local search; ``None`` means "fall back".

        Returns a :class:`~repro.search.engine.SearchResult` with
        ``mode="transfer"`` when the neighborhood's best plan passes the
        acceptance bound.
        """
        from repro.search.engine import RankedPlan, SearchResult

        start = time.perf_counter()
        candidates = self.neighborhood(chain, seed)
        if not candidates:
            return None
        pruner = Pruner(self.device, include_dsm=self.include_dsm)
        survivors = [
            (index, candidate)
            for index, candidate in enumerate(candidates)
            if pruner.passes(candidate)
        ]
        ordered = sorted(
            (
                (self.bounds.lower_bound(chain, candidate), index, candidate)
                for index, candidate in survivors
            ),
            key=lambda entry: (entry[0], entry[1]),
        )

        analyzed = 0
        skipped = 0
        ranked: List[Tuple[float, int, "RankedPlan"]] = []
        worst_cost = math.inf
        for lower_bound, index, candidate in ordered:
            if len(ranked) >= self.top_k and lower_bound > worst_cost:
                # Bounds are sorted ascending: every remaining candidate
                # costs strictly more than the current K-th best, so the
                # neighborhood top-K is complete.
                skipped = len(ordered) - analyzed
                break
            result = self.analyzer.analyze(
                chain,
                candidate.schedule,
                candidate.tile,
                candidate.geometry,
                gated_sequential=candidate.gated_sequential,
            )
            analyzed += 1
            if self.require_feasible and not result.feasible:
                continue
            cost = self.cost_model.evaluate(result)
            plan = RankedPlan(
                candidate=candidate, result=result, predicted_cost_us=cost
            )
            ranked.append((cost, index, plan))
            if len(ranked) >= self.top_k:
                ranked.sort(key=lambda entry: (entry[0], entry[1]))
                ranked = ranked[: self.top_k]
                worst_cost = ranked[-1][0]
        ranked.sort(key=lambda entry: (entry[0], entry[1]))
        ranked = ranked[: self.top_k]
        if not ranked:
            return None

        plans = [(plan, index) for _, index, plan in ranked]
        if self.profiler is not None:
            for plan, _ in plans:
                plan.profiled_time_us = self.profiler(plan.result)
            plans.sort(key=lambda pair: (pair[0].best_known_time_us, pair[1]))
        top_k = [plan for plan, _ in plans]
        best = top_k[0]

        # Acceptance: the cost model must certify that the neighborhood
        # holds a plan provably close to optimal — its cheapest predicted
        # cost within the bound of the chain's absolute floor.  The
        # certificate is the *minimum* over the top-K, not the profiled
        # winner's cost: profiling may promote a plan the cost model ranks
        # lower (exactly as the full search's final selection does), and
        # that re-ranking must not void the certificate.
        chain_bound = self.bounds.chain_lower_bound(chain)
        certificate = min(plan.predicted_cost_us for plan in top_k)
        if certificate > self.transfer_bound * chain_bound:
            log_event(
                _logger,
                "transfer-fallback",
                chain=chain.name,
                certificate_us=round(certificate, 3),
                bound_us=round(self.transfer_bound * chain_bound, 3),
            )
            return None

        elapsed = time.perf_counter() - start
        stats = PruningStats(initial=len(candidates), surviving={})
        return SearchResult(
            chain=chain,
            best=best,
            top_k=top_k,
            pruning_stats=stats,
            candidates_enumerated=len(candidates),
            candidates_analyzed=analyzed,
            search_time_s=elapsed,
            mode="transfer",
            candidates_skipped=skipped,
        )
