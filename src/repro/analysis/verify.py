"""Semantic verification of cached execution plans.

Disk :class:`~repro.runtime.cache.PlanCache` entries — including the ones
fleet workers adopt through the warm-plan broadcast — are plain JSON files
in a shared directory.  Nothing stops a truncated write from a crashed
process, a stale file from an older format, or a tampered payload from
reaching :meth:`PlanCacheEntry.rehydrate` and being served fleet-wide.
:class:`PlanVerifier` re-derives the invariants a legal entry must satisfy
before it is trusted:

* **structure** — the plan/report/search/traffic payloads decode into
  their dataclasses at all (loop-schedule coverage and cluster-geometry
  divisibility are enforced by the dataclass constructors themselves);
* **legality** — the decoded candidate re-passes the pruning cascade of
  Section IV-C2 (MMA-granular tiles, cluster limits, activation and
  dependency constraints, and the Rule 5 check that the persistent
  intermediate fits the fingerprinted device's SMEM (+ reserve), register
  and DSM budgets);
* **consistency** — the stored simulation report, search summary and
  traffic report agree with the plan they describe (``time_us`` matches
  ``simulated_time_us``, the search actually succeeded, volumes are
  non-negative);
* **identity** — the entry's key matches the filename it was loaded from
  and, when the entry carries its device fingerprint and search config,
  the key recomputed from the payload.

A single verifier instance is attached to every ``PlanCache``; entries
failing any check are rejected at load (counted in ``CacheStats``) and the
request transparently falls through to a cold compile.  The same checks
back the ``python -m repro.analysis audit <cache-dir>`` CLI via
:func:`audit_cache_dir`, and :func:`verify_model_plan` applies the
segment-level invariants to assembled :class:`~repro.graphs.plan.ModelPlan`
objects in tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.codegen.plan import ExecutionPlan
from repro.hardware.cluster import ClusterLimits
from repro.hardware.dsm import DsmModel
from repro.hardware.memory import MemoryHierarchy, MemoryLevel
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec
from repro.search.pruning import Pruner
from repro.search.space import FusionCandidate

#: Relative tolerance for float agreement between stored payloads that
#: describe the same quantity (serialization round-trips are exact, so the
#: slack only absorbs benign float formatting).
REL_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One failed invariant found by the verifier.

    Parameters
    ----------
    check:
        Dotted identifier of the failed check (e.g. ``"capacity.rule5"``).
    message:
        Human-readable description of the failure.
    key:
        Cache key of the offending entry, when known.
    """

    check: str
    message: str
    key: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"[{self.key[:12]}…] " if self.key else ""
        return f"{prefix}{self.check}: {self.message}"


def _close(a: float, b: float, rel: float = REL_TOLERANCE) -> bool:
    scale = max(abs(a), abs(b), 1e-12)
    return abs(a - b) <= rel * scale


def spec_from_fingerprint(fingerprint: Dict[str, object]) -> HardwareSpec:
    """Rebuild a :class:`HardwareSpec` from its cache-key fingerprint.

    The fingerprint records everything that can steer a fusion plan —
    capacities, bandwidths, cluster limits — which is exactly what the
    capacity and legality checks need.  The DSM *performance* model is not
    fingerprinted; a default one stands in, which is irrelevant here
    because verification never re-simulates.

    Parameters
    ----------
    fingerprint:
        A :meth:`repro.hardware.spec.HardwareSpec.fingerprint` payload.
    """
    levels = [
        MemoryLevel(
            name=str(name),
            capacity_bytes=int(capacity),
            bandwidth_gbps=float(bandwidth),
            latency_cycles=float(latency),
        )
        for name, capacity, bandwidth, latency in fingerprint["levels"]
    ]
    max_blocks, dim_sizes, mma_tile = fingerprint["cluster_limits"]
    return HardwareSpec(
        name=str(fingerprint["name"]),
        num_sms=int(fingerprint["num_sms"]),
        peak_fp16_tflops=float(fingerprint["peak_fp16_tflops"]),
        clock_ghz=float(fingerprint["clock_ghz"]),
        hierarchy=MemoryHierarchy(levels),
        dsm=DsmModel() if fingerprint.get("has_dsm") else None,
        cluster_limits=ClusterLimits(
            max_blocks_per_cluster=int(max_blocks),
            allowed_dim_sizes=tuple(int(v) for v in dim_sizes),
            mma_tile=tuple(int(v) for v in mma_tile),
        ),
        bytes_per_element=int(fingerprint["bytes_per_element"]),
    )


class PlanVerifier:
    """Semantic invariant checks over cached plans and cache entries.

    Parameters
    ----------
    device:
        Device used for capacity/legality checks when an entry does not
        carry its own fingerprint (entries written by this codebase always
        do; ``None`` skips device checks for fingerprint-less entries).

    Example
    -------
    ::

        from repro import FlashFuser, PlanCache
        from repro.analysis import PlanVerifier

        cache = PlanCache(directory="/tmp/plans")
        with FlashFuser(cache=cache) as compiler:
            compiler.compile_workload("G4")
        verifier = PlanVerifier()
        for key in cache.disk_keys():
            entry = cache.get(key)
            assert verifier.verify_entry(entry, expected_key=key) == []
    """

    def __init__(self, device: Optional[HardwareSpec] = None) -> None:
        self.device = device
        self._pruners: Dict[str, Pruner] = {}

    # ------------------------------------------------------------------ #
    # Plan-level checks
    # ------------------------------------------------------------------ #
    def verify_plan(
        self,
        plan: ExecutionPlan,
        device: Optional[HardwareSpec] = None,
        include_dsm: Optional[bool] = None,
        key: Optional[str] = None,
    ) -> List[Violation]:
        """Check one decoded plan against the pruning-cascade invariants.

        Returns the list of violations (empty for a legal plan).  The
        schedule/geometry constructor invariants already held or the plan
        could not have been built; what is re-derived here is the Section
        IV-C2 cascade — tile granularity, cluster validity, activation and
        dependency legality, and the Rule 5 on-chip capacity bound.
        """
        violations: List[Violation] = []
        device = device or self.device
        if device is None:
            return violations
        if include_dsm is None:
            include_dsm = device.has_dsm
        candidate = FusionCandidate(
            chain=plan.chain,
            schedule=plan.schedule,
            tile=plan.tile,
            geometry=plan.geometry,
        )
        pruner = self._pruner_for(device, bool(include_dsm))
        failed = pruner.failed_rule(candidate)
        if failed is not None:
            violations.append(
                Violation(
                    check=f"legality.{failed.value}",
                    message=(
                        f"plan for chain {plan.chain.name!r} "
                        f"({candidate.label()}) fails {failed.value} on "
                        f"device {device.name!r}"
                    ),
                    key=key,
                )
            )
        if plan.predicted_cost_us < 0 or plan.simulated_time_us < 0:
            violations.append(
                Violation(
                    check="consistency.negative_cost",
                    message="plan carries a negative predicted/simulated cost",
                    key=key,
                )
            )
        for name, value in plan.volumes.items():
            if value < 0:
                violations.append(
                    Violation(
                        check="consistency.negative_volume",
                        message=f"data-movement volume {name!r} is negative",
                        key=key,
                    )
                )
        return violations

    def _pruner_for(self, device: HardwareSpec, include_dsm: bool) -> Pruner:
        cache_key = f"{json.dumps(device.fingerprint(), sort_keys=True)}|{include_dsm}"
        pruner = self._pruners.get(cache_key)
        if pruner is None:
            pruner = Pruner(device, include_dsm=include_dsm)
            self._pruners[cache_key] = pruner
        return pruner

    # ------------------------------------------------------------------ #
    # Entry-level checks
    # ------------------------------------------------------------------ #
    def verify_entry(
        self, entry, expected_key: Optional[str] = None
    ) -> List[Violation]:
        """Check one parsed cache entry end to end.

        ``entry`` is duck-typed (``key``/``plan``/``report``/``search``/
        ``traffic`` plus the optional ``device`` fingerprint and
        ``search_config``) so this module never imports the runtime layer
        that imports it.  Returns all violations found; an empty list means
        the entry may be rehydrated and served.
        """
        violations: List[Violation] = []
        key = getattr(entry, "key", None)
        if expected_key is not None and key != expected_key:
            violations.append(
                Violation(
                    check="identity.key_mismatch",
                    message=(
                        f"entry key {str(key)[:12]}… does not match its "
                        f"storage key {expected_key[:12]}…"
                    ),
                    key=expected_key,
                )
            )
        try:
            plan = ExecutionPlan.from_dict(entry.plan)
        except (KeyError, TypeError, ValueError) as exc:
            violations.append(
                Violation(
                    check="structure.plan",
                    message=f"plan payload does not decode: {exc}",
                    key=key,
                )
            )
            return violations
        device: Optional[HardwareSpec] = None
        fingerprint = getattr(entry, "device", None)
        if fingerprint is not None:
            try:
                device = spec_from_fingerprint(fingerprint)
            except (KeyError, TypeError, ValueError) as exc:
                violations.append(
                    Violation(
                        check="structure.device",
                        message=f"device fingerprint does not decode: {exc}",
                        key=key,
                    )
                )
        search_config = getattr(entry, "search_config", None)
        include_dsm = None
        if isinstance(search_config, dict) and "include_dsm" in search_config:
            include_dsm = bool(search_config["include_dsm"])
        violations.extend(
            self.verify_plan(plan, device=device, include_dsm=include_dsm, key=key)
        )
        violations.extend(self._verify_consistency(entry, plan, key))
        violations.extend(
            self._verify_key_recompute(entry, plan, device, search_config, key)
        )
        return violations

    def _verify_consistency(
        self, entry, plan: ExecutionPlan, key: Optional[str]
    ) -> List[Violation]:
        """Plan <-> report <-> search <-> traffic agreement."""
        violations: List[Violation] = []
        report = entry.report
        search = entry.search
        traffic = entry.traffic
        try:
            time_us = float(report["time_us"])
            if not _close(time_us, plan.simulated_time_us):
                violations.append(
                    Violation(
                        check="consistency.report_time",
                        message=(
                            f"report time_us={time_us:.6g} disagrees with "
                            f"plan simulated_time_us="
                            f"{plan.simulated_time_us:.6g}"
                        ),
                        key=key,
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            violations.append(
                Violation(
                    check="structure.report",
                    message=f"report payload is malformed: {exc}",
                    key=key,
                )
            )
        try:
            if not bool(search["succeeded"]):
                violations.append(
                    Violation(
                        check="consistency.search_failed",
                        message="entry stores a search summary marked failed",
                        key=key,
                    )
                )
        except (KeyError, TypeError) as exc:
            violations.append(
                Violation(
                    check="structure.search",
                    message=f"search payload is malformed: {exc}",
                    key=key,
                )
            )
        try:
            read_bytes = float(traffic["read_bytes"])
            write_bytes = float(traffic["write_bytes"])
            if read_bytes < 0 or write_bytes < 0:
                violations.append(
                    Violation(
                        check="consistency.negative_traffic",
                        message="traffic report carries negative byte counts",
                        key=key,
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            violations.append(
                Violation(
                    check="structure.traffic",
                    message=f"traffic payload is malformed: {exc}",
                    key=key,
                )
            )
        return violations

    def _verify_key_recompute(
        self,
        entry,
        plan: ExecutionPlan,
        device: Optional[HardwareSpec],
        search_config,
        key: Optional[str],
    ) -> List[Violation]:
        """Recompute the cache key from the payload when possible."""
        if device is None or not isinstance(search_config, dict):
            return []
        # Local import: repro.runtime.cache imports this module.
        from repro.runtime.cache import plan_cache_key

        recomputed = plan_cache_key(plan.chain, device, search_config)
        if recomputed == key:
            return []
        return [
            Violation(
                check="identity.key_recompute",
                message=(
                    "key recomputed from the stored chain/device/search "
                    f"config ({recomputed[:12]}…) disagrees with the entry "
                    f"key ({str(key)[:12]}…)"
                ),
                key=key,
            )
        ]


def verify_model_plan(plan) -> List[Violation]:
    """Segment-level invariants of an assembled model plan.

    Checks that segments cover disjoint, in-order operator ranges (the
    topological-legality contract of
    :func:`repro.graphs.plan.assemble_plan`), that fused segments carry a
    kernel while unfusable ones carry an operator charge, and that every
    charged time is non-negative.

    Parameters
    ----------
    plan:
        A :class:`repro.graphs.plan.ModelPlan`.
    """
    violations: List[Violation] = []
    last_anchor = -1
    seen: set = set()
    for index, segment in enumerate(plan.segments):
        anchor = segment.anchor
        if anchor < last_anchor:
            violations.append(
                Violation(
                    check="segments.order",
                    message=(
                        f"segment {index} anchored at {anchor} precedes the "
                        f"previous segment's anchor {last_anchor}"
                    ),
                )
            )
        last_anchor = max(last_anchor, anchor)
        overlap = seen.intersection(segment.operators)
        if overlap:
            violations.append(
                Violation(
                    check="segments.overlap",
                    message=(
                        f"segment {index} re-covers operators "
                        f"{sorted(overlap)!r}"
                    ),
                )
            )
        seen.update(segment.operators)
        if segment.charged_us < 0:
            violations.append(
                Violation(
                    check="segments.negative_time",
                    message=f"segment {index} charges a negative time",
                )
            )
    return violations


@dataclass
class AuditResult:
    """Outcome of auditing one disk cache entry file."""

    path: str
    key: str
    status: str  # "ok" | "stale" | "corrupt" | "rejected"
    violations: List[Violation]


@dataclass
class AuditReport:
    """Aggregate outcome of :func:`audit_cache_dir`."""

    results: List[AuditResult]

    @property
    def counts(self) -> Dict[str, int]:
        """Entries per status, in pinned key order."""
        counts = {"ok": 0, "stale": 0, "corrupt": 0, "rejected": 0}
        for result in self.results:
            counts[result.status] += 1
        return counts

    @property
    def clean(self) -> bool:
        """Whether every entry in the directory verified."""
        return all(result.status == "ok" for result in self.results)


def audit_cache_dir(
    directory,
    device: Optional[HardwareSpec] = None,
) -> AuditReport:
    """Verify every entry file in a plan-cache directory.

    Each ``<key>.json`` is parsed with the same typed classifier the cache
    uses at load time (stale format version vs corrupt payload) and then
    checked by :class:`PlanVerifier` against the key its filename claims.

    Parameters
    ----------
    directory:
        A :class:`~repro.runtime.cache.PlanCache` disk-store directory.
    device:
        Fallback device for entries that do not embed their fingerprint.
    """
    # Local import: repro.runtime.cache imports this module.
    from repro.errors import CorruptCacheEntry, StaleCacheEntry
    from repro.runtime.cache import PlanCacheEntry

    verifier = PlanVerifier(device=device)
    results: List[AuditResult] = []
    root = Path(directory).expanduser()
    for path in sorted(root.glob("*.json")):
        key = path.stem
        try:
            blob = path.read_text(encoding="utf-8")
            entry = PlanCacheEntry.parse(blob)
        except StaleCacheEntry as exc:
            results.append(
                AuditResult(
                    path=str(path),
                    key=key,
                    status="stale",
                    violations=[Violation("parse.stale", str(exc), key=key)],
                )
            )
            continue
        except (CorruptCacheEntry, OSError) as exc:
            results.append(
                AuditResult(
                    path=str(path),
                    key=key,
                    status="corrupt",
                    violations=[Violation("parse.corrupt", str(exc), key=key)],
                )
            )
            continue
        violations = verifier.verify_entry(entry, expected_key=key)
        results.append(
            AuditResult(
                path=str(path),
                key=key,
                status="ok" if not violations else "rejected",
                violations=violations,
            )
        )
    return AuditReport(results=results)
