"""Repo-invariant linter: AST checks generic linters cannot express.

The codebase keeps several correctness-critical invariants by convention;
this module turns each into a machine check over the source tree
(``python -m repro.analysis lint``, gated in CI):

``cache-key-drift``
    Any :class:`~repro.config.FuserConfig` field read inside the
    plan-shaping modules (``search/``, ``runtime/cache.py``, ``graphs/``)
    must either appear in ``cache_key_fields()`` or be explicitly listed
    in :data:`PLAN_NEUTRAL_CONFIG_FIELDS`.  A new config field that steers
    the search but is missing from the key silently poisons every shared
    cache — this check makes the omission a lint failure instead.
``lock-discipline``
    In classes that create a ``self._lock``, methods that use the lock
    must not mutate lock-guarded attributes outside their ``with
    self._lock`` blocks.  (An attribute counts as guarded once any method
    of the class mutates it under the lock; ``__init__`` and helpers that
    run entirely under a caller-held lock are exempt.)
``nondeterminism``
    ``time.time()``, ``datetime.now()`` and unseeded module-level
    ``random`` calls are banned in the deterministic layers (search,
    dataflow, codegen, simulation, IR, graphs, hardware, obs): plans and
    costs must be pure functions of their inputs or cache keys lose
    meaning.  :data:`NONDETERMINISM_ALLOWLIST` exempts the one sanctioned
    wall-clock authority (``obs/trace.py``) per file.
``to-dict-order``
    ``to_dict``/``snapshot`` methods returning a dict literal must pin the
    schema: constant, duplicate-free string keys and no ``**`` spreads, so
    serialized artifacts diff cleanly across runs.
``silent-except``
    ``except``-and-``pass`` over broad exception types (``Exception``,
    ``OSError``, bare) swallows failures invisibly; handle, count, or
    narrow them.

False positives can be suppressed per line with ``# lint: allow[<check>]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: FuserConfig fields that deliberately do NOT participate in the cache
#: key: they cannot change which plan the search selects, only how (or
#: whether) the search runs.  Adding a field here is an explicit claim of
#: plan-neutrality — see docs/ANALYSIS.md before extending it.
PLAN_NEUTRAL_CONFIG_FIELDS = frozenset(
    {
        # The device is part of the key via its fingerprint, not as a field.
        "device",
        # Cache wiring: where entries live, never what they contain.
        "cache",
        # Search *effort* knobs: same winner, different wall-clock.
        "parallelism",
        "incremental",
        # Graph canonicalization before extraction: changes which chains are
        # extracted from a model graph, never which plan a given chain
        # compiles to — per-chain cache entries stay valid either way (the
        # differential oracle tests in tests/test_rewrite.py pin this).
        "rewrite",
        # Observability opt-in: spans and metrics observe the search, they
        # never steer it (see repro.obs).
        "trace",
    }
)

#: Package-relative prefixes whose modules must be deterministic.
DETERMINISTIC_PREFIXES = (
    "search",
    "dataflow",
    "codegen",
    "dsm_comm",
    "sim",
    "ir",
    "graphs",
    "hardware",
    "obs",
)

#: Per-file exemptions from the nondeterminism check: the tracer is the
#: one sanctioned wall-clock authority (span timestamps must be wall time
#: to line up across processes); every other module obtains timestamps via
#: ``repro.obs.trace.now_us`` instead of reading the clock itself.
NONDETERMINISM_ALLOWLIST: Dict[str, frozenset] = {
    "obs/trace.py": frozenset({"time.time"}),
}

#: Package-relative prefixes scanned for cache-key drift.
KEY_DRIFT_PREFIXES = ("search", "graphs", "runtime/cache.py")

#: Module-level ``random`` functions that draw from the unseeded global
#: generator (``random.Random(seed)`` instances are fine).
UNSEEDED_RANDOM_CALLS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "getrandbits",
    }
)

CHECK_KEY_DRIFT = "cache-key-drift"
CHECK_LOCK_DISCIPLINE = "lock-discipline"
CHECK_NONDETERMINISM = "nondeterminism"
CHECK_TO_DICT_ORDER = "to-dict-order"
CHECK_SILENT_EXCEPT = "silent-except"

ALL_CHECKS = (
    CHECK_KEY_DRIFT,
    CHECK_LOCK_DISCIPLINE,
    CHECK_NONDETERMINISM,
    CHECK_TO_DICT_ORDER,
    CHECK_SILENT_EXCEPT,
)


@dataclass(frozen=True)
class LintViolation:
    """One linter finding.

    Parameters
    ----------
    check:
        The check identifier (one of :data:`ALL_CHECKS`).
    path:
        Source file (or synthetic label) the finding is in.
    line:
        1-based line number.
    message:
        Human-readable description.
    """

    check: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def _allowed_lines(source: str) -> Dict[int, Set[str]]:
    """Per-line ``# lint: allow[check]`` suppressions."""
    allowed: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        marker = "# lint: allow["
        index = text.find(marker)
        if index < 0:
            continue
        names = text[index + len(marker) :].split("]", 1)[0]
        allowed[number] = {name.strip() for name in names.split(",")}
    return allowed


def _attr_root(node: ast.expr) -> Optional[str]:
    """The base name of a (possibly chained) attribute access."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _self_target_attr(node: ast.expr) -> Optional[str]:
    """For a store target rooted at ``self``, the first attribute name."""
    chain: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def _is_config_read(node: ast.Attribute) -> bool:
    """Whether an attribute read is idiomatically a FuserConfig access.

    Matches ``config.X``, ``cfg.X``, ``self.config.X``,
    ``self.compiler.config.X`` — any access whose immediate base is a name
    or attribute called ``config``/``cfg``/``base_config``.
    """
    base = node.value
    if isinstance(base, ast.Name):
        return base.id in ("config", "cfg", "base_config")
    if isinstance(base, ast.Attribute):
        return base.attr in ("config", "cfg", "base_config")
    return False


class _FileChecker:
    """Run the applicable checks over one parsed module."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        checks: Sequence[str],
        config_fields: Set[str],
        key_fields: Set[str],
        allowlist: frozenset,
        nondeterminism_allow: frozenset = frozenset(),
    ) -> None:
        self.path = path
        self.tree = tree
        self.checks = set(checks)
        self.config_fields = config_fields
        self.key_fields = key_fields
        self.allowlist = allowlist
        self.nondeterminism_allow = nondeterminism_allow
        self.allowed = _allowed_lines(source)
        self.violations: List[LintViolation] = []

    def report(self, check: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if check in self.allowed.get(line, ()):
            return
        self.violations.append(
            LintViolation(check=check, path=self.path, line=line, message=message)
        )

    def run(self) -> List[LintViolation]:
        if CHECK_KEY_DRIFT in self.checks and self.config_fields:
            self._check_key_drift()
        if CHECK_LOCK_DISCIPLINE in self.checks:
            self._check_lock_discipline()
        if CHECK_NONDETERMINISM in self.checks:
            self._check_nondeterminism()
        if CHECK_TO_DICT_ORDER in self.checks:
            self._check_to_dict_order()
        if CHECK_SILENT_EXCEPT in self.checks:
            self._check_silent_except()
        return self.violations

    # -- cache-key-drift ------------------------------------------------ #
    def _check_key_drift(self) -> None:
        sanctioned = self.key_fields | self.allowlist
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in self.config_fields or node.attr in sanctioned:
                continue
            if not _is_config_read(node):
                continue
            self.report(
                CHECK_KEY_DRIFT,
                node,
                f"FuserConfig.{node.attr} is read in a plan-shaping module "
                "but is neither in cache_key_fields() nor in "
                "PLAN_NEUTRAL_CONFIG_FIELDS — a shared cache would serve "
                "plans compiled under a different setting",
            )

    # -- lock-discipline ------------------------------------------------ #
    def _check_lock_discipline(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class_locks(node)

    def _check_class_locks(self, cls: ast.ClassDef) -> None:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not any(self._creates_lock(method) for method in methods):
            return
        guarded: Set[str] = set()
        for method in methods:
            for attr, under in self._self_mutations(method):
                if under and attr != "_lock":
                    guarded.add(attr)
        for method in methods:
            if method.name == "__init__":
                continue
            if not self._uses_lock(method):
                # Helpers without a with-block run under a caller-held
                # lock (enforced dynamically via locks.require_held).
                continue
            for attr, under in self._self_mutations(method):
                if attr in guarded and not under:
                    self.report(
                        CHECK_LOCK_DISCIPLINE,
                        method,
                        f"{cls.name}.{method.name} mutates lock-guarded "
                        f"attribute self.{attr} outside 'with self._lock'",
                    )

    @staticmethod
    def _creates_lock(method: ast.AST) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_lock"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    @staticmethod
    def _is_self_lock(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "_lock"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _uses_lock(self, method: ast.AST) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.With) and any(
                self._is_self_lock(item.context_expr) for item in node.items
            ):
                return True
        return False

    def _self_mutations(
        self, method: ast.AST, under: bool = False
    ) -> Iterable[Tuple[str, bool]]:
        """Yield (attribute, under-lock) for every ``self.X`` store."""
        for stmt in getattr(method, "body", []):
            yield from self._stmt_mutations(stmt, under)

    def _stmt_mutations(
        self,
        stmt: ast.AST,
        under: bool,
    ) -> Iterable[Tuple[str, bool]]:
        """Statement-level walk tracking whether ``self._lock`` is held."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(stmt, ast.With):
            inside = under or any(
                self._is_self_lock(item.context_expr) for item in stmt.items
            )
            for child in stmt.body:
                yield from self._stmt_mutations(child, inside)
            return
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = _self_target_attr(target)
            if attr is not None:
                yield attr, under
        # Compound statements (if/for/while/try): their nested blocks run
        # under the same lock state as the statement itself.
        for field in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field, []):
                if isinstance(child, ast.ExceptHandler):
                    for inner in child.body:
                        yield from self._stmt_mutations(inner, under)
                else:
                    yield from self._stmt_mutations(child, under)

    # -- nondeterminism -------------------------------------------------- #
    def _check_nondeterminism(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if isinstance(base, ast.Name) and base.id == "time" and func.attr == "time":
                if "time.time" in self.nondeterminism_allow:
                    continue
                self.report(
                    CHECK_NONDETERMINISM,
                    node,
                    "time.time() in a deterministic module; use an input "
                    "timestamp or move the wall-clock read to the runtime "
                    "layer",
                )
            elif (
                isinstance(base, ast.Name)
                and base.id == "random"
                and func.attr in UNSEEDED_RANDOM_CALLS
            ):
                self.report(
                    CHECK_NONDETERMINISM,
                    node,
                    f"unseeded random.{func.attr}() in a deterministic "
                    "module; construct random.Random(seed) instead",
                )
            elif func.attr == "now" and isinstance(base, (ast.Name, ast.Attribute)):
                name = base.id if isinstance(base, ast.Name) else base.attr
                if name == "datetime":
                    self.report(
                        CHECK_NONDETERMINISM,
                        node,
                        "datetime.now() in a deterministic module",
                    )

    # -- to-dict-order --------------------------------------------------- #
    def _check_to_dict_order(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in ("to_dict", "snapshot"):
                continue
            for ret in ast.walk(node):
                if isinstance(ret, ast.Return) and isinstance(ret.value, ast.Dict):
                    self._check_dict_literal(node.name, ret.value)

    def _check_dict_literal(self, method: str, literal: ast.Dict) -> None:
        seen: Set[str] = set()
        for key in literal.keys:
            if key is None:
                self.report(
                    CHECK_TO_DICT_ORDER,
                    literal,
                    f"{method}() uses a '**' spread in its returned dict; "
                    "schema keys must be spelled out so their order is "
                    "pinned",
                )
                continue
            if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
                self.report(
                    CHECK_TO_DICT_ORDER,
                    key,
                    f"{method}() returns a dict with a computed key; "
                    "serialized schemas must use constant string keys",
                )
                continue
            if key.value in seen:
                self.report(
                    CHECK_TO_DICT_ORDER,
                    key,
                    f"{method}() repeats key {key.value!r}",
                )
            seen.add(key.value)

    # -- silent-except --------------------------------------------------- #
    def _check_silent_except(self) -> None:
        broad = ("Exception", "BaseException", "OSError")
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not all(isinstance(stmt, ast.Pass) for stmt in node.body):
                continue
            names: List[str] = []
            handler_type = node.type
            types = (
                handler_type.elts
                if isinstance(handler_type, ast.Tuple)
                else [handler_type]
            )
            for item in types:
                if isinstance(item, ast.Name):
                    names.append(item.id)
                elif isinstance(item, ast.Attribute):
                    names.append(item.attr)
            if handler_type is None or any(name in broad for name in names):
                label = ", ".join(names) or "everything"
                self.report(
                    CHECK_SILENT_EXCEPT,
                    node,
                    f"except-and-pass over {label} swallows failures "
                    "invisibly; handle, count, or narrow the exception",
                )


class Linter:
    """AST linter enforcing the repo invariants listed in the module doc.

    Parameters
    ----------
    config_fields:
        All :class:`FuserConfig` dataclass field names (parsed from
        ``config.py`` by :meth:`for_package`).
    key_fields:
        Field names returned by ``cache_key_fields()``.
    allowlist:
        Plan-neutral fields exempt from the drift check.

    Example
    -------
    >>> linter = Linter(config_fields={"top_k"}, key_fields=set())
    >>> bad = "def f(config):\\n    return config.top_k\\n"
    >>> [v.check for v in linter.lint_source(bad, "x.py", key_drift=True)]
    ['cache-key-drift']
    """

    def __init__(
        self,
        config_fields: Optional[Set[str]] = None,
        key_fields: Optional[Set[str]] = None,
        allowlist: frozenset = PLAN_NEUTRAL_CONFIG_FIELDS,
    ) -> None:
        self.config_fields = set(config_fields or ())
        self.key_fields = set(key_fields or ())
        self.allowlist = allowlist

    # -- construction ---------------------------------------------------- #
    @classmethod
    def for_package(cls, package_root) -> "Linter":
        """Build a linter keyed to a ``repro`` package tree's config.py."""
        config_fields, key_fields = parse_config_fields(
            Path(package_root) / "config.py"
        )
        return cls(config_fields=config_fields, key_fields=key_fields)

    # -- entry points ---------------------------------------------------- #
    def lint_source(
        self,
        source: str,
        path: str = "<synthetic>",
        *,
        deterministic: bool = False,
        key_drift: bool = False,
        checks: Optional[Sequence[str]] = None,
        nondeterminism_allow: frozenset = frozenset(),
    ) -> List[LintViolation]:
        """Lint one source string.

        ``deterministic`` and ``key_drift`` opt the snippet into the
        path-scoped checks; the structural checks (lock discipline,
        to_dict order, silent except) always run unless ``checks``
        restricts them explicitly.  ``nondeterminism_allow`` names
        sanctioned nondeterministic calls (e.g. ``"time.time"``) that the
        nondeterminism check skips for this file — see
        :data:`NONDETERMINISM_ALLOWLIST`.
        """
        if checks is None:
            selected = [
                CHECK_LOCK_DISCIPLINE,
                CHECK_TO_DICT_ORDER,
                CHECK_SILENT_EXCEPT,
            ]
            if deterministic:
                selected.append(CHECK_NONDETERMINISM)
            if key_drift:
                selected.append(CHECK_KEY_DRIFT)
        else:
            selected = list(checks)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                LintViolation(
                    check="syntax",
                    path=path,
                    line=exc.lineno or 0,
                    message=str(exc),
                )
            ]
        checker = _FileChecker(
            path=path,
            source=source,
            tree=tree,
            checks=selected,
            config_fields=self.config_fields,
            key_fields=self.key_fields,
            allowlist=self.allowlist,
            nondeterminism_allow=nondeterminism_allow,
        )
        return checker.run()

    def lint_file(self, path, package_root=None) -> List[LintViolation]:
        """Lint one file, deriving its check set from its package path."""
        path = Path(path)
        rel = (
            path.relative_to(package_root).as_posix()
            if package_root is not None
            else path.name
        )
        return self.lint_source(
            path.read_text(encoding="utf-8"),
            path=str(path),
            deterministic=rel.startswith(DETERMINISTIC_PREFIXES),
            key_drift=rel.startswith(KEY_DRIFT_PREFIXES),
            nondeterminism_allow=NONDETERMINISM_ALLOWLIST.get(rel, frozenset()),
        )

    def lint_tree(self, package_root) -> List[LintViolation]:
        """Lint every module under a ``repro`` package tree."""
        package_root = Path(package_root)
        violations: List[LintViolation] = []
        for path in sorted(package_root.rglob("*.py")):
            violations.extend(self.lint_file(path, package_root=package_root))
        return violations


def parse_config_fields(config_path) -> Tuple[Set[str], Set[str]]:
    """Extract FuserConfig's field names and its declared key fields.

    Parses ``config.py`` without importing it: the dataclass's annotated
    assignments give the field set, and the dict literal returned by
    ``cache_key_fields`` gives the canonical key-field set the drift check
    compares reads against.

    Parameters
    ----------
    config_path:
        Path to ``src/repro/config.py`` (or a synthetic equivalent).
    """
    tree = ast.parse(Path(config_path).read_text(encoding="utf-8"))
    config_fields: Set[str] = set()
    key_fields: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name != "FuserConfig":
            continue
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                config_fields.add(item.target.id)
            if isinstance(item, ast.FunctionDef) and item.name == "cache_key_fields":
                for ret in ast.walk(item):
                    if isinstance(ret, ast.Return) and isinstance(ret.value, ast.Dict):
                        for key in ret.value.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                key_fields.add(key.value)
    return config_fields, key_fields


def run_repo_lint(package_root=None) -> List[LintViolation]:
    """Lint the installed ``repro`` package tree.

    The tree is located from the package's own ``__file__`` so the check
    is independent of the working directory; CI runs it via
    ``python -m repro.analysis lint``.

    Parameters
    ----------
    package_root:
        Override the package directory (used by tests to lint synthetic
        trees laid out like ``repro``).

    Example
    -------
    ::

        from repro.analysis import run_repo_lint

        assert run_repo_lint() == []   # the repo holds its own invariants
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    package_root = Path(package_root)
    return Linter.for_package(package_root).lint_tree(package_root)
