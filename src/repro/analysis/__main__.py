"""CLI for the static verification layer.

Two subcommands, both exiting non-zero when they find problems (so CI can
gate on them directly):

``python -m repro.analysis lint [PATHS...]``
    Run the repo-invariant linter over the installed ``repro`` package
    (or over explicit paths).  Prints one line per violation.

``python -m repro.analysis audit CACHE_DIR [--device NAME]``
    Parse and semantically verify every plan-cache entry file in
    ``CACHE_DIR``, printing a per-status summary and each bad entry's
    violations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import Linter, run_repo_lint

    if args.paths:
        import repro

        package_root = Path(repro.__file__).parent
        linter = Linter.for_package(package_root)
        violations = []
        for raw in args.paths:
            path = Path(raw)
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                resolved = file.resolve()
                root = (
                    package_root.resolve()
                    if resolved.is_relative_to(package_root.resolve())
                    else None
                )
                violations.extend(linter.lint_file(resolved, package_root=root))
    else:
        violations = run_repo_lint()
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} lint violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.verify import audit_cache_dir

    device = None
    if args.device:
        from repro.hardware.registry import get_device

        device = get_device(args.device)
    directory = Path(args.cache_dir)
    if not directory.is_dir():
        print(f"audit: {directory} is not a directory", file=sys.stderr)
        return 2
    report = audit_cache_dir(directory, device=device)
    counts = report.counts
    print(
        "audit: {total} entries — {ok} ok, {stale} stale, {corrupt} corrupt, "
        "{rejected} rejected".format(total=len(report.results), **counts)
    )
    for result in report.results:
        if result.status == "ok":
            continue
        print(f"  {Path(result.path).name}: {result.status}")
        for violation in result.violations:
            print(f"    {violation}")
    if not report.clean:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="FlashFuser static verification tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lint_parser = subparsers.add_parser("lint", help="run the repo-invariant linter")
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    audit_parser = subparsers.add_parser(
        "audit", help="verify every entry in a plan-cache directory"
    )
    audit_parser.add_argument("cache_dir", help="plan-cache directory")
    audit_parser.add_argument(
        "--device",
        default=None,
        help="fallback device for entries without an embedded fingerprint",
    )
    audit_parser.set_defaults(func=_cmd_audit)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
