"""Static verification layer: plan verifier, repo linter, lock detector.

Three independent tools that check invariants the rest of the stack keeps
by convention:

* :mod:`repro.analysis.verify` — semantic checks over cached execution
  plans (capacity, legality, consistency, key agreement), wired into
  every :class:`~repro.runtime.cache.PlanCache` disk load and exposed as
  ``python -m repro.analysis audit <cache-dir>``.
* :mod:`repro.analysis.lint` — AST checks over the source tree
  (cache-key drift, lock discipline, banned nondeterminism, pinned
  ``to_dict`` schemas, silent exception swallowing), exposed as
  ``python -m repro.analysis lint``.
* :mod:`repro.analysis.locks` — an instrumented lock wrapper that records
  the cross-thread acquisition graph and flags ordering cycles and
  unguarded shared-state access, activated via ``REPRO_LOCK_CHECK=1``.

Submodules other than :mod:`~repro.analysis.locks` are loaded lazily:
``locks`` is imported by low-level modules (``config``, ``hardware``)
during package initialisation, so this ``__init__`` must not eagerly pull
in the higher layers ``verify`` depends on.
"""

from __future__ import annotations

from repro.analysis.locks import (
    LockMonitor,
    LockOrderError,
    OrderedLock,
    UnguardedAccessError,
    lock_monitor,
    make_lock,
    require_held,
)

_LAZY = {
    "PlanVerifier": ("repro.analysis.verify", "PlanVerifier"),
    "Violation": ("repro.analysis.verify", "Violation"),
    "AuditReport": ("repro.analysis.verify", "AuditReport"),
    "audit_cache_dir": ("repro.analysis.verify", "audit_cache_dir"),
    "verify_model_plan": ("repro.analysis.verify", "verify_model_plan"),
    "spec_from_fingerprint": ("repro.analysis.verify", "spec_from_fingerprint"),
    "Linter": ("repro.analysis.lint", "Linter"),
    "LintViolation": ("repro.analysis.lint", "LintViolation"),
    "run_repo_lint": ("repro.analysis.lint", "run_repo_lint"),
    "PLAN_NEUTRAL_CONFIG_FIELDS": (
        "repro.analysis.lint",
        "PLAN_NEUTRAL_CONFIG_FIELDS",
    ),
}

__all__ = [
    "AuditReport",
    "LintViolation",
    "Linter",
    "LockMonitor",
    "LockOrderError",
    "OrderedLock",
    "PLAN_NEUTRAL_CONFIG_FIELDS",
    "PlanVerifier",
    "UnguardedAccessError",
    "Violation",
    "audit_cache_dir",
    "lock_monitor",
    "make_lock",
    "require_held",
    "run_repo_lint",
    "spec_from_fingerprint",
    "verify_model_plan",
]


def __getattr__(name: str):
    """Resolve the lazy exports (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
