"""Lock-order race detector.

The serving stack coordinates a dozen ``threading.Lock``/``RLock``
instances across :mod:`repro.runtime`, :mod:`repro.graphs` and
:mod:`repro.fleet`.  Their safety rests on two conventions that nothing
machine-checks at runtime: locks are acquired in a consistent order (no
cycles, hence no deadlock), and guarded state is only touched while its
lock is held.  This module turns both conventions into checks:

* :class:`OrderedLock` is a drop-in wrapper around ``threading.Lock`` /
  ``RLock`` that records the cross-thread acquisition graph in a
  process-wide :class:`LockMonitor`.  Acquiring lock *B* while holding
  lock *A* adds the edge ``A -> B``; a new edge that closes a cycle is a
  potential deadlock and is reported as a violation.  Acquiring a
  non-reentrant :class:`OrderedLock` twice from one thread raises
  immediately instead of deadlocking the process.
* :func:`require_held` asserts that the calling thread holds a lock —
  helpers that mutate shared state under a caller-held lock use it to
  detect unguarded access if a future refactor drops the ``with`` block.
* :func:`make_lock` is the factory the instrumented modules call instead
  of ``threading.Lock()``.  It returns a plain (zero-overhead) lock unless
  instrumentation is enabled — via :func:`enable` or the
  ``REPRO_LOCK_CHECK`` environment variable (``1``/``record`` to record
  violations, ``strict`` to raise on them) — so production serving pays
  nothing for the detector's existence.

The monitor tracks lock *instances*, not lock names: two ``ServingStats``
sinks merged in opposite directions are a real inversion and are caught,
while unrelated instances that merely share a class never alias.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Dict, List, Optional, Set, Tuple, Union

#: Environment variable controlling instrumentation at process start.
ENV_VAR = "REPRO_LOCK_CHECK"

MODE_OFF = "off"
MODE_RECORD = "record"
MODE_STRICT = "strict"

_uid_counter = itertools.count(1)
_tls = threading.local()

#: Explicit override set by :func:`enable` / :func:`disable`; ``None``
#: defers to the environment variable.
_mode_override: Optional[str] = None


class LockOrderError(RuntimeError):
    """A lock-ordering violation detected by :class:`LockMonitor`.

    Raised eagerly in ``strict`` mode (and always for same-thread
    re-acquisition of a non-reentrant lock, which would otherwise deadlock
    the process on the spot).
    """


class UnguardedAccessError(LockOrderError):
    """Shared state was accessed without holding its guarding lock."""


def _env_mode() -> str:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in ("1", "true", "on", MODE_RECORD):
        return MODE_RECORD
    if value == MODE_STRICT:
        return MODE_STRICT
    return MODE_OFF


def mode() -> str:
    """The effective instrumentation mode (``off``/``record``/``strict``)."""
    if _mode_override is not None:
        return _mode_override
    return _env_mode()


def enabled() -> bool:
    """Whether lock instrumentation is currently active."""
    return mode() != MODE_OFF


def enable(strict: bool = False) -> None:
    """Turn instrumentation on for locks created from now on.

    Parameters
    ----------
    strict:
        When true, violations raise :class:`LockOrderError` at the
        offending acquisition; otherwise they are recorded on the monitor
        for later inspection via :meth:`LockMonitor.violations`.
    """
    global _mode_override
    _mode_override = MODE_STRICT if strict else MODE_RECORD


def disable() -> None:
    """Turn instrumentation off for locks created from now on."""
    global _mode_override
    _mode_override = MODE_OFF


def _held_stack() -> List["OrderedLock"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class LockMonitor:
    """Process-wide acquisition-graph recorder shared by all OrderedLocks.

    Nodes are live :class:`OrderedLock` instances (by uid); a directed
    edge ``A -> B`` means some thread acquired *B* while holding *A*.  A
    cycle in this graph is a potential deadlock: two threads walking the
    cycle from different entry points can block each other forever.

    Example
    -------
    ::

        from repro.analysis.locks import lock_monitor

        monitor = lock_monitor()
        monitor.reset()
        ...  # run the concurrent workload
        assert monitor.violations() == []
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._names: Dict[int, str] = {}
        self._edges: Dict[int, Set[int]] = {}
        self._violations: List[str] = []
        self.acquisitions = 0
        self.max_depth = 0

    # -- recording ----------------------------------------------------- #
    def record_acquire(
        self, held: List["OrderedLock"], acquiring: "OrderedLock"
    ) -> Optional[str]:
        """Record one acquisition; returns a violation message on a cycle."""
        with self._lock:
            self.acquisitions += 1
            self.max_depth = max(self.max_depth, len(held) + 1)
            self._names[acquiring.uid] = acquiring.name
            message: Optional[str] = None
            for holder in held:
                self._names[holder.uid] = holder.name
                targets = self._edges.setdefault(holder.uid, set())
                if acquiring.uid in targets:
                    continue
                if self._reaches(acquiring.uid, holder.uid):
                    message = (
                        "lock-order cycle: acquiring "
                        f"{acquiring.name!r} while holding {holder.name!r}, "
                        f"but {acquiring.name!r} is already ordered before "
                        f"{holder.name!r}"
                    )
                    self._violations.append(message)
                targets.add(acquiring.uid)
            return message

    def record_violation(self, message: str) -> None:
        """Record a violation detected outside the edge walk."""
        with self._lock:
            self._violations.append(message)

    def _reaches(self, source: int, target: int) -> bool:
        """Whether ``target`` is reachable from ``source`` (DFS, no lock)."""
        seen: Set[int] = set()
        frontier = [source]
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))
        return False

    # -- inspection ---------------------------------------------------- #
    def violations(self) -> List[str]:
        """All recorded ordering/guard violations, oldest first."""
        with self._lock:
            return list(self._violations)

    def edges(self) -> List[Tuple[str, str]]:
        """The acquisition graph as (holder name, acquired name) pairs."""
        with self._lock:
            return sorted(
                (self._names[src], self._names[dst])
                for src, targets in self._edges.items()
                for dst in targets
            )

    def reset(self) -> None:
        """Drop the recorded graph, counters and violations."""
        with self._lock:
            self._names.clear()
            self._edges.clear()
            self._violations.clear()
            self.acquisitions = 0
            self.max_depth = 0

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderError` if any violation was recorded."""
        found = self.violations()
        if found:
            raise LockOrderError(
                f"{len(found)} lock violation(s):\n" + "\n".join(found)
            )


_monitor = LockMonitor()


def lock_monitor() -> LockMonitor:
    """The process-wide :class:`LockMonitor` singleton."""
    return _monitor


class OrderedLock:
    """A ``threading.Lock``/``RLock`` that reports ordering violations.

    Drop-in for the stdlib locks (``acquire``/``release``/context
    manager).  Every acquisition is recorded on the process-wide
    :class:`LockMonitor`; closing a cycle in the acquisition graph is a
    violation (raised in strict mode, recorded otherwise), and re-entering
    a non-reentrant OrderedLock from the owning thread raises
    :class:`LockOrderError` instead of deadlocking.

    Parameters
    ----------
    name:
        Diagnostic label used in violation messages (instances are always
        distinguished internally, so names may repeat).
    reentrant:
        Back the wrapper with an ``RLock`` instead of a ``Lock``.

    Example
    -------
    >>> a, b = OrderedLock("a"), OrderedLock("b")
    >>> with a:
    ...     with b:
    ...         b.held_by_current_thread()
    True
    """

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self.uid = next(_uid_counter)
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def held_by_current_thread(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return any(lock is self for lock in _held_stack())

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock, recording the ordering edge."""
        stack = _held_stack()
        if self.held_by_current_thread():
            if not self.reentrant:
                # Raising is the only useful behaviour: proceeding would
                # deadlock this thread on its own lock.
                message = (
                    f"same-thread re-acquisition of non-reentrant lock "
                    f"{self.name!r}"
                )
                _monitor.record_violation(message)
                raise LockOrderError(message)
        else:
            # One edge per distinct held lock; duplicates are deduplicated
            # by the monitor.
            message = _monitor.record_acquire(stack, self)
            if message is not None and mode() == MODE_STRICT:
                raise LockOrderError(message)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            stack.append(self)
        return acquired

    def release(self) -> None:
        """Release the underlying lock and pop it from the held stack."""
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def require_held(self) -> None:
        """Report a violation if the calling thread does not hold the lock."""
        if self.held_by_current_thread():
            return
        message = (
            f"unguarded shared-state access: lock {self.name!r} not held "
            f"by thread {threading.current_thread().name!r}"
        )
        _monitor.record_violation(message)
        if mode() == MODE_STRICT:
            raise UnguardedAccessError(message)

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"OrderedLock({self.name!r}, {kind}, uid={self.uid})"


#: Anything :func:`make_lock` can return.
AnyLock = Union[OrderedLock, threading.Lock, "threading.RLock"]


def make_lock(name: str, reentrant: bool = False) -> AnyLock:
    """Create a lock, instrumented when lock checking is enabled.

    Parameters
    ----------
    name:
        Diagnostic label for violation messages (ignored when
        instrumentation is off).
    reentrant:
        Return an ``RLock`` (or reentrant :class:`OrderedLock`).

    Example
    -------
    ::

        from repro.analysis.locks import make_lock

        class Cache:
            def __init__(self):
                self._lock = make_lock("cache", reentrant=True)
    """
    if enabled():
        return OrderedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def require_held(lock: object) -> None:
    """Assert the calling thread holds ``lock`` when it is instrumented.

    A no-op for plain stdlib locks, so guarded helpers can call this
    unconditionally; with instrumentation enabled a miss is recorded (or
    raised in strict mode) as unguarded shared-state access.

    Parameters
    ----------
    lock:
        The lock expected to be held (any :func:`make_lock` product).
    """
    if isinstance(lock, OrderedLock):
        lock.require_held()
