"""Perf-report aggregation, serialization and regression diffing.

:class:`PerfReport` condenses one trace replay into the numbers the serving
story is judged on — throughput, latency percentiles, cache hit rates, and
the compile-vs-serve time split — overall and per trace phase, so a
cold-then-warm replay carries its own speedup evidence.  Reports serialize
to JSON with a **stable schema and key order** (``BENCH_*.json`` artifacts
diff cleanly across commits), expose a :meth:`PerfReport.deterministic_dict`
view that strips every timing-dependent field (two seeded replays of the
same trace are identical under it), and :func:`compare` diffs two reports
into a :class:`ReportDelta` for CI regression gating.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.bench.driver import ReplayResult, RequestRecord
from repro.obs.metrics import percentile
from repro.runtime.stats import ServingStats

__all__ = [
    "PerfReport",
    "ReportDelta",
    "compare",
    "percentile",
    "REPORT_SCHEMA_VERSION",
    "TIMING_KEYS",
]

#: Schema version stamped into serialized reports.
REPORT_SCHEMA_VERSION = 1

#: Top-level keys whose values depend on wall-clock measurement.  They are
#: dropped by :meth:`PerfReport.deterministic_dict`, which is also the
#: contract behind "seeded reruns are identical modulo timing fields".
TIMING_KEYS = (
    "duration_s",
    "throughput_rps",
    "latency_us",
    "queue_depth",
    "split",
    "speedups",
    # Per-stage search-time attribution is wall clock by definition.
    "stages",
    # The fleet block (router counters, per-worker depths) depends on how
    # requests raced across workers, so it is timing-dependent too.
    "fleet",
)

# percentile() historically lived here; it is now the shared implementation
# in repro.obs.metrics (also backing the live histogram summaries) and is
# re-exported under its old name for existing callers.


def _latency_block(walls: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": sum(walls) / len(walls) if walls else 0.0,
        "p50": percentile(walls, 50),
        "p95": percentile(walls, 95),
        "p99": percentile(walls, 99),
        "max": max(walls) if walls else 0.0,
    }


def _counts(records: Sequence[RequestRecord], attr: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in records:
        value = getattr(record, attr)
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items()))


def _search_totals(records: Sequence[RequestRecord]) -> Dict[str, int]:
    """Summed search-effort counters over records that ran a search.

    These sums are deterministic for a seeded in-order replay (they count
    candidates, not microseconds), so CI can gate on them exactly.
    """
    totals = {
        "candidates_enumerated": 0,
        "candidates_analyzed": 0,
        "candidates_skipped": 0,
    }
    for record in records:
        if record.search_counters is None:
            continue
        for counter in totals:
            totals[counter] += int(record.search_counters.get(counter, 0))
    return totals


def _stage_block(records: Sequence[RequestRecord]) -> Dict[str, object]:
    """Per-search-stage wall-clock attribution over the replay.

    Sums the per-stage microsecond timings the search engines attach to
    compile responses (enumerate+prune, analyze, rank, profile, transfer)
    and expresses each as a fraction of the covered compile wall clock —
    the "compile wall = X% prune, Y% analyze, Z% profile" block.  Requests
    that never ran a search contribute nothing.
    """
    totals: Dict[str, float] = {}
    covered = 0
    for record in records:
        if not record.phase_times_us:
            continue
        covered += 1
        for stage, stage_us in record.phase_times_us.items():
            totals[stage] = totals.get(stage, 0.0) + float(stage_us)
    total_us = sum(totals.values())
    return {
        "covered_requests": covered,
        "total_us": {stage: totals[stage] for stage in sorted(totals)},
        "fraction": {
            stage: (totals[stage] / total_us if total_us > 0 else 0.0)
            for stage in sorted(totals)
        },
    }


def _phase_block(records: Sequence[RequestRecord]) -> Dict[str, object]:
    ok = [record for record in records if record.ok]
    walls = [record.wall_us for record in ok]
    compiled = sum(
        1 for record in ok if ServingStats.is_compile_source(record.source)
    )
    return {
        "requests": len(records),
        "errors": len(records) - len(ok),
        "by_source": _counts(ok, "source"),
        "hit_rate": (len(ok) - compiled) / len(ok) if ok else 0.0,
        "latency_us": _latency_block(walls),
        "search": _search_totals(ok),
    }


@dataclass(frozen=True)
class PerfReport:
    """One replay's aggregated performance, as a stable JSON-able value.

    Build one with :meth:`from_replay` (or :meth:`from_records`), persist it
    with :meth:`save`, reload it with :meth:`load`, and diff two of them
    with :func:`compare`.  The dictionary form is the schema: key order is
    fixed, map-valued sections are key-sorted, and everything timing-related
    lives under the keys named in :data:`TIMING_KEYS`.

    Example
    -------
    >>> records = [RequestRecord(index=0, phase="cold", kind="kernel",
    ...                          target="G1", m=64, arrival_s=0.0,
    ...                          queue_depth=0, wall_us=900.0,
    ...                          source="compiled"),
    ...            RequestRecord(index=1, phase="warm", kind="kernel",
    ...                          target="G1", m=64, arrival_s=0.1,
    ...                          queue_depth=0, wall_us=30.0,
    ...                          source="table")]
    >>> report = PerfReport.from_records(records, name="demo")
    >>> report.requests, report.hit_rate
    (2, 0.5)
    >>> report.phase_speedup()  # cold p50 / warm p50
    30.0
    >>> PerfReport.from_dict(report.to_dict()) == report
    True
    """

    payload: Mapping[str, object]

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", dict(self.payload))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PerfReport):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_replay(
        cls,
        result: ReplayResult,
        *,
        name: str = "replay",
        config: Optional[Mapping[str, object]] = None,
        fleet: Optional[Mapping[str, object]] = None,
        rewrite: Optional[Mapping[str, object]] = None,
    ) -> "PerfReport":
        """Aggregate a :class:`~repro.bench.driver.ReplayResult`.

        ``fleet`` optionally attaches a
        :meth:`~repro.fleet.stats.FleetStats.to_dict` snapshot of the
        serving fleet the replay ran against (stored under the timing keys,
        since router counters depend on request interleaving).
        """
        return cls.from_records(
            result.records,
            name=name,
            trace={
                "name": result.trace.name,
                "seed": result.trace.seed,
                "requests": len(result.trace),
                "generator": result.trace.metadata.get("generator"),
            },
            duration_s=result.elapsed_s,
            concurrency=result.concurrency,
            config=config,
            fleet=fleet,
            rewrite=rewrite,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[RequestRecord],
        *,
        name: str = "replay",
        trace: Optional[Mapping[str, object]] = None,
        duration_s: Optional[float] = None,
        concurrency: int = 1,
        config: Optional[Mapping[str, object]] = None,
        fleet: Optional[Mapping[str, object]] = None,
        rewrite: Optional[Mapping[str, object]] = None,
    ) -> "PerfReport":
        """Aggregate raw request records into a report.

        ``rewrite`` optionally attaches a graph-rewrite coverage block
        (e.g. per-graph chain counts with canonicalization on vs off, or a
        :meth:`~repro.graphs.rewrite.RewriteProvenance.to_dict` snapshot).
        Rewrite counts are deterministic — rule firings do not depend on
        timing — so the block is *not* registered under the timing keys and
        participates in baseline comparison.
        """
        ok = [record for record in records if record.ok]
        walls = [record.wall_us for record in ok]
        if duration_s is None:
            duration_s = sum(walls) / 1e6
        compiled = [
            record
            for record in ok
            if ServingStats.is_compile_source(record.source)
        ]
        compile_time_us = sum(record.wall_us for record in compiled)
        serve_time_us = sum(walls) - compile_time_us
        total_time_us = compile_time_us + serve_time_us
        phase_blocks = {
            phase: _phase_block(
                [record for record in records if record.phase == phase]
            )
            for phase in sorted({record.phase for record in records})
        }
        depths = [record.queue_depth for record in records]
        payload: Dict[str, object] = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "name": name,
            "trace": dict(
                sorted((trace or {"name": None, "seed": None}).items())
            ),
            "config": dict(sorted((config or {}).items())),
            "concurrency": concurrency,
            "counts": {
                "requests": len(records),
                "errors": len(records) - len(ok),
                "by_kind": _counts(ok, "kind"),
                "by_source": _counts(ok, "source"),
                "by_target": _counts(ok, "target"),
                "search": _search_totals(ok),
            },
            "cache": {
                "hits": len(ok) - len(compiled),
                "misses": len(compiled),
                "hit_rate": (len(ok) - len(compiled)) / len(ok) if ok else 0.0,
            },
            "phases": phase_blocks,
            "duration_s": duration_s,
            "throughput_rps": len(ok) / duration_s if duration_s > 0 else 0.0,
            "latency_us": _latency_block(walls),
            "queue_depth": {
                "mean": sum(depths) / len(depths) if depths else 0.0,
                "max": max(depths) if depths else 0,
            },
            "split": {
                "compile_time_us": compile_time_us,
                "serve_time_us": serve_time_us,
                "compile_fraction": (
                    compile_time_us / total_time_us if total_time_us > 0 else 0.0
                ),
            },
            "speedups": cls._speedups(phase_blocks),
            "stages": _stage_block(ok),
        }
        if fleet is not None:
            payload["fleet"] = dict(fleet)
        if rewrite is not None:
            payload["rewrite"] = dict(rewrite)
        return cls(payload)

    @staticmethod
    def _speedups(phase_blocks: Mapping[str, Mapping[str, object]]) -> Dict[str, float]:
        speedups: Dict[str, float] = {}
        cold = phase_blocks.get("cold")
        warm = phase_blocks.get("warm")
        if cold and warm:
            cold_p50 = cold["latency_us"]["p50"]  # type: ignore[index]
            warm_p50 = warm["latency_us"]["p50"]  # type: ignore[index]
            if warm_p50 > 0:
                speedups["warm_vs_cold_p50"] = cold_p50 / warm_p50
        return speedups

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The report's label."""
        return str(self.payload["name"])

    @property
    def requests(self) -> int:
        """Total replayed requests (including failures)."""
        return int(self.payload["counts"]["requests"])  # type: ignore[index]

    @property
    def errors(self) -> int:
        """Requests that failed."""
        return int(self.payload["counts"]["errors"])  # type: ignore[index]

    @property
    def hit_rate(self) -> float:
        """Fraction of successful requests served without a fusion search."""
        return float(self.payload["cache"]["hit_rate"])  # type: ignore[index]

    @property
    def p50_us(self) -> float:
        """Overall median resolution latency in microseconds."""
        return float(self.payload["latency_us"]["p50"])  # type: ignore[index]

    @property
    def throughput_rps(self) -> float:
        """Successful requests per second of replay wall clock."""
        return float(self.payload["throughput_rps"])

    def phase(self, name: str) -> Dict[str, object]:
        """The aggregate block of one trace phase."""
        phases = self.payload["phases"]  # type: ignore[index]
        if name not in phases:
            raise KeyError(f"report has no phase {name!r}; phases: {sorted(phases)}")
        return dict(phases[name])

    def phase_speedup(self, slow: str = "cold", fast: str = "warm") -> float:
        """p50 speedup of phase ``fast`` over phase ``slow``."""
        slow_p50 = float(self.phase(slow)["latency_us"]["p50"])  # type: ignore[index]
        fast_p50 = float(self.phase(fast)["latency_us"]["p50"])  # type: ignore[index]
        if fast_p50 <= 0:
            raise ValueError(f"phase {fast!r} has no measured latency")
        return slow_p50 / fast_p50

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """The report as a plain dictionary (the stable schema itself)."""
        return json.loads(self.to_json())

    def deterministic_dict(self) -> Dict[str, object]:
        """The schema with every timing-dependent field removed.

        Two replays of the same seeded trace through the same stack are
        equal under this view regardless of machine speed — it is what the
        determinism tests and CI gates compare.
        """
        payload = self.to_dict()
        for key in TIMING_KEYS:
            payload.pop(key, None)
        for block in payload.get("phases", {}).values():
            block.pop("latency_us", None)
        return payload

    def to_json(self) -> str:
        """The report as a JSON document (stable key order, diff-friendly)."""
        return json.dumps(self.payload, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PerfReport":
        """Rebuild a report from its dictionary form."""
        version = int(payload.get("schema_version", REPORT_SCHEMA_VERSION))
        if version > REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"report schema version {version} is newer than supported "
                f"({REPORT_SCHEMA_VERSION})"
            )
        return cls(payload)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the report as JSON to ``path`` and return the path."""
        path = Path(path).expanduser()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PerfReport":
        """Read a report previously written by :meth:`save`."""
        return cls.from_dict(
            json.loads(Path(path).expanduser().read_text(encoding="utf-8"))
        )

    def summary_lines(self) -> List[str]:
        """Human-readable one-liners for CLI output."""
        lines = [
            f"report {self.name}: {self.requests} requests, "
            f"{self.errors} errors, hit rate {self.hit_rate:.1%}",
            f"  throughput {self.throughput_rps:.1f} req/s over "
            f"{float(self.payload['duration_s']):.3f} s",
            "  latency p50 {p50:.0f} us / p95 {p95:.0f} us / p99 {p99:.0f} us".format(
                p50=self.p50_us,
                p95=float(self.payload["latency_us"]["p95"]),  # type: ignore[index]
                p99=float(self.payload["latency_us"]["p99"]),  # type: ignore[index]
            ),
        ]
        for phase, block in self.payload["phases"].items():  # type: ignore[union-attr]
            lines.append(
                f"  phase {phase}: {block['requests']} requests, "
                f"hit rate {block['hit_rate']:.1%}, "
                f"p50 {block['latency_us']['p50']:.0f} us"
            )
        for label, value in self.payload["speedups"].items():  # type: ignore[union-attr]
            lines.append(f"  speedup {label}: {value:.1f}x")
        stages = dict(self.payload.get("stages") or {})
        fractions = dict(stages.get("fraction") or {})
        if fractions:
            attribution = ", ".join(
                f"{stage} {fraction:.1%}"
                for stage, fraction in sorted(
                    fractions.items(), key=lambda item: -item[1]
                )
            )
            lines.append(f"  compile wall: {attribution}")
        return lines


@dataclass(frozen=True)
class ReportDelta:
    """The comparison of two reports (``candidate`` against ``baseline``)."""

    baseline: str
    candidate: str
    #: candidate p50 / baseline p50 (> 1 means the candidate is slower).
    p50_ratio: Optional[float]
    #: candidate cold-phase p50 / baseline cold-phase p50 (``None`` when
    #: either report lacks a measured cold phase).
    cold_p50_ratio: Optional[float]
    #: candidate throughput / baseline throughput (< 1 means slower).
    throughput_ratio: Optional[float]
    #: candidate hit rate minus baseline hit rate (< 0 means fewer hits).
    hit_rate_delta: float
    #: candidate errors minus baseline errors.
    error_delta: int
    #: candidate requests minus baseline requests.
    request_delta: int
    #: Per-counter candidate-minus-baseline search-effort deltas (``None``
    #: when the baseline predates the ``counts.search`` block).
    search_delta: Optional[Dict[str, int]]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a stable key order."""
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "p50_ratio": self.p50_ratio,
            "cold_p50_ratio": self.cold_p50_ratio,
            "throughput_ratio": self.throughput_ratio,
            "hit_rate_delta": self.hit_rate_delta,
            "error_delta": self.error_delta,
            "request_delta": self.request_delta,
            "search_delta": self.search_delta,
        }

    def regressions(
        self,
        *,
        max_p50_ratio: Optional[float] = None,
        max_cold_p50_ratio: Optional[float] = None,
        max_hit_rate_drop: float = 0.0,
        allow_new_errors: bool = False,
    ) -> List[str]:
        """Threshold check for CI gating; empty means no regression.

        Timing thresholds are opt-in (``max_p50_ratio``,
        ``max_cold_p50_ratio``) because wall-clock ratios are noisy across
        machines — they compare elapsed time, so a loaded or slower runner
        can exceed a tight ratio without any code regression; gate them
        with headroom (ratios well above 1.0).  The deterministic gates are
        always applied: cache hit rate, error count, and — when both
        reports carry the ``counts.search`` block — the candidates-
        enumerated/analyzed counters, which count search work exactly and
        therefore fail on *any* increase, no tolerance.  A baseline
        predating the search block skips the counter gate rather than
        failing it.
        """
        problems: List[str] = []
        if self.hit_rate_delta < -max_hit_rate_drop - 1e-12:
            problems.append(
                f"cache hit rate dropped by {-self.hit_rate_delta:.1%} "
                f"(allowed {max_hit_rate_drop:.1%})"
            )
        if not allow_new_errors and self.error_delta > 0:
            problems.append(f"{self.error_delta} new request error(s)")
        if self.search_delta is not None:
            for counter in ("candidates_enumerated", "candidates_analyzed"):
                grew = self.search_delta.get(counter, 0)
                if grew > 0:
                    problems.append(
                        f"search effort regressed: {counter} grew by {grew} "
                        "(exact gate, no tolerance)"
                    )
        if (
            max_p50_ratio is not None
            and self.p50_ratio is not None
            and self.p50_ratio > max_p50_ratio
        ):
            problems.append(
                f"p50 latency regressed {self.p50_ratio:.2f}x "
                f"(allowed {max_p50_ratio:.2f}x)"
            )
        if (
            max_cold_p50_ratio is not None
            and self.cold_p50_ratio is not None
            and self.cold_p50_ratio > max_cold_p50_ratio
        ):
            problems.append(
                f"cold-phase p50 regressed {self.cold_p50_ratio:.2f}x "
                f"(allowed {max_cold_p50_ratio:.2f}x)"
            )
        return problems


def compare(baseline: PerfReport, candidate: PerfReport) -> ReportDelta:
    """Diff two reports for regression gating.

    Example
    -------
    >>> records = [RequestRecord(index=0, phase="warm", kind="kernel",
    ...                          target="G1", m=64, arrival_s=0.0,
    ...                          queue_depth=0, wall_us=40.0, source="table")]
    >>> before = PerfReport.from_records(records, name="before")
    >>> after = PerfReport.from_records(records, name="after")
    >>> delta = compare(before, after)
    >>> delta.p50_ratio, delta.regressions()
    (1.0, [])
    """
    baseline_p50 = baseline.p50_us
    candidate_p50 = candidate.p50_us
    baseline_rps = baseline.throughput_rps
    candidate_rps = candidate.throughput_rps
    baseline_cold = _phase_p50(baseline, "cold")
    candidate_cold = _phase_p50(candidate, "cold")
    baseline_search = _search_block(baseline)
    candidate_search = _search_block(candidate)
    search_delta: Optional[Dict[str, int]] = None
    if baseline_search is not None and candidate_search is not None:
        search_delta = {
            counter: int(candidate_search.get(counter, 0))
            - int(baseline_search.get(counter, 0))
            for counter in sorted(set(baseline_search) | set(candidate_search))
        }
    return ReportDelta(
        baseline=baseline.name,
        candidate=candidate.name,
        p50_ratio=(candidate_p50 / baseline_p50) if baseline_p50 > 0 else None,
        cold_p50_ratio=(
            candidate_cold / baseline_cold
            if baseline_cold and candidate_cold is not None
            else None
        ),
        throughput_ratio=(
            candidate_rps / baseline_rps if baseline_rps > 0 else None
        ),
        hit_rate_delta=candidate.hit_rate - baseline.hit_rate,
        error_delta=candidate.errors - baseline.errors,
        request_delta=candidate.requests - baseline.requests,
        search_delta=search_delta,
    )


def _phase_p50(report: PerfReport, phase: str) -> Optional[float]:
    block = dict(report.payload.get("phases", {})).get(phase)
    if not block:
        return None
    return float(block["latency_us"]["p50"])


def _search_block(report: PerfReport) -> Optional[Dict[str, int]]:
    counts = dict(report.payload.get("counts", {}))
    search = counts.get("search")
    if search is None:
        return None
    return {str(k): int(v) for k, v in dict(search).items()}
