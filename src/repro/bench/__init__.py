"""Trace-driven serving benchmarks: load generation, replay, perf reports.

The bench subsystem closes the loop the ROADMAP's serving story needs: it
drives the runtime stack (:class:`~repro.runtime.server.KernelServer`,
:class:`~repro.graphs.server.ModelServer`) under reproducible synthetic
load and condenses what happened into a stable, diffable
:class:`PerfReport` artifact.

* :mod:`repro.bench.traces` — seeded trace generators (Poisson, bursty,
  LLM prefill/decode mixes, conv sweeps) plus JSON (de)serialization.
* :mod:`repro.bench.driver` — :class:`LoadDriver`, which replays a trace
  through the real request path with configurable concurrency and records
  per-request wall clock, cache provenance and queue depth.
* :mod:`repro.bench.report` — :class:`PerfReport` aggregation (throughput,
  latency percentiles, hit rates, compile-vs-serve split, per-phase
  blocks) and :func:`compare` for regression gating.
* :mod:`repro.bench.config` — :class:`BenchConfig`, the one frozen value
  describing a whole benchmark run.

``python -m repro.bench`` runs a configured scenario end to end and writes
the report JSON (see :mod:`repro.bench.__main__`)::

    python -m repro.bench --scenario llm --requests 24 --output BENCH_bench.json
"""

from repro.bench.config import SCENARIOS, BenchConfig
from repro.bench.driver import LoadDriver, ReplayResult, RequestRecord
from repro.bench.report import (
    PerfReport,
    ReportDelta,
    compare,
    percentile,
)
from repro.bench.traces import (
    Trace,
    TraceRequest,
    bursty_trace,
    cold_warm_trace,
    conv_sweep_trace,
    llm_serving_trace,
    poisson_trace,
    repeat_phases,
    scenario_trace,
)

__all__ = [
    "BenchConfig",
    "LoadDriver",
    "PerfReport",
    "ReplayResult",
    "ReportDelta",
    "RequestRecord",
    "SCENARIOS",
    "Trace",
    "TraceRequest",
    "bursty_trace",
    "cold_warm_trace",
    "compare",
    "conv_sweep_trace",
    "llm_serving_trace",
    "percentile",
    "poisson_trace",
    "repeat_phases",
    "scenario_trace",
]
