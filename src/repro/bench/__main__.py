"""``python -m repro.bench`` — run one serving benchmark end to end.

Builds the scenario trace a :class:`~repro.bench.config.BenchConfig`
describes, replays it against a fresh :class:`~repro.graphs.server.ModelServer`
stack, writes the :class:`~repro.bench.report.PerfReport` JSON, and prints a
short summary.  With ``--baseline`` the fresh report is additionally diffed
against a stored one and deterministic regressions (hit rate, errors) fail
the run — the CI benchmarks job uses exactly this entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.config import SCENARIOS, BenchConfig
from repro.bench.driver import LoadDriver
from repro.bench.report import PerfReport, compare
from repro.bench.traces import scenario_trace
from repro.config import FuserConfig
from repro.graphs.server import ModelServer

#: Default report artifact name (the repo's perf trajectory convention).
DEFAULT_OUTPUT = "BENCH_bench.json"


def run(config: BenchConfig, *, name: str = "bench") -> PerfReport:
    """Replay ``config``'s scenario against a fresh serving stack.

    The stack is built from the config's compiler knobs; without a
    configured cache directory the replay starts genuinely cold, so the
    report's ``cold`` phase prices the fusion search and the ``warm`` phase
    prices steady-state serving.
    """
    trace = scenario_trace(config)
    with ModelServer(
        config=config.fuser_config(), m_bins=config.m_bins
    ) as server:
        with LoadDriver(
            server, concurrency=config.concurrency, time_scale=config.time_scale
        ) as driver:
            result = driver.replay(trace)
    return result.report(name=name, config=config.to_dict())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Replay a seeded serving trace and write a PerfReport JSON.",
    )
    defaults = BenchConfig()
    parser.add_argument("--scenario", choices=SCENARIOS, default=defaults.scenario)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--requests",
        type=int,
        default=defaults.num_requests,
        help="requests in the measured (warm) load; the cold phase adds one "
        "coverage request per distinct kernel, not another batch of these",
    )
    parser.add_argument("--concurrency", type=int, default=defaults.concurrency)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=defaults.time_scale,
        help="multiplier on trace arrival gaps (0 = as fast as possible)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(defaults.models),
        help="model-zoo names for the llm scenarios",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(defaults.workloads),
        help="workload ids for the kernels scenario",
    )
    parser.add_argument(
        "--m-bins", nargs="+", type=int, default=list(defaults.m_bins)
    )
    parser.add_argument("--device", default=defaults.device)
    parser.add_argument("--top-k", type=int, default=defaults.top_k)
    parser.add_argument("--max-tile", type=int, default=defaults.max_tile)
    parser.add_argument(
        "--cache",
        default=None,
        help="plan-cache directory (omit for a genuinely cold cold-phase)",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="stored PerfReport JSON to diff against; deterministic "
        "regressions (hit rate, errors) fail the run",
    )
    parser.add_argument(
        "--max-p50-ratio",
        type=float,
        default=None,
        help="optional timing gate for --baseline: fail when the new p50 "
        "exceeds baseline p50 by this factor",
    )
    args = parser.parse_args(argv)

    config = BenchConfig(
        scenario=args.scenario,
        seed=args.seed,
        num_requests=args.requests,
        concurrency=args.concurrency,
        time_scale=args.time_scale,
        models=tuple(args.models),
        workloads=tuple(args.workloads),
        m_bins=tuple(args.m_bins),
        device=args.device,
        top_k=args.top_k,
        max_tile=args.max_tile,
        cache=args.cache,
    )
    # Fail early on an unknown device instead of mid-replay.
    FuserConfig(device=config.device).resolve_device()

    report = run(config)
    path = report.save(args.output)
    for line in report.summary_lines():
        print(line)
    print(f"wrote {path}")

    if args.baseline is not None:
        baseline = PerfReport.load(args.baseline)
        delta = compare(baseline, report)
        print(
            f"vs baseline {baseline.name}: "
            f"p50 ratio {delta.p50_ratio and round(delta.p50_ratio, 2)}, "
            f"hit-rate delta {delta.hit_rate_delta:+.1%}, "
            f"errors {delta.error_delta:+d}"
        )
        problems = delta.regressions(max_p50_ratio=args.max_p50_ratio)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
