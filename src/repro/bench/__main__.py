"""``python -m repro.bench`` — run one serving benchmark end to end.

Builds the scenario trace a :class:`~repro.bench.config.BenchConfig`
describes, replays it against a fresh :class:`~repro.graphs.server.ModelServer`
stack, writes the :class:`~repro.bench.report.PerfReport` JSON, and prints a
short summary.  With ``--baseline`` the fresh report is additionally diffed
against a stored one and deterministic regressions (hit rate, errors,
search-candidate counters) fail the run — the CI benchmarks job uses
exactly this entry point.  ``--gate-timing`` additionally arms the
wall-clock gates (overall and cold-phase p50 ratios) at loose default
tolerances.

The ``fleet`` scenario replays against a multi-process
:class:`~repro.fleet.router.ServingFleet` instead; ``--workers`` takes one
or more worker counts, one report is written per count (``_w{n}`` inserted
before the output suffix), and a scaling summary compares their
throughputs — the committed ``BENCH_fleet_w*.json`` artifacts are exactly
this loop's output.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.bench.config import SCENARIOS, BenchConfig
from repro.bench.driver import LoadDriver
from repro.bench.report import PerfReport, compare
from repro.bench.traces import scenario_trace
from repro.config import FuserConfig
from repro.graphs.server import ModelServer
from repro.obs import trace as obs_trace

#: Default report artifact name (the repo's perf trajectory convention).
DEFAULT_OUTPUT = "BENCH_bench.json"

#: Timing-gate thresholds applied by ``--gate-timing`` when the explicit
#: ``--max-p50-ratio`` / ``--max-cold-p50-ratio`` flags are not given.
#: Wall-clock ratios compare elapsed time across possibly different
#: machines, so the defaults carry generous headroom: a 3x budget tolerates
#: a loaded or slower runner while still catching a reintroduced
#: cold-compile cliff (which regresses by 1-2 orders of magnitude).
DEFAULT_MAX_P50_RATIO = 3.0
DEFAULT_MAX_COLD_P50_RATIO = 3.0


def run(config: BenchConfig, *, name: str = "bench") -> PerfReport:
    """Replay ``config``'s scenario against a fresh serving stack.

    The stack is built from the config's compiler knobs; without a
    configured cache directory the replay starts genuinely cold, so the
    report's ``cold`` phase prices the fusion search and the ``warm`` phase
    prices steady-state serving.
    """
    trace = scenario_trace(config)
    with ModelServer(
        config=config.fuser_config(), m_bins=config.m_bins
    ) as server:
        with LoadDriver(
            server, concurrency=config.concurrency, time_scale=config.time_scale
        ) as driver:
            result = driver.replay(trace)
    return result.report(name=name, config=config.to_dict())


def run_fleet(config: BenchConfig, *, name: Optional[str] = None) -> PerfReport:
    """Replay ``config``'s scenario against a fresh serving fleet.

    The fleet runs ``config.workers`` worker processes over a fresh shared
    plan-cache namespace (unless ``config.cache`` pins one); the driver's
    ``concurrency`` threads feed the router, so distinct cold compiles
    spread across workers while same-shape requests keep their affinity.
    The fleet's :class:`~repro.fleet.stats.FleetStats` snapshot is attached
    to the report under the ``fleet`` key.
    """
    from repro.fleet.router import ServingFleet

    trace = scenario_trace(config)
    with ServingFleet(config.fleet_config()) as fleet:
        with LoadDriver(
            fleet, concurrency=config.concurrency, time_scale=config.time_scale
        ) as driver:
            result = driver.replay(trace)
        stats = fleet.stats()
    fleet_block = stats.to_dict()
    # Compiles are CPU-bound, so wall-clock scaling is capped at
    # min(workers, cores); record the host's core count so a flat curve
    # from a core-starved runner explains itself in the artifact.
    fleet_block["host_cpus"] = os.cpu_count()
    return result.report(
        name=name or f"fleet-w{config.workers}",
        config=config.to_dict(),
        fleet=fleet_block,
    )


def _worker_output(path: str, workers: int) -> str:
    """``BENCH_fleet.json`` + 4 workers -> ``BENCH_fleet_w4.json``."""
    base = Path(path)
    return str(base.with_name(f"{base.stem}_w{workers}{base.suffix}"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Replay a seeded serving trace and write a PerfReport JSON.",
    )
    defaults = BenchConfig()
    parser.add_argument("--scenario", choices=SCENARIOS, default=defaults.scenario)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--requests",
        type=int,
        default=defaults.num_requests,
        help="requests in the measured (warm) load; the cold phase adds one "
        "coverage request per distinct kernel, not another batch of these",
    )
    parser.add_argument("--concurrency", type=int, default=defaults.concurrency)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=defaults.time_scale,
        help="multiplier on trace arrival gaps (0 = as fast as possible)",
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(defaults.models),
        help="model-zoo names for the llm scenarios",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(defaults.workloads),
        help="workload ids for the kernels scenario",
    )
    parser.add_argument(
        "--m-bins", nargs="+", type=int, default=list(defaults.m_bins)
    )
    parser.add_argument("--device", default=defaults.device)
    parser.add_argument("--top-k", type=int, default=defaults.top_k)
    parser.add_argument("--max-tile", type=int, default=defaults.max_tile)
    parser.add_argument(
        "--cache",
        default=None,
        help="plan-cache directory (omit for a genuinely cold cold-phase)",
    )
    parser.add_argument(
        "--no-transfer",
        action="store_true",
        help="disable nearest-shape warm-start transfer search (measures "
        "the pure exact-search cold phase)",
    )
    parser.add_argument(
        "--workers",
        nargs="+",
        type=int,
        default=[1],
        help="fleet scenario only: worker counts to run, one report per "
        "count (e.g. --workers 1 2 4 produces a scaling curve)",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"report JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="stored PerfReport JSON to diff against; deterministic "
        "regressions (hit rate, errors) fail the run",
    )
    parser.add_argument(
        "--max-p50-ratio",
        type=float,
        default=None,
        help="optional timing gate for --baseline: fail when the new p50 "
        "exceeds baseline p50 by this factor (wall-clock, so give it "
        "headroom; see --gate-timing for the defaults)",
    )
    parser.add_argument(
        "--max-cold-p50-ratio",
        type=float,
        default=None,
        help="optional timing gate for --baseline: fail when the new "
        "cold-phase p50 exceeds the baseline's by this factor — the "
        "cold-compile-cliff guard (wall-clock, so give it headroom)",
    )
    parser.add_argument(
        "--gate-timing",
        action="store_true",
        help="enable the timing gates with default tolerances "
        f"(p50 {DEFAULT_MAX_P50_RATIO}x, cold p50 "
        f"{DEFAULT_MAX_COLD_P50_RATIO}x) for any --max-*-ratio flag not "
        "given explicitly; tolerances are ratios of wall-clock latency, "
        "deliberately loose because runner speed varies — the "
        "deterministic gates (hit rate, errors, candidates enumerated/"
        "analyzed) are always exact and always on",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="enable request tracing (REPRO_TRACE) and write this process's "
        "spans to the given JSONL path; fleet workers write sibling "
        "spans-*.jsonl files into the same directory — inspect with "
        "'python -m repro.obs summarize'",
    )
    parser.add_argument(
        "--max-hit-rate-drop",
        type=float,
        default=0.0,
        help="tolerated cache hit-rate drop vs --baseline (fraction; "
        "fleet replays race duplicate compiles, so their gate needs a "
        "small allowance)",
    )
    args = parser.parse_args(argv)
    if args.gate_timing:
        if args.max_p50_ratio is None:
            args.max_p50_ratio = DEFAULT_MAX_P50_RATIO
        if args.max_cold_p50_ratio is None:
            args.max_cold_p50_ratio = DEFAULT_MAX_COLD_P50_RATIO

    config = BenchConfig(
        scenario=args.scenario,
        seed=args.seed,
        num_requests=args.requests,
        concurrency=args.concurrency,
        time_scale=args.time_scale,
        models=tuple(args.models),
        workloads=tuple(args.workloads),
        m_bins=tuple(args.m_bins),
        device=args.device,
        top_k=args.top_k,
        max_tile=args.max_tile,
        cache=args.cache,
        transfer=not args.no_transfer,
    )
    # Fail early on an unknown device instead of mid-replay.
    FuserConfig(device=config.device).resolve_device()

    if args.trace_out is not None:
        trace_out = Path(args.trace_out)
        trace_out.parent.mkdir(parents=True, exist_ok=True)
        # Publishing the directory via the environment lets spawned fleet
        # workers flush their span files next to this process's.
        obs_trace.enable(out_dir=trace_out.parent)

    if config.scenario == "fleet":
        runs: List[Tuple[int, PerfReport]] = []
        for workers in args.workers:
            report = run_fleet(config.replace(workers=workers))
            output = (
                _worker_output(args.output, workers)
                if len(args.workers) > 1
                else args.output
            )
            path = report.save(output)
            for line in report.summary_lines():
                print(line)
            fleet_block = report.payload.get("fleet", {})
            router = fleet_block.get("router", {})
            print(
                f"  fleet: {workers} worker(s), "
                f"{router.get('restarts', 0)} restart(s), "
                f"{router.get('broadcast_warms', 0)} broadcast warm(s)"
            )
            print(f"wrote {path}")
            runs.append((workers, report))
        if len(runs) > 1:
            base_workers, base_report = runs[0]
            print("scaling curve (throughput vs "
                  f"{base_workers} worker(s)):")
            for workers, report in runs:
                ratio = (
                    report.throughput_rps / base_report.throughput_rps
                    if base_report.throughput_rps > 0
                    else 0.0
                )
                print(
                    f"  w={workers}: {report.throughput_rps:.1f} req/s "
                    f"({ratio:.2f}x)"
                )
            host_cpus = os.cpu_count() or 1
            if host_cpus < max(workers for workers, _ in runs):
                print(
                    f"  note: host has {host_cpus} core(s); compile "
                    "throughput scaling is capped at min(workers, cores)"
                )
        report = runs[-1][1]
    else:
        report = run(config)
        path = report.save(args.output)
        for line in report.summary_lines():
            print(line)
        print(f"wrote {path}")

    if args.trace_out is not None:
        obs_trace.tracer().flush(args.trace_out)
        print(f"wrote trace spans to {args.trace_out}")

    if args.baseline is not None:
        baseline = PerfReport.load(args.baseline)
        delta = compare(baseline, report)
        print(
            f"vs baseline {baseline.name}: "
            f"p50 ratio {delta.p50_ratio and round(delta.p50_ratio, 2)}, "
            f"cold p50 ratio "
            f"{delta.cold_p50_ratio and round(delta.cold_p50_ratio, 2)}, "
            f"hit-rate delta {delta.hit_rate_delta:+.1%}, "
            f"errors {delta.error_delta:+d}"
        )
        if delta.search_delta is not None:
            print(
                "  search delta: "
                + ", ".join(
                    f"{counter} {value:+d}"
                    for counter, value in delta.search_delta.items()
                )
            )
        problems = delta.regressions(
            max_p50_ratio=args.max_p50_ratio,
            max_cold_p50_ratio=args.max_cold_p50_ratio,
            max_hit_rate_drop=args.max_hit_rate_drop,
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
