"""Trace replay against the serving stack.

:class:`LoadDriver` replays a :class:`~repro.bench.traces.Trace` against a
live :class:`~repro.runtime.server.KernelServer`,
:class:`~repro.graphs.server.ModelServer`, or multi-process
:class:`~repro.fleet.router.ServingFleet` through the ordinary request path
— kernel requests resolve *table → plan cache → compile* exactly like
production traffic, model requests additionally run chain extraction and
plan assembly, and fleet requests additionally traverse the router
(admission control, affinity dispatch, failover).  Nothing is mocked: a
cold replay really pays the fusion search, a warm replay really hits the
tables, and the per-request :class:`RequestRecord` stream captures what
actually happened (wall clock, resolution source, queue depth at
dispatch).

With ``concurrency=1`` (the default) requests execute strictly in trace
order on the calling thread, which makes cache-provenance counts
deterministic for a seeded trace; higher concurrency dispatches onto a
thread pool while still honouring (scaled) arrival times, exercising the
stack's concurrent-miss deduplication.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.bench.traces import KIND_KERNEL, KIND_MODEL, Trace, TraceRequest
from repro.errors import FusionError
from repro.graphs.server import ModelServer
from repro.ir.workloads import MODEL_ZOO, get_workload
from repro.obs.trace import tracer
from repro.runtime.server import KernelServer


@dataclass(frozen=True)
class RequestRecord:
    """What one replayed request actually did.

    ``wall_us`` is the driver-observed resolution latency; ``source`` is the
    serving stack's own provenance (``table``, ``cache:memory``,
    ``cache:disk``, ``compiled``, ``compiled:transfer``, or the model
    layer's most-expensive-chain summary), and ``queue_depth`` is the number
    of requests already dispatched but not yet finished when this one was
    issued.
    """

    index: int
    phase: str
    kind: str
    target: str
    m: int
    arrival_s: float
    queue_depth: int
    wall_us: float
    source: str
    error: Optional[str] = None
    #: Search-effort counters (candidates enumerated / analyzed / skipped)
    #: reported by the stack when this request ran a fusion search.
    search_counters: Optional[Dict[str, int]] = None
    #: The request's end-to-end trace id when ``REPRO_TRACE`` was on.
    trace_id: Optional[str] = None
    #: Per-phase search wall clock (enumerate_prune/analyze/rank/profile/
    #: transfer, microseconds) when this request ran an in-process search.
    phase_times_us: Optional[Dict[str, float]] = None

    @property
    def ok(self) -> bool:
        """Whether the request resolved without an error."""
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a stable key order."""
        return {
            "index": self.index,
            "phase": self.phase,
            "kind": self.kind,
            "target": self.target,
            "m": self.m,
            "arrival_s": self.arrival_s,
            "queue_depth": self.queue_depth,
            "wall_us": self.wall_us,
            "source": self.source,
            "error": self.error,
            "search_counters": self.search_counters,
            "trace_id": self.trace_id,
            "phase_times_us": self.phase_times_us,
        }


@dataclass
class ReplayResult:
    """One finished trace replay: the records plus the replay wall clock."""

    trace: Trace
    records: List[RequestRecord]
    elapsed_s: float
    concurrency: int
    time_scale: float

    @property
    def errors(self) -> List[RequestRecord]:
        """Records of requests that failed."""
        return [record for record in self.records if not record.ok]

    def sources(self) -> Dict[str, int]:
        """Resolution-source histogram over the successful records."""
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.ok:
                counts[record.source] = counts.get(record.source, 0) + 1
        return dict(sorted(counts.items()))

    def report(self, name: str = "replay", **kwargs: object) -> "PerfReport":
        """Aggregate this replay into a :class:`~repro.bench.report.PerfReport`."""
        from repro.bench.report import PerfReport

        return PerfReport.from_replay(self, name=name, **kwargs)


class LoadDriver:
    """Replay traces against a kernel server and/or model server.

    Parameters
    ----------
    server:
        The serving stack under test: a :class:`KernelServer`, a
        :class:`ModelServer`, a started
        :class:`~repro.fleet.router.ServingFleet`, or ``None`` to build a
        fresh :class:`ModelServer` from ``server_kwargs`` (which must not
        be combined with an explicit ``server``).  A :class:`ModelServer`
        or fleet serves both request kinds — kernel requests route to the
        backing kernel server(s); a bare :class:`KernelServer` serves
        kernel requests only.  A fleet is *borrowed*: the driver replays
        through it but never closes it.
    concurrency:
        Worker threads dispatching requests (1 replays inline, in order).
    time_scale:
        Multiplier applied to the trace's arrival times; 0.0 (the default)
        ignores them and replays as fast as possible.

    Example
    -------
    ::

        from repro.bench import LoadDriver, llm_serving_trace, repeat_phases

        trace = repeat_phases(llm_serving_trace(["BERT"], num_requests=16))
        driver = LoadDriver(top_k=5, max_tile=128)   # builds a ModelServer
        result = driver.replay(trace)
        print(result.report().to_dict()["phases"]["warm"])
        driver.close()
    """

    def __init__(
        self,
        server: Optional[Union[KernelServer, ModelServer]] = None,
        *,
        concurrency: int = 1,
        time_scale: float = 0.0,
        **server_kwargs: object,
    ) -> None:
        if server is not None and server_kwargs:
            raise ValueError("pass either server= or ModelServer kwargs, not both")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        from repro.fleet.router import ServingFleet  # local: avoids a cycle

        self._owns_server = server is None
        if server is None:
            server = ModelServer(**server_kwargs)
        self.fleet: Optional[ServingFleet] = None
        if isinstance(server, ServingFleet):
            self.fleet = server
            self.models: Optional[ModelServer] = None
            self.kernels: Optional[KernelServer] = None
        elif isinstance(server, ModelServer):
            self.models = server
            self.kernels = server.server
        else:
            self.models = None
            self.kernels = server
        self.concurrency = concurrency
        self.time_scale = time_scale

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def replay(self, trace: Trace) -> ReplayResult:
        """Replay ``trace`` and return the per-request records.

        Model requests naming zoo models that are not yet registered with
        the model server are registered automatically.  Malformed traces
        fail *before* any request is issued: a model request on a
        kernel-only driver raises :class:`ValueError`, and unknown kernel
        workload ids or model names raise :class:`KeyError` — so a partial
        replay is never silently discarded.  Failures of well-formed
        requests (e.g. :class:`~repro.errors.FusionError` on an unfusable
        chain) are captured per record, not raised.
        """
        self._prepare(trace)
        start = time.perf_counter()
        if self.concurrency == 1:
            records = [
                self._issue(index, request, start, queue_depth=0)
                for index, request in enumerate(trace.requests)
            ]
        else:
            records = self._replay_concurrent(trace, start)
        elapsed_s = time.perf_counter() - start
        return ReplayResult(
            trace=trace,
            records=records,
            elapsed_s=elapsed_s,
            concurrency=self.concurrency,
            time_scale=self.time_scale,
        )

    def close(self) -> None:
        """Release the serving stack when this driver constructed it."""
        if self._owns_server:
            (self.models or self.kernels).close()

    def __enter__(self) -> "LoadDriver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _prepare(self, trace: Trace) -> None:
        for target in sorted(
            {r.target for r in trace.requests if r.kind == KIND_KERNEL}
        ):
            get_workload(target)  # unknown workload ids fail the whole trace
        model_targets = {
            request.target
            for request in trace.requests
            if request.kind == KIND_MODEL
        }
        if self.fleet is not None:
            # Fleet workers register zoo models on demand; only vet names.
            for target in sorted(model_targets):
                if target not in MODEL_ZOO:
                    raise KeyError(f"model {target!r} is not in the zoo")
            return
        if model_targets and self.models is None:
            raise ValueError(
                "trace contains model requests but the driver wraps a bare "
                "KernelServer; construct it around a ModelServer"
            )
        if self.models is not None:
            registered = set(self.models.models())
            for target in sorted(model_targets - registered):
                if target not in MODEL_ZOO:
                    raise KeyError(
                        f"model {target!r} is neither registered nor in the zoo"
                    )
                self.models.register(target, target)

    def _replay_concurrent(
        self, trace: Trace, start: float
    ) -> List[RequestRecord]:
        inflight_lock = threading.Lock()
        inflight = 0
        futures: List[Future[RequestRecord]] = []

        def run(index: int, request: TraceRequest) -> RequestRecord:
            # Sample the depth at *issue* time, on the worker thread, in the
            # same critical section that registers this request — sampling
            # at submit time (the old behaviour) counted pool-queued
            # requests that had not started and missed ones that finished
            # while this one sat in the pool queue.
            nonlocal inflight
            with inflight_lock:
                depth = inflight
                inflight += 1
            try:
                return self._issue(index, request, start, queue_depth=depth)
            finally:
                with inflight_lock:
                    inflight -= 1

        with ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="bench-driver"
        ) as pool:
            for index, request in enumerate(trace.requests):
                self._pace(request, start)
                futures.append(pool.submit(run, index, request))
            records = [future.result() for future in futures]
        return records

    def _pace(self, request: TraceRequest, start: float) -> None:
        if self.time_scale <= 0:
            return
        target = start + request.arrival_s * self.time_scale
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)

    def _issue(
        self, index: int, request: TraceRequest, start: float, queue_depth: int
    ) -> RequestRecord:
        if self.concurrency == 1:
            self._pace(request, start)
        issued = time.perf_counter()
        source = "error"
        error: Optional[str] = None
        search_counters: Optional[Dict[str, int]] = None
        phase_times_us: Optional[Dict[str, float]] = None
        with tracer().root(
            "request",
            kind=request.kind,
            target=request.target,
            m=request.m,
            phase=request.phase,
        ) as span:
            try:
                if self.fleet is not None:
                    fleet_response = self.fleet.serve(
                        request.target, request.m, kind=request.kind
                    )
                    if fleet_response.source is not None:
                        source = fleet_response.source
                    if fleet_response.rejected:
                        error = (
                            "rejected: fleet admission watermark "
                            f"(retry after {fleet_response.retry_after_s:.3f}s)"
                        )
                    else:
                        error = fleet_response.error
                    search_counters = getattr(
                        fleet_response, "search_counters", None
                    )
                elif request.kind == KIND_KERNEL:
                    response = self.kernels.request(request.target, request.m)
                    source = response.source
                    search_counters = response.search_counters
                    phase_times_us = getattr(response, "phase_times_us", None)
                else:
                    assert self.models is not None  # _prepare guarantees this
                    model_response = self.models.serve(
                        request.target, m=request.m
                    )
                    source = model_response.source
                    search_counters = model_response.search_counters
                    phase_times_us = getattr(
                        model_response, "phase_times_us", None
                    )
            except FusionError as exc:
                error = f"FusionError: {exc}"
            span.set("source", source)
            trace_id = span.trace_id
        wall_us = (time.perf_counter() - issued) * 1e6
        return RequestRecord(
            index=index,
            phase=request.phase,
            kind=request.kind,
            target=request.target,
            m=request.m,
            arrival_s=request.arrival_s,
            queue_depth=queue_depth,
            wall_us=wall_us,
            source=source,
            error=error,
            search_counters=search_counters,
            trace_id=trace_id,
            phase_times_us=phase_times_us,
        )
