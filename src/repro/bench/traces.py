"""Seeded synthetic load traces for the serving benchmark harness.

A :class:`Trace` is a reproducible serving scenario: an ordered sequence of
:class:`TraceRequest` arrivals, each naming either a kernel workload (served
by :class:`~repro.runtime.server.KernelServer`) or a model-zoo model (served
by :class:`~repro.graphs.server.ModelServer`) at some runtime M.  Every
generator in this module is driven by an explicit seed, so a trace is a
*value*: regenerate it from ``(generator, params, seed)`` or round-trip it
through JSON (:meth:`Trace.save` / :meth:`Trace.load`) and replay the exact
same request sequence anywhere.

Generators cover the load shapes the paper's end-to-end evaluation cares
about:

* :func:`poisson_trace` — open-loop Poisson arrivals over kernel workloads,
  the classic steady-traffic model.
* :func:`bursty_trace` — arrivals clustered into bursts separated by idle
  gaps, stressing queueing and concurrent-miss deduplication.
* :func:`llm_serving_trace` — an SGLang-style prefill/decode mix over the
  model zoo: rare large-M prefill requests interleaved with dense small-M
  decode steps.
* :func:`conv_sweep_trace` — a deterministic sweep over the conv-chain
  suite, the vision-workload counterpart.
* :func:`repeat_phases` — replays any trace in consecutive named phases
  (``cold`` then ``warm`` by default), which is how cold-vs-warm cache
  behaviour becomes measurable inside a single report.
"""

from __future__ import annotations

import bisect
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.ir.workloads import MODEL_ZOO, get_workload, list_workloads

if TYPE_CHECKING:
    from repro.bench.config import BenchConfig

#: Request kinds understood by the load driver.
KIND_KERNEL = "kernel"
KIND_MODEL = "model"

#: Schema version stamped into serialized traces.
TRACE_SCHEMA_VERSION = 1

#: Default phase names used by :func:`repeat_phases` for two repeats.
DEFAULT_PHASES: Tuple[str, str] = ("cold", "warm")


@dataclass(frozen=True)
class TraceRequest:
    """One request of a load trace.

    Parameters
    ----------
    arrival_s:
        Arrival time in seconds from the start of the trace.  The driver
        honours inter-arrival gaps scaled by its ``time_scale`` (0 replays
        as fast as possible).
    kind:
        ``"kernel"`` (``target`` is a workload id like ``"G4"``) or
        ``"model"`` (``target`` is a model-zoo name like ``"BERT"``).
    target:
        The workload id or model name this request resolves.
    m:
        The runtime M (batched token count) of the request.
    phase:
        Free-form phase tag (``"cold"``, ``"warm"``, ...) used by the
        report's per-phase aggregation.

    Example
    -------
    >>> request = TraceRequest(arrival_s=0.5, kind="kernel", target="G4", m=96)
    >>> TraceRequest.from_dict(request.to_dict()) == request
    True
    """

    arrival_s: float
    kind: str
    target: str
    m: int
    phase: str = "steady"

    def __post_init__(self) -> None:
        if self.kind not in (KIND_KERNEL, KIND_MODEL):
            raise ValueError(f"kind must be 'kernel' or 'model', not {self.kind!r}")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.m <= 0:
            raise ValueError("m must be positive")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a stable key order."""
        return {
            "arrival_s": self.arrival_s,
            "kind": self.kind,
            "target": self.target,
            "m": self.m,
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceRequest":
        """Inverse of :meth:`to_dict`."""
        return cls(
            arrival_s=float(payload["arrival_s"]),
            kind=str(payload["kind"]),
            target=str(payload["target"]),
            m=int(payload["m"]),
            phase=str(payload.get("phase", "steady")),
        )


@dataclass(frozen=True)
class Trace:
    """A reproducible serving scenario: requests plus their provenance.

    ``metadata`` records the generator name and parameters that produced the
    trace, so a serialized trace documents itself; ``seed`` is the RNG seed,
    making ``(metadata, seed)`` sufficient to regenerate the identical
    request sequence.

    Example
    -------
    >>> trace = poisson_trace(["G1"], num_requests=3, seed=7)
    >>> restored = Trace.from_json(trace.to_json())
    >>> restored == trace
    True
    >>> len(restored)
    3
    """

    name: str
    seed: int
    requests: Tuple[TraceRequest, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        object.__setattr__(self, "metadata", dict(self.metadata))
        arrivals = [request.arrival_s for request in self.requests]
        if arrivals != sorted(arrivals):
            raise ValueError("trace requests must be sorted by arrival_s")

    def __len__(self) -> int:
        return len(self.requests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.name == other.name
            and self.seed == other.seed
            and self.requests == other.requests
            and dict(self.metadata) == dict(other.metadata)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.seed, self.requests))

    @property
    def duration_s(self) -> float:
        """Arrival time of the last request (0.0 for an empty trace)."""
        return self.requests[-1].arrival_s if self.requests else 0.0

    def phases(self) -> List[str]:
        """Distinct phase tags, in first-appearance order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(request.phase, None)
        return list(seen)

    def targets(self) -> List[str]:
        """Distinct ``kind:target`` pairs, in first-appearance order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(f"{request.kind}:{request.target}", None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a stable key order."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "metadata": {key: self.metadata[key] for key in sorted(self.metadata)},
            "requests": [request.to_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Trace":
        """Inverse of :meth:`to_dict` (tolerates any known schema version)."""
        version = int(payload.get("schema_version", TRACE_SCHEMA_VERSION))
        if version > TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema version {version} is newer than supported "
                f"({TRACE_SCHEMA_VERSION})"
            )
        return cls(
            name=str(payload["name"]),
            seed=int(payload["seed"]),
            requests=tuple(
                TraceRequest.from_dict(item) for item in payload["requests"]
            ),
            metadata=dict(payload.get("metadata", {})),
        )

    def to_json(self) -> str:
        """The trace as a JSON document (stable key order, diff-friendly)."""
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, blob: str) -> "Trace":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(blob))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSON to ``path`` and return the path."""
        path = Path(path).expanduser()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).expanduser().read_text(encoding="utf-8"))


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #
def poisson_arrivals(
    num_requests: int, rate_hz: float, rng: random.Random
) -> List[float]:
    """Open-loop Poisson arrival times (exponential inter-arrival gaps)."""
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    arrivals: List[float] = []
    now = 0.0
    for _ in range(num_requests):
        now += rng.expovariate(rate_hz)
        arrivals.append(now)
    return arrivals


def bursty_arrivals(
    num_requests: int,
    rng: random.Random,
    *,
    burst_size: int = 8,
    burst_gap_s: float = 1.0,
    intra_gap_s: float = 0.002,
) -> List[float]:
    """Arrival times clustered into bursts separated by idle gaps.

    Bursts hold ``burst_size`` requests on average (jittered ±50%) spaced
    ``intra_gap_s`` apart; consecutive bursts are separated by an
    exponential gap with mean ``burst_gap_s``.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    arrivals: List[float] = []
    now = 0.0
    while len(arrivals) < num_requests:
        size = max(1, round(burst_size * (0.5 + rng.random())))
        for _ in range(min(size, num_requests - len(arrivals))):
            arrivals.append(now)
            now += intra_gap_s
        now += rng.expovariate(1.0 / burst_gap_s)
    return arrivals


# --------------------------------------------------------------------- #
# Trace generators
# --------------------------------------------------------------------- #
def poisson_trace(
    workloads: Sequence[str],
    *,
    num_requests: int = 64,
    rate_hz: float = 50.0,
    m_choices: Sequence[int] = (32, 64, 96, 128),
    seed: int = 0,
    name: str = "poisson",
) -> Trace:
    """Poisson-arrival kernel requests sampled uniformly over ``workloads``.

    Example
    -------
    >>> trace = poisson_trace(["G1", "G4"], num_requests=4, seed=1)
    >>> [r.kind for r in trace.requests]
    ['kernel', 'kernel', 'kernel', 'kernel']
    """
    _validate_workloads(workloads)
    rng = random.Random(seed)
    arrivals = poisson_arrivals(num_requests, rate_hz, rng)
    requests = tuple(
        TraceRequest(
            arrival_s=arrival,
            kind=KIND_KERNEL,
            target=rng.choice(list(workloads)),
            m=rng.choice(list(m_choices)),
        )
        for arrival in arrivals
    )
    return Trace(
        name=name,
        seed=seed,
        requests=requests,
        metadata={
            "generator": "poisson_trace",
            "workloads": list(workloads),
            "rate_hz": rate_hz,
            "m_choices": list(m_choices),
        },
    )


def bursty_trace(
    workloads: Sequence[str],
    *,
    num_requests: int = 64,
    burst_size: int = 8,
    burst_gap_s: float = 1.0,
    m_choices: Sequence[int] = (32, 64, 96, 128),
    seed: int = 0,
    name: str = "bursty",
) -> Trace:
    """Bursty kernel requests over ``workloads`` (see :func:`bursty_arrivals`)."""
    _validate_workloads(workloads)
    rng = random.Random(seed)
    arrivals = bursty_arrivals(
        num_requests, rng, burst_size=burst_size, burst_gap_s=burst_gap_s
    )
    requests = tuple(
        TraceRequest(
            arrival_s=arrival,
            kind=KIND_KERNEL,
            target=rng.choice(list(workloads)),
            m=rng.choice(list(m_choices)),
        )
        for arrival in arrivals
    )
    return Trace(
        name=name,
        seed=seed,
        requests=requests,
        metadata={
            "generator": "bursty_trace",
            "workloads": list(workloads),
            "burst_size": burst_size,
            "burst_gap_s": burst_gap_s,
            "m_choices": list(m_choices),
        },
    )


def llm_serving_trace(
    models: Sequence[str],
    *,
    num_requests: int = 64,
    prefill_fraction: float = 0.25,
    prefill_m: Sequence[int] = (192, 256),
    decode_m: Sequence[int] = (8, 16, 32, 64),
    rate_hz: float = 50.0,
    bursty: bool = False,
    seed: int = 0,
    name: str = "llm-serving",
) -> Trace:
    """An SGLang-style prefill/decode mix over model-zoo models.

    Each request serves one model's transformer layer: with probability
    ``prefill_fraction`` at a large prefill M, otherwise at a small decode
    M.  Arrivals are Poisson by default or bursty with ``bursty=True`` —
    the latter models decode storms where many sequences step together.

    Example
    -------
    >>> trace = llm_serving_trace(["BERT"], num_requests=4, seed=3)
    >>> sorted({r.target for r in trace.requests})
    ['BERT']
    """
    for model in models:
        if model not in MODEL_ZOO:
            raise KeyError(f"unknown model {model!r}; see repro.ir.workloads.MODEL_ZOO")
    if not 0.0 <= prefill_fraction <= 1.0:
        raise ValueError("prefill_fraction must be in [0, 1]")
    rng = random.Random(seed)
    if bursty:
        arrivals = bursty_arrivals(num_requests, rng)
    else:
        arrivals = poisson_arrivals(num_requests, rate_hz, rng)
    requests = tuple(
        TraceRequest(
            arrival_s=arrival,
            kind=KIND_MODEL,
            target=rng.choice(list(models)),
            m=(
                rng.choice(list(prefill_m))
                if rng.random() < prefill_fraction
                else rng.choice(list(decode_m))
            ),
        )
        for arrival in arrivals
    )
    return Trace(
        name=name,
        seed=seed,
        requests=requests,
        metadata={
            "generator": "llm_serving_trace",
            "models": list(models),
            "prefill_fraction": prefill_fraction,
            "prefill_m": list(prefill_m),
            "decode_m": list(decode_m),
            "rate_hz": rate_hz,
            "bursty": bursty,
        },
    )


def conv_sweep_trace(
    workloads: Optional[Sequence[str]] = None,
    *,
    repeats: int = 2,
    gap_s: float = 0.01,
    m_choices: Sequence[int] = (64, 128),
    seed: int = 0,
    name: str = "conv-sweep",
) -> Trace:
    """A deterministic sweep over the conv-chain suite (Table V shapes).

    Every (workload, M) pair is visited ``repeats`` times in order — a
    regression-friendly vision-workload scan rather than a stochastic load.
    The ``seed`` only shuffles the sweep order, keeping coverage exact.
    """
    workloads = list(workloads if workloads is not None else list_workloads("conv"))
    _validate_workloads(workloads)
    rng = random.Random(seed)
    pairs = [(workload, m) for workload in workloads for m in m_choices]
    rng.shuffle(pairs)
    requests: List[TraceRequest] = []
    now = 0.0
    for _ in range(repeats):
        for workload, m in pairs:
            requests.append(
                TraceRequest(arrival_s=now, kind=KIND_KERNEL, target=workload, m=m)
            )
            now += gap_s
    return Trace(
        name=name,
        seed=seed,
        requests=tuple(requests),
        metadata={
            "generator": "conv_sweep_trace",
            "workloads": list(workloads),
            "repeats": repeats,
            "m_choices": list(m_choices),
        },
    )


def repeat_phases(
    trace: Trace,
    phases: Sequence[str] = DEFAULT_PHASES,
    *,
    gap_s: float = 0.05,
) -> Trace:
    """Replay ``trace`` once per phase name, tagging each pass.

    The first pass populates caches and kernel tables; later passes measure
    steady state — with the default phases this turns any trace into a
    cold-vs-warm experiment whose per-phase latencies land side by side in
    one :class:`~repro.bench.report.PerfReport`.

    Example
    -------
    >>> trace = poisson_trace(["G1"], num_requests=2, seed=0)
    >>> phased = repeat_phases(trace)
    >>> phased.phases()
    ['cold', 'warm']
    >>> len(phased) == 2 * len(trace)
    True
    """
    if not phases:
        raise ValueError("phases must be non-empty")
    requests: List[TraceRequest] = []
    offset = 0.0
    for phase in phases:
        for request in trace.requests:
            requests.append(
                TraceRequest(
                    arrival_s=offset + request.arrival_s,
                    kind=request.kind,
                    target=request.target,
                    m=request.m,
                    phase=phase,
                )
            )
        offset += trace.duration_s + gap_s
    return Trace(
        name=f"{trace.name}-{'-'.join(phases)}",
        seed=trace.seed,
        requests=tuple(requests),
        metadata={**trace.metadata, "phases": list(phases), "phase_gap_s": gap_s},
    )


def cold_warm_trace(
    trace: Trace,
    m_bins: Sequence[int],
    *,
    gap_s: float = 0.05,
    phases: Sequence[str] = DEFAULT_PHASES,
) -> Trace:
    """Prepend a cold coverage prelude to ``trace``.

    The first phase visits each distinct ``(kind, target, M-bin)`` of the
    trace exactly once at the bin's M — each request prices the path the
    serving stack takes the first time it sees that key.  The second phase
    then replays the full original load, which by construction stays inside
    the now-populated tables.  The resulting report's ``cold`` p50 is
    therefore the median *first-request* cost and ``warm`` p50 the median
    steady-state cost, which is the comparison the cold-vs-warm speedup
    claim is about.

    Coverage is keyed on the trace's ``(kind, target, bin)`` triples, not
    on kernel identity: two targets whose extracted chains are canonically
    identical (BERT's and GPT-2's FFN, say) share one kernel table, so the
    second target's coverage request resolves as a table hit rather than a
    search.  Pick distinct shapes when the cold phase should be all misses.

    ``m_bins`` must match the serving stack's bins, otherwise the prelude
    covers the wrong kernels.

    Example
    -------
    >>> base = poisson_trace(["G1"], num_requests=6, m_choices=(8, 100), seed=0)
    >>> phased = cold_warm_trace(base, m_bins=(64, 128))
    >>> sorted(r.m for r in phased.requests if r.phase == "cold")
    [64, 128]
    >>> sum(1 for r in phased.requests if r.phase == "warm")
    6
    """
    if len(phases) != 2:
        raise ValueError("cold_warm_trace needs exactly two phase names")
    bins = sorted(set(m_bins))
    if not bins or any(m <= 0 for m in bins):
        raise ValueError("m_bins must be non-empty and positive")

    def bin_for(m: int) -> int:
        index = bisect.bisect_left(bins, m)
        return bins[min(index, len(bins) - 1)]

    coverage: List[Tuple[str, str, int]] = []
    seen = set()
    for request in trace.requests:
        key = (request.kind, request.target, bin_for(request.m))
        if key not in seen:
            seen.add(key)
            coverage.append(key)
    requests: List[TraceRequest] = []
    now = 0.0
    for kind, target, bin_m in coverage:
        requests.append(
            TraceRequest(
                arrival_s=now, kind=kind, target=target, m=bin_m, phase=phases[0]
            )
        )
        now += gap_s
    offset = now + gap_s
    for request in trace.requests:
        requests.append(
            TraceRequest(
                arrival_s=offset + request.arrival_s,
                kind=request.kind,
                target=request.target,
                m=request.m,
                phase=phases[1],
            )
        )
    return Trace(
        name=f"{trace.name}-{'-'.join(phases)}",
        seed=trace.seed,
        requests=tuple(requests),
        metadata={
            **trace.metadata,
            "phases": list(phases),
            "cold_coverage": len(coverage),
            "m_bins": bins,
        },
    )


def scenario_trace(config: "BenchConfig") -> Trace:
    """Build the phased (cold, warm) trace a :class:`BenchConfig` describes.

    The stochastic scenarios generate ``config.num_requests`` requests from
    the configured seed (the ``conv`` sweep visits its exact coverage set
    instead); every scenario is then wrapped by :func:`cold_warm_trace`, so
    the resulting report prices the first-request (fusion search) path in
    its ``cold`` phase and the steady-state path in its ``warm`` phase.

    Example
    -------
    >>> from repro.bench.config import BenchConfig
    >>> trace = scenario_trace(BenchConfig(scenario="kernels", num_requests=3))
    >>> trace.phases()
    ['cold', 'warm']
    """
    largest_bin = max(config.m_bins)
    smallest_bin = min(config.m_bins)
    if config.scenario in ("llm", "llm-bursty", "fleet"):
        # "fleet" replays the bursty LLM mix — the generator is shared; the
        # scenarios differ in what serves the trace (one in-process stack
        # vs a multi-worker ServingFleet), which __main__ decides.
        base = llm_serving_trace(
            config.models,
            num_requests=config.num_requests,
            prefill_m=tuple(
                sorted({largest_bin // 2 or 1, largest_bin})
            ),
            decode_m=tuple(
                sorted(
                    {max(1, smallest_bin // 8), smallest_bin // 2 or 1, smallest_bin}
                )
            ),
            bursty=config.scenario != "llm",
            seed=config.seed,
            name=config.scenario,
        )
    elif config.scenario == "kernels":
        base = poisson_trace(
            config.workloads,
            num_requests=config.num_requests,
            m_choices=tuple(sorted({smallest_bin, largest_bin})),
            seed=config.seed,
            name=config.scenario,
        )
    else:  # "conv" — BenchConfig validated the scenario name already
        base = conv_sweep_trace(
            m_choices=tuple(sorted({smallest_bin, largest_bin})),
            seed=config.seed,
            name=config.scenario,
        )
    return cold_warm_trace(base, config.m_bins)


def _validate_workloads(workloads: Sequence[str]) -> None:
    if not workloads:
        raise ValueError("workloads must be non-empty")
    for workload in workloads:
        get_workload(workload)  # raises KeyError for unknown ids
