"""Benchmark-run configuration.

:class:`BenchConfig` mirrors the :class:`~repro.config.FuserConfig`
conventions — one frozen value object carrying every knob of a benchmark
run, with ``replace()`` derivation and a ``to_dict()``/``from_dict()``
round-trip — so a serving benchmark is described by a single serializable
value: the scenario to generate, the load parameters, the driver settings,
and the compiler knobs of the serving stack under test.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace as _dataclass_replace
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.config import FuserConfig

#: Scenario names understood by :func:`repro.bench.scenario_trace`.
SCENARIOS: Tuple[str, ...] = ("llm", "llm-bursty", "kernels", "conv", "fleet")


@dataclass(frozen=True)
class BenchConfig:
    """Every knob of one serving-benchmark run, as one frozen value.

    Parameters
    ----------
    scenario:
        Which trace generator to run: ``"llm"`` (Poisson prefill/decode mix
        over the model zoo), ``"llm-bursty"`` (the same mix under bursty
        arrivals), ``"kernels"`` (Poisson kernel requests over workload
        ids), ``"conv"`` (deterministic conv-chain sweep) or ``"fleet"``
        (the bursty LLM mix replayed against a multi-worker
        :class:`~repro.fleet.router.ServingFleet` instead of one
        in-process stack).
    seed:
        RNG seed for the trace generator — the whole run is reproducible
        from this config value.
    num_requests:
        Requests generated for the measured (warm) load.  The cold phase is
        *not* another ``num_requests``: it is the coverage prelude
        :func:`~repro.bench.traces.cold_warm_trace` prepends — one request
        per distinct kernel the load touches.
    concurrency:
        Driver worker threads.  1 (the default) replays strictly in order,
        which also makes cache-provenance counts deterministic.
    time_scale:
        Multiplier on the trace's inter-arrival gaps; 0.0 replays as fast
        as possible.
    models:
        Model-zoo names used by the LLM scenarios.  The defaults are two
        models with *distinct* FFN shapes, so every cold-coverage request
        really pays a fusion search (canonically identical chains — e.g.
        BERT and GPT-2 — share kernel tables, which would turn part of the
        cold phase into table hits).
    workloads:
        Workload ids used by the ``kernels`` scenario.
    m_bins:
        The serving stack's M bins (every trace M is drawn at or below the
        largest bin so warm traffic stays in the tables).
    device, top_k, max_tile, cache:
        Compiler knobs forwarded to the underlying
        :class:`~repro.config.FuserConfig` (``cache`` is a plan-cache
        directory, or ``None`` to serve from a fresh in-process state so
        the cold phase is genuinely cold).
    transfer:
        Whether the serving stack warm-starts cold compiles from the
        nearest already-compiled shape (``FuserConfig.transfer``).  On by
        default: the benchmark's cold phase is exactly the cold-compile
        cliff the transfer search exists to flatten.  Pass ``False`` to
        measure the pure exact-search baseline.
    workers:
        Worker-process count of the serving fleet (``fleet`` scenario
        only; the single-process scenarios ignore it).

    Example
    -------
    >>> config = BenchConfig(scenario="kernels", seed=7)
    >>> BenchConfig.from_dict(config.to_dict()) == config
    True
    >>> config.replace(concurrency=4).concurrency
    4
    """

    scenario: str = "llm"
    seed: int = 0
    num_requests: int = 24
    concurrency: int = 1
    time_scale: float = 0.0
    models: Tuple[str, ...] = ("BERT", "Qwen3-0.6B")
    workloads: Tuple[str, ...] = ("G1", "G4", "G10")
    m_bins: Tuple[int, ...] = (64, 256)
    device: str = "h100"
    top_k: int = 5
    max_tile: int = 128
    cache: Optional[Union[str, os.PathLike]] = None
    transfer: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; choose from {SCENARIOS}"
            )
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "m_bins", tuple(self.m_bins))
        if not self.m_bins or any(m <= 0 for m in self.m_bins):
            raise ValueError("m_bins must be non-empty and positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def replace(self, **overrides: object) -> "BenchConfig":
        """A copy with ``overrides`` applied (validated like construction)."""
        if not overrides:
            return self
        return _dataclass_replace(self, **overrides)

    def fuser_config(self) -> FuserConfig:
        """The :class:`FuserConfig` for the serving stack under test."""
        return FuserConfig(
            device=self.device,
            top_k=self.top_k,
            max_tile=self.max_tile,
            cache=self.cache,
            transfer=self.transfer,
        )

    def fleet_config(self) -> "FleetConfig":
        """The :class:`~repro.fleet.config.FleetConfig` for a fleet run.

        Maps this benchmark's compiler knobs and M bins onto a fleet of
        ``workers`` processes; ``cache`` becomes the fleet's shared
        plan-cache namespace (``None`` keeps the fleet's own temporary
        namespace, so cold phases stay genuinely cold).
        """
        from repro.fleet.config import FleetConfig  # local: avoids a cycle

        return FleetConfig(
            workers=self.workers,
            cache_dir=self.cache,
            m_bins=self.m_bins,
            device=self.device,
            top_k=self.top_k,
            max_tile=self.max_tile,
            transfer=self.transfer,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a stable key order (JSON-ready)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "num_requests": self.num_requests,
            "concurrency": self.concurrency,
            "time_scale": self.time_scale,
            "models": list(self.models),
            "workloads": list(self.workloads),
            "m_bins": list(self.m_bins),
            "device": self.device,
            "top_k": self.top_k,
            "max_tile": self.max_tile,
            "cache": None if self.cache is None else os.fspath(self.cache),
            "transfer": self.transfer,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BenchConfig":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown BenchConfig fields {sorted(unknown)}; known: "
                f"{sorted(known)}"
            )
        coerced: Dict[str, object] = dict(payload)
        for key in ("models", "workloads", "m_bins"):
            if key in coerced:
                coerced[key] = tuple(coerced[key])
        return cls(**coerced)
