"""Memory hierarchy model.

The paper treats the GPU as a multi-level cache hierarchy (Figure 3):

====== ======================= ==========================================
level  name                    visibility
====== ======================= ==========================================
L0     registers (``reg``)     one thread
L1     shared memory (``smem``) one thread block / SM
L1.5   DSM (``dsm``)           thread blocks in one cluster
L2     L2 cache                whole device
L3     global memory (``global``) whole device
====== ======================= ==========================================

:class:`MemoryLevel` describes one tier (capacity, bandwidth, latency) and
:class:`MemoryHierarchy` orders the tiers from fastest/smallest to
slowest/largest, which is the order the dataflow analyzer's greedy spill
walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class MemoryLevelName:
    """Canonical names for the memory tiers used throughout the project."""

    REGISTER = "reg"
    SMEM = "smem"
    DSM = "dsm"
    L2 = "l2"
    GLOBAL = "global"

    #: Fast-to-slow ordering used by the greedy spill algorithm.
    ORDER = (REGISTER, SMEM, DSM, L2, GLOBAL)

    @classmethod
    def index(cls, name: str) -> int:
        """Return the position of ``name`` in the fast-to-slow ordering."""
        return cls.ORDER.index(name)

    @classmethod
    def is_on_chip(cls, name: str) -> bool:
        """Whether ``name`` refers to an on-chip tier (reg/smem/dsm)."""
        return name in (cls.REGISTER, cls.SMEM, cls.DSM)


@dataclass(frozen=True)
class MemoryLevel:
    """One tier of the memory hierarchy.

    Parameters
    ----------
    name:
        Canonical tier name (one of :class:`MemoryLevelName`).
    capacity_bytes:
        Usable capacity of the tier *per placement unit* (per thread block
        for registers and SMEM, per cluster for DSM, per device for L2 and
        global memory).
    bandwidth_gbps:
        Sustained bandwidth in GB/s available to one SM (on-chip tiers) or
        to the whole device (off-chip tiers).
    latency_cycles:
        Typical access latency in clock cycles.
    """

    name: str
    capacity_bytes: int
    bandwidth_gbps: float
    latency_cycles: float

    def __post_init__(self) -> None:
        if self.name not in MemoryLevelName.ORDER:
            raise ValueError(f"unknown memory level name: {self.name!r}")
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    @property
    def is_on_chip(self) -> bool:
        """Whether this tier lives on chip (reg, smem or dsm)."""
        return MemoryLevelName.is_on_chip(self.name)

    def transfer_time_us(self, volume_bytes: float) -> float:
        """Time in microseconds to move ``volume_bytes`` through this tier."""
        if volume_bytes < 0:
            raise ValueError("volume_bytes must be non-negative")
        bytes_per_us = self.bandwidth_gbps * 1e3  # GB/s == bytes/ns == 1e3 bytes/us
        return volume_bytes / bytes_per_us


@dataclass
class MemoryHierarchy:
    """An ordered collection of :class:`MemoryLevel` objects.

    Levels are stored fast-to-slow.  The hierarchy is the object handed to
    the dataflow analyzer (Algorithm 1, ``d.getMemoryHierarchy()``).
    """

    levels: List[MemoryLevel] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for level in self.levels:
            if level.name in seen:
                raise ValueError(f"duplicate memory level {level.name!r}")
            seen.add(level.name)
        indices = [MemoryLevelName.index(level.name) for level in self.levels]
        if indices != sorted(indices):
            raise ValueError("memory levels must be ordered fast-to-slow")

    def __iter__(self) -> Iterator[MemoryLevel]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def names(self) -> List[str]:
        """Return the tier names in fast-to-slow order."""
        return [level.name for level in self.levels]

    def get(self, name: str) -> MemoryLevel:
        """Return the tier called ``name`` or raise ``KeyError``."""
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no memory level named {name!r}")

    def has(self, name: str) -> bool:
        """Whether a tier called ``name`` exists in this hierarchy."""
        return any(level.name == name for level in self.levels)

    def on_chip_levels(self) -> List[MemoryLevel]:
        """Return the on-chip tiers (reg, smem, dsm) present in order."""
        return [level for level in self.levels if level.is_on_chip]

    def spill_targets(self, include_dsm: bool = True) -> List[MemoryLevel]:
        """Tiers the greedy spill may place reused tensors in, fast first.

        The final fallback (global memory) is always included so the spill
        never fails outright; placing data there is what the cost model
        penalises.  ``include_dsm=False`` models prior-work baselines such
        as Chimera that do not know about DSM.
        """
        targets = []
        for level in self.levels:
            if level.name == MemoryLevelName.DSM and not include_dsm:
                continue
            if level.name == MemoryLevelName.L2:
                # L2 is a hardware-managed cache; tensors are never pinned
                # there explicitly, matching the paper's reg/smem/dsm/global
                # placement choices.
                continue
            targets.append(level)
        return targets

    def without(self, *names: str) -> "MemoryHierarchy":
        """Return a copy of the hierarchy with the given tiers removed."""
        return MemoryHierarchy(
            [level for level in self.levels if level.name not in names]
        )

    def slowest_on_chip(self, include_dsm: bool = True) -> Optional[MemoryLevel]:
        """Return the slowest on-chip tier available for spilling."""
        candidates = [
            level
            for level in self.on_chip_levels()
            if include_dsm or level.name != MemoryLevelName.DSM
        ]
        return candidates[-1] if candidates else None
