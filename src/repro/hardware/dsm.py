"""Distributed Shared Memory (DSM) performance model.

Figure 4 of the paper measures DSM bandwidth and latency as a function of the
thread-block-cluster size on an H100: bandwidth decreases and latency grows as
the cluster gets larger, yet DSM stays faster than global memory for every
cluster size except the largest (bandwidth-wise) and for all sizes
(latency-wise).

:class:`DsmModel` reproduces those curves from published microbenchmark data
(Luo et al., IPDPS'24; Jin et al., MICRO'24) and interpolates between the
measured cluster sizes.  All downstream components — the cost model, the
performance simulator and the Figure 4/13 experiments — read DSM performance
exclusively through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


#: Measured (cluster size -> bandwidth TB/s) points, Figure 4 left panel.
#: Bandwidth falls as the cluster grows; it stays above the ~3 TB/s HBM
#: bandwidth for every size except the largest (16), matching the paper's
#: observation that DSM is faster than global memory "for all but the
#: largest cluster size".
_DEFAULT_BANDWIDTH_TBPS: Dict[int, float] = {
    2: 3.90,
    4: 3.55,
    8: 3.20,
    16: 2.70,
}

#: Measured (cluster size -> latency cycles) points, Figure 4 right panel.
_DEFAULT_LATENCY_CYCLES: Dict[int, float] = {
    2: 181.0,
    4: 194.0,
    8: 212.0,
    16: 236.0,
}


@dataclass(frozen=True)
class DsmModel:
    """Analytical model of DSM bandwidth and latency versus cluster size.

    Parameters
    ----------
    bandwidth_tbps:
        Mapping from cluster size to aggregate intra-cluster DSM bandwidth in
        TB/s.
    latency_cycles:
        Mapping from cluster size to one-way SM-to-SM latency in cycles.
    global_bandwidth_tbps:
        HBM bandwidth used as the comparison point in Figure 4.
    global_latency_cycles:
        Global-memory latency used as the comparison point in Figure 4.
    max_cluster_size:
        Hardware limit on the number of thread blocks per cluster (16 on
        H100 with the non-portable opt-in).
    """

    bandwidth_tbps: Dict[int, float] = field(
        default_factory=lambda: dict(_DEFAULT_BANDWIDTH_TBPS)
    )
    latency_cycles: Dict[int, float] = field(
        default_factory=lambda: dict(_DEFAULT_LATENCY_CYCLES)
    )
    global_bandwidth_tbps: float = 3.0
    global_latency_cycles: float = 478.0
    max_cluster_size: int = 16

    def __post_init__(self) -> None:
        if not self.bandwidth_tbps or not self.latency_cycles:
            raise ValueError("bandwidth and latency tables must be non-empty")
        if set(self.bandwidth_tbps) != set(self.latency_cycles):
            raise ValueError("bandwidth and latency tables must share keys")
        if any(size < 2 for size in self.bandwidth_tbps):
            raise ValueError("DSM requires cluster sizes of at least 2")
        if self.max_cluster_size < max(self.bandwidth_tbps):
            raise ValueError("max_cluster_size below largest tabulated size")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def supported_cluster_sizes(self) -> Tuple[int, ...]:
        """Cluster sizes with tabulated measurements, ascending."""
        return tuple(sorted(self.bandwidth_tbps))

    def bandwidth(self, cluster_size: int) -> float:
        """DSM bandwidth in TB/s for a cluster of ``cluster_size`` blocks.

        Cluster size 1 means no inter-SM communication takes place; the
        query is answered with SMEM-local behaviour and therefore raises,
        because callers should not charge DSM traffic in that case.
        """
        self._check_size(cluster_size)
        return self._interpolate(self.bandwidth_tbps, cluster_size)

    def latency(self, cluster_size: int) -> float:
        """DSM one-way latency in cycles for a cluster of the given size."""
        self._check_size(cluster_size)
        return self._interpolate(self.latency_cycles, cluster_size)

    def bandwidth_gbps(self, cluster_size: int) -> float:
        """Convenience conversion of :meth:`bandwidth` to GB/s."""
        return self.bandwidth(cluster_size) * 1e3

    def speedup_vs_global(self, cluster_size: int) -> float:
        """Bandwidth advantage of DSM over global memory (>1 means faster)."""
        return self.bandwidth(cluster_size) / self.global_bandwidth_tbps

    def latency_advantage_vs_global(self, cluster_size: int) -> float:
        """Latency advantage over global memory (>1 means lower latency)."""
        return self.global_latency_cycles / self.latency(cluster_size)

    def is_profitable(self, cluster_size: int) -> bool:
        """Whether routing traffic through DSM beats a global-memory round
        trip for this cluster size.

        A round trip through global memory costs a write plus a read, so DSM
        is profitable whenever its bandwidth exceeds half the HBM bandwidth.
        """
        return self.bandwidth(cluster_size) > 0.5 * self.global_bandwidth_tbps

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_size(self, cluster_size: int) -> None:
        if cluster_size < 2:
            raise ValueError(
                "DSM traffic is only defined for cluster sizes >= 2 "
                f"(got {cluster_size})"
            )
        if cluster_size > self.max_cluster_size:
            raise ValueError(
                f"cluster size {cluster_size} exceeds the hardware limit "
                f"of {self.max_cluster_size}"
            )

    @staticmethod
    def _interpolate(table: Dict[int, float], size: int) -> float:
        """Piecewise-linear interpolation over the tabulated cluster sizes."""
        if size in table:
            return table[size]
        keys = sorted(table)
        if size <= keys[0]:
            return table[keys[0]]
        if size >= keys[-1]:
            return table[keys[-1]]
        for low, high in zip(keys, keys[1:]):
            if low < size < high:
                frac = (size - low) / (high - low)
                return table[low] + frac * (table[high] - table[low])
        raise AssertionError("unreachable")  # pragma: no cover
