"""Hardware models used by FlashFuser.

This subpackage provides analytical models of the GPU platforms the paper
targets.  Because the reproduction runs without physical GPU access, the
hardware model supplies everything downstream components need:

* per-level memory capacities and bandwidths (:mod:`repro.hardware.memory`),
* the DSM (distributed shared memory) bandwidth/latency curves as a function
  of thread-block-cluster size (:mod:`repro.hardware.dsm`, Figure 4 of the
  paper),
* cluster limits and MMA granularity (:mod:`repro.hardware.cluster`),
* full device presets such as the NVIDIA H100 SXM (:mod:`repro.hardware.spec`),
* a name-based device registry so ``device="a100"`` works everywhere a
  :class:`HardwareSpec` does (:mod:`repro.hardware.registry`).
"""

from repro.hardware.cluster import ClusterLimits
from repro.hardware.dsm import DsmModel
from repro.hardware.memory import MemoryHierarchy, MemoryLevel
from repro.hardware.registry import (
    device_name_of,
    get_device,
    list_devices,
    register_device,
    unregister_device,
)
from repro.hardware.spec import HardwareSpec, a100_spec, h100_spec

__all__ = [
    "ClusterLimits",
    "DsmModel",
    "MemoryHierarchy",
    "MemoryLevel",
    "HardwareSpec",
    "a100_spec",
    "h100_spec",
    "device_name_of",
    "get_device",
    "list_devices",
    "register_device",
    "unregister_device",
]
