"""Full device specifications.

:class:`HardwareSpec` collects everything FlashFuser needs to know about the
target GPU: compute throughput, SM count, per-tier memory capacities and
bandwidths, the DSM model, and cluster limits.  Presets are provided for the
NVIDIA H100 SXM (the paper's evaluation platform) and the A100 (used in the
introduction's memory-wall comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cluster import ClusterLimits
from repro.hardware.dsm import DsmModel
from repro.hardware.memory import MemoryHierarchy, MemoryLevel, MemoryLevelName


@dataclass(frozen=True)
class HardwareSpec:
    """Analytical description of one GPU.

    Parameters
    ----------
    name:
        Human-readable device name.
    num_sms:
        Number of streaming multiprocessors.
    peak_fp16_tflops:
        Peak FP16 tensor-core throughput in TFLOPS.
    clock_ghz:
        Boost clock in GHz, used to convert latency cycles to time.
    hierarchy:
        Memory hierarchy (fast-to-slow).
    dsm:
        DSM performance model (``None`` for GPUs without clusters).
    cluster_limits:
        Cluster-related hardware constants.
    bytes_per_element:
        Default datatype width in bytes (FP16 = 2).

    Example
    -------
    >>> spec = h100_spec()
    >>> spec.num_sms, spec.has_dsm
    (132, True)
    >>> spec.dsm_capacity_bytes(cluster_size=2) == spec.smem_capacity_bytes
    True
    """

    name: str
    num_sms: int
    peak_fp16_tflops: float
    clock_ghz: float
    hierarchy: MemoryHierarchy
    dsm: DsmModel | None
    cluster_limits: ClusterLimits = field(default_factory=ClusterLimits)
    bytes_per_element: int = 2

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.peak_fp16_tflops <= 0:
            raise ValueError("peak_fp16_tflops must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def has_dsm(self) -> bool:
        """Whether the device exposes distributed shared memory."""
        return self.dsm is not None and self.hierarchy.has(MemoryLevelName.DSM)

    @property
    def smem_capacity_bytes(self) -> int:
        """Per-SM shared-memory capacity in bytes."""
        return self.hierarchy.get(MemoryLevelName.SMEM).capacity_bytes

    @property
    def register_capacity_bytes(self) -> int:
        """Per-block register-file budget in bytes."""
        return self.hierarchy.get(MemoryLevelName.REGISTER).capacity_bytes

    @property
    def global_bandwidth_gbps(self) -> float:
        """HBM bandwidth in GB/s."""
        return self.hierarchy.get(MemoryLevelName.GLOBAL).bandwidth_gbps

    def dsm_capacity_bytes(self, cluster_size: int) -> int:
        """Aggregate DSM capacity usable by one cluster of the given size.

        DSM is simply the union of the participating SMs' shared memories,
        so the capacity grows linearly with the cluster size; the SMEM the
        block itself uses is excluded because it is accounted for at the
        SMEM tier.
        """
        if not self.has_dsm:
            return 0
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if cluster_size == 1:
            return 0
        return self.smem_capacity_bytes * (cluster_size - 1)

    def memory_hierarchy_for_cluster(self, cluster_size: int) -> MemoryHierarchy:
        """Return the hierarchy with the DSM tier resized for ``cluster_size``.

        The DSM tier's capacity and bandwidth both depend on the selected
        cluster size, so the dataflow analyzer asks for a hierarchy that is
        specialised to the candidate under evaluation.  For a cluster size of
        one, the DSM tier is removed entirely.
        """
        levels = []
        for level in self.hierarchy:
            if level.name != MemoryLevelName.DSM:
                levels.append(level)
                continue
            if cluster_size <= 1 or not self.has_dsm:
                continue
            assert self.dsm is not None
            levels.append(
                MemoryLevel(
                    name=MemoryLevelName.DSM,
                    capacity_bytes=self.dsm_capacity_bytes(cluster_size),
                    bandwidth_gbps=self.dsm.bandwidth_gbps(cluster_size),
                    latency_cycles=self.dsm.latency(cluster_size),
                )
            )
        return MemoryHierarchy(levels)

    def fingerprint(self) -> dict:
        """Stable description of everything that can change a fusion plan.

        The plan cache folds this into its keys so entries compiled for one
        device model are never served to another (capacities, bandwidths and
        cluster limits all steer the search).
        """
        return {
            "name": self.name,
            "num_sms": self.num_sms,
            "peak_fp16_tflops": self.peak_fp16_tflops,
            "clock_ghz": self.clock_ghz,
            "bytes_per_element": self.bytes_per_element,
            "has_dsm": self.has_dsm,
            "levels": [
                [
                    level.name,
                    level.capacity_bytes,
                    level.bandwidth_gbps,
                    level.latency_cycles,
                ]
                for level in self.hierarchy
            ],
            "cluster_limits": [
                self.cluster_limits.max_blocks_per_cluster,
                list(self.cluster_limits.allowed_dim_sizes),
                list(self.cluster_limits.mma_tile),
            ],
        }

    def time_per_flop_us(self) -> float:
        """Time in microseconds to execute one FP16 FLOP at peak."""
        return 1.0 / (self.peak_fp16_tflops * 1e6)

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds at the boost clock."""
        return cycles / (self.clock_ghz * 1e3)


# ---------------------------------------------------------------------- #
# Presets
# ---------------------------------------------------------------------- #
def h100_spec() -> HardwareSpec:
    """NVIDIA H100 SXM preset (the paper's evaluation platform).

    Capacities and bandwidths follow the paper and published
    microbenchmarks: 227 KB usable SMEM per SM, 64 K 32-bit registers per SM,
    3.35 TB/s HBM3, ~1000 TFLOPS FP16 tensor-core peak, 132 SMs.

    Returns a fresh :class:`HardwareSpec`; prefer
    :func:`repro.hardware.registry.get_device` (``get_device("h100")``) when
    a shared memoized instance is enough.

    Example
    -------
    >>> h100_spec().name
    'NVIDIA H100 SXM'
    """
    hierarchy = MemoryHierarchy(
        [
            MemoryLevel(
                name=MemoryLevelName.REGISTER,
                capacity_bytes=64 * 1024 * 4,  # 64K 32-bit registers per SM
                bandwidth_gbps=40_000.0,
                latency_cycles=1.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.SMEM,
                capacity_bytes=227 * 1024,
                bandwidth_gbps=20_000.0,
                latency_cycles=29.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.DSM,
                capacity_bytes=227 * 1024 * 15,  # placeholder, resized per cluster
                bandwidth_gbps=3_900.0,
                latency_cycles=181.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.L2,
                capacity_bytes=50 * 1024 * 1024,
                bandwidth_gbps=7_000.0,
                latency_cycles=270.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.GLOBAL,
                capacity_bytes=80 * 1024 * 1024 * 1024,
                bandwidth_gbps=3_350.0,
                latency_cycles=478.0,
            ),
        ]
    )
    return HardwareSpec(
        name="NVIDIA H100 SXM",
        num_sms=132,
        peak_fp16_tflops=989.0,
        clock_ghz=1.83,
        hierarchy=hierarchy,
        dsm=DsmModel(),
        cluster_limits=ClusterLimits(),
    )


def a100_spec() -> HardwareSpec:
    """NVIDIA A100 SXM preset (no DSM; used for memory-wall comparisons).

    Returns a fresh :class:`HardwareSpec` for the A100: 108 SMs, no
    thread-block clusters (``has_dsm`` is ``False``), so fusion is limited
    to a single SM's resources — the introduction's comparison point.

    Example
    -------
    >>> a100_spec().has_dsm
    False
    """
    hierarchy = MemoryHierarchy(
        [
            MemoryLevel(
                name=MemoryLevelName.REGISTER,
                capacity_bytes=64 * 1024 * 4,
                bandwidth_gbps=20_000.0,
                latency_cycles=1.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.SMEM,
                capacity_bytes=164 * 1024,
                bandwidth_gbps=15_000.0,
                latency_cycles=29.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.L2,
                capacity_bytes=40 * 1024 * 1024,
                bandwidth_gbps=5_000.0,
                latency_cycles=250.0,
            ),
            MemoryLevel(
                name=MemoryLevelName.GLOBAL,
                capacity_bytes=80 * 1024 * 1024 * 1024,
                bandwidth_gbps=2_039.0,
                latency_cycles=500.0,
            ),
        ]
    )
    return HardwareSpec(
        name="NVIDIA A100 SXM",
        num_sms=108,
        peak_fp16_tflops=312.0,
        clock_ghz=1.41,
        hierarchy=hierarchy,
        dsm=None,
        cluster_limits=ClusterLimits(max_blocks_per_cluster=1, allowed_dim_sizes=(1,)),
    )
