"""Device registry: resolve :class:`HardwareSpec` objects by name.

Everywhere the compiler stack accepts a device, a registered *name* works
too: ``FuserConfig(device="a100")``, ``FlashFuser(device="h100")``, the
experiment drivers' ``--device`` flag.  The registry maps lower-cased names
to specs (or zero-argument spec factories, resolved lazily and memoized so
every ``get_device("h100")`` call shares one immutable instance).

The built-in presets (``h100``, ``a100``) are registered at import time;
downstream code adds its own targets with :func:`register_device` — e.g. a
de-rated part built with ``dataclasses.replace`` on an existing preset — and
experiments can then sweep :func:`list_devices` by name.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Union

from repro.analysis.locks import make_lock
from repro.hardware.spec import HardwareSpec, a100_spec, h100_spec

#: A registry value: a ready spec, or a zero-argument factory producing one.
DeviceEntry = Union[HardwareSpec, Callable[[], HardwareSpec]]

#: The name resolved when no device is specified anywhere.
DEFAULT_DEVICE = "h100"

_REGISTRY: Dict[str, DeviceEntry] = {}
_RESOLVED: Dict[str, HardwareSpec] = {}
_LOCK = make_lock("device-registry", reentrant=True)


def _normalize(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise ValueError("device name must be a non-empty string")
    return name.strip().lower()


def register_device(
    name: str, spec: DeviceEntry, overwrite: bool = False
) -> None:
    """Register a device under ``name`` (case-insensitive).

    ``spec`` is a :class:`HardwareSpec` or a zero-argument factory; factories
    are resolved lazily on first :func:`get_device` and memoized.  Registering
    an already-taken name raises unless ``overwrite=True``.

    Example
    -------
    >>> import dataclasses
    >>> derated = dataclasses.replace(
    ...     get_device("h100"), name="H100 derated", peak_fp16_tflops=700.0)
    >>> register_device("h100-derated", derated)
    >>> get_device("H100-DERATED").peak_fp16_tflops   # case-insensitive
    700.0
    >>> unregister_device("h100-derated")
    """
    key = _normalize(name)
    if not isinstance(spec, HardwareSpec) and not callable(spec):
        raise TypeError(
            "spec must be a HardwareSpec or a zero-argument factory, "
            f"got {type(spec).__name__}"
        )
    with _LOCK:
        if key in _REGISTRY and not overwrite:
            raise ValueError(
                f"device {name!r} is already registered; pass overwrite=True "
                "to replace it"
            )
        _REGISTRY[key] = spec
        _RESOLVED.pop(key, None)


def unregister_device(name: str) -> None:
    """Remove a registered device (raises :class:`KeyError` if absent)."""
    key = _normalize(name)
    with _LOCK:
        if key not in _REGISTRY:
            raise KeyError(f"device {name!r} is not registered")
        del _REGISTRY[key]
        _RESOLVED.pop(key, None)


def get_device(
    device: Union[str, HardwareSpec, None] = None,
) -> HardwareSpec:
    """Resolve a device name or spec to a :class:`HardwareSpec`.

    Specs pass through unchanged; names are looked up case-insensitively;
    ``None`` resolves the default device (``"h100"``).  Repeated lookups of
    the same name return the same memoized instance.

    Example
    -------
    >>> get_device("h100").name
    'NVIDIA H100 SXM'
    >>> get_device("h100") is get_device("H100")
    True
    """
    if device is None:
        device = DEFAULT_DEVICE
    if isinstance(device, HardwareSpec):
        return device
    key = _normalize(device)
    with _LOCK:
        spec = _RESOLVED.get(key)
        if spec is not None:
            return spec
        entry = _REGISTRY.get(key)
        if entry is None:
            raise KeyError(
                f"unknown device {device!r}; registered devices: {list_devices()}"
            )
        spec = entry() if not isinstance(entry, HardwareSpec) else entry
        if not isinstance(spec, HardwareSpec):
            raise TypeError(
                f"device factory for {device!r} returned "
                f"{type(spec).__name__}, expected HardwareSpec"
            )
        _RESOLVED[key] = spec
        return spec


def list_devices() -> List[str]:
    """All registered device names, sorted.

    Example
    -------
    >>> {"a100", "h100"} <= set(list_devices())   # built-in presets
    True
    """
    with _LOCK:
        return sorted(_REGISTRY)


def device_name_of(spec: HardwareSpec) -> Optional[str]:
    """The registered name of ``spec``, or ``None`` if it is unregistered.

    Identity is checked first (the common case: a spec obtained from
    :func:`get_device`); otherwise the device fingerprint is compared, so a
    freshly constructed ``h100_spec()`` still maps back to ``"h100"``.
    """
    with _LOCK:
        for key, resolved in _RESOLVED.items():
            if resolved is spec:
                return key
    fingerprint = spec.fingerprint()
    for key in list_devices():
        if get_device(key).fingerprint() == fingerprint:
            return key
    return None


register_device("h100", h100_spec)
register_device("a100", a100_spec)
