"""Thread-block-cluster limits and MMA granularity.

The fusion search space is bounded by a handful of hardware constants:

* the maximum number of thread blocks a cluster may contain (16 on H100 with
  the non-portable size opt-in, 8 portably),
* the minimum tile granularity of one tensor-core MMA instruction
  (16x16x16 for FP16 on Hopper),
* the set of per-dimension cluster sizes the search considers
  ({1, 2, 4, 8, 16} in the paper).

These constants feed pruning Rule 2 (cluster-size constraint) and the initial
search-space construction of Section IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ClusterLimits:
    """Hardware limits governing thread-block clusters.

    Parameters
    ----------
    max_blocks_per_cluster:
        Upper bound on the product of per-dimension cluster sizes for any
        single GEMM (Rule 2).
    allowed_dim_sizes:
        Per-dimension cluster sizes the search may pick from.
    mma_tile:
        Minimum (m, n, k) granularity of a tensor-core MMA operation; block
        tile sizes must be multiples of these.
    """

    max_blocks_per_cluster: int = 16
    allowed_dim_sizes: Tuple[int, ...] = (1, 2, 4, 8, 16)
    mma_tile: Tuple[int, int, int] = (16, 16, 16)

    def __post_init__(self) -> None:
        if self.max_blocks_per_cluster < 1:
            raise ValueError("max_blocks_per_cluster must be >= 1")
        if not self.allowed_dim_sizes:
            raise ValueError("allowed_dim_sizes must be non-empty")
        if any(size < 1 for size in self.allowed_dim_sizes):
            raise ValueError("cluster dimension sizes must be >= 1")
        if len(self.mma_tile) != 3 or any(v < 1 for v in self.mma_tile):
            raise ValueError("mma_tile must be three positive integers")

    @property
    def min_block_m(self) -> int:
        """Minimum block tile size along M (one MMA)."""
        return self.mma_tile[0]

    @property
    def min_block_n(self) -> int:
        """Minimum block tile size along N (one MMA)."""
        return self.mma_tile[1]

    @property
    def min_block_k(self) -> int:
        """Minimum block tile size along K (one MMA)."""
        return self.mma_tile[2]

    def cluster_product_ok(self, *dims: int) -> bool:
        """Whether a set of per-dimension cluster sizes fits the hardware.

        This implements the core of pruning Rule 2: the product of the
        cluster dimensions participating in one GEMM must not exceed
        ``max_blocks_per_cluster``.
        """
        product = 1
        for dim in dims:
            if dim < 1:
                raise ValueError("cluster dimensions must be >= 1")
            product *= dim
        return product <= self.max_blocks_per_cluster

    def dim_size_allowed(self, size: int) -> bool:
        """Whether ``size`` is one of the cluster sizes the search considers."""
        return size in self.allowed_dim_sizes
