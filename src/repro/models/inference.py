"""End-to-end inference latency model (the SGLang substitute).

The end-to-end experiments (Figures 16b and 17) compare a serving framework
whose FFN layers run as standard unfused kernels against the same framework
with FlashFuser's fused FFN kernels dropped in.  Everything outside the FFN
(attention, norms, residuals, scheduler overhead) is identical between the
two, which is why the end-to-end speedup is an Amdahl's-law combination of
the FFN time share and the FFN kernel speedup.

The fused side is produced by the **graph compiler**: each model's FFN block
is materialised as an operator graph, chains are extracted automatically and
compiled through the plan-cache-backed :class:`~repro.api.FlashFuser` stack
(:func:`repro.graphs.compile_graph`), and the resulting
:class:`~repro.graphs.plan.ModelPlan` supplies the fused FFN time — the
end-to-end numbers rest on the compiler, not on hand-wired chain specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api import FlashFuser
from repro.graphs.plan import ModelPlan, compile_graph
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.workloads import ModelConfig, get_model
from repro.models.transformer import TransformerTimingModel


@dataclass(frozen=True)
class E2EConfig:
    """One end-to-end measurement point."""

    model_name: str
    seq_len: int = 256
    batch: int = 1

    @property
    def tokens(self) -> int:
        """Total tokens processed per forward pass."""
        return self.seq_len * self.batch


@dataclass
class InferenceResult:
    """Baseline-vs-FlashFuser latency of one configuration."""

    config: E2EConfig
    baseline_ms: float
    flashfuser_ms: float
    ffn_kernel_speedup: float
    ffn_time_fraction: float
    #: The graph-compiler plan behind the fused FFN time (``None`` only for
    #: results deserialized from older records).
    ffn_plan: Optional[ModelPlan] = None

    @property
    def e2e_speedup(self) -> float:
        """End-to-end speedup from swapping in the fused FFN kernels."""
        return self.baseline_ms / self.flashfuser_ms if self.flashfuser_ms > 0 else 0.0

    @property
    def fused_chains(self) -> int:
        """Chains the graph compiler extracted and fused for the FFN block."""
        return len(self.ffn_plan.fused_segments) if self.ffn_plan is not None else 0


class InferenceLatencyModel:
    """Serving-framework latency with and without FlashFuser FFN kernels.

    Parameters
    ----------
    device:
        Hardware model.
    framework_overhead_fraction:
        Scheduler/runtime overhead added on top of kernel time (SGLang's
        batching and sampling machinery), applied equally to both systems.
    """

    def __init__(
        self,
        device: Optional[HardwareSpec] = None,
        framework_overhead_fraction: float = 0.05,
        compiler: Optional[FlashFuser] = None,
    ) -> None:
        self.device = device or h100_spec()
        self.framework_overhead_fraction = framework_overhead_fraction
        self._owns_compiler = compiler is None
        self.compiler = compiler or FlashFuser(device=self.device)
        self._plan_cache: Dict[str, ModelPlan] = {}

    def close(self) -> None:
        """Release the internally owned compiler's worker pools (idempotent).

        Graph compilation submits chains through the compiler's thread pool,
        so long-lived processes creating many latency models should close
        them (or use them as context managers).  A caller-provided compiler
        is left untouched.
        """
        if self._owns_compiler:
            self.compiler.close()

    def __enter__(self) -> "InferenceLatencyModel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def evaluate(self, config: E2EConfig) -> InferenceResult:
        """Latency of one model/sequence/batch point under both systems."""
        model = get_model(config.model_name)
        timing = TransformerTimingModel(
            model, device=self.device, compiler=self.compiler
        )

        baseline_layer = timing.layer_breakdown(config.seq_len, config.batch)
        plan = self._ffn_plan(model, timing, config)
        fused_ffn_us = plan.time_us
        flashfuser_layer = timing.layer_breakdown(
            config.seq_len, config.batch, ffn_time_us=fused_ffn_us
        )

        overhead = 1.0 + self.framework_overhead_fraction
        baseline_ms = baseline_layer.total_us * model.num_layers * overhead / 1e3
        flashfuser_ms = flashfuser_layer.total_us * model.num_layers * overhead / 1e3

        ffn_speedup = (
            baseline_layer.ffn_us / fused_ffn_us if fused_ffn_us > 0 else float("inf")
        )
        return InferenceResult(
            config=config,
            baseline_ms=baseline_ms,
            flashfuser_ms=flashfuser_ms,
            ffn_kernel_speedup=ffn_speedup,
            ffn_time_fraction=baseline_layer.ffn_fraction,
            ffn_plan=plan,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ffn_plan(
        self, model: ModelConfig, timing: TransformerTimingModel, config: E2EConfig
    ) -> ModelPlan:
        """Graph-compiler plan for the model's FFN block (memoized on M).

        The FFN operator graph goes through chain extraction and the shared
        compiler, so repeated evaluations of the same (model, M) point reuse
        the in-process memo and differently named but identically shaped
        chains hit the plan cache.  A chain the search cannot fuse degrades
        inside the plan to its unfused kernel sequence, preserving the old
        graceful-fallback behaviour.
        """
        key = f"{model.name}:{config.tokens}"
        if key not in self._plan_cache:
            self._plan_cache[key] = compile_graph(
                model.ffn_graph(config.seq_len, config.batch),
                compiler=self.compiler,
                simulator=timing.simulator,
            )
        return self._plan_cache[key]
