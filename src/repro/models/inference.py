"""End-to-end inference latency model (the SGLang substitute).

The end-to-end experiments (Figures 16b and 17) compare a serving framework
whose FFN layers run as standard unfused kernels against the same framework
with FlashFuser's fused FFN kernels dropped in.  Everything outside the FFN
(attention, norms, residuals, scheduler overhead) is identical between the
two, which is why the end-to-end speedup is an Amdahl's-law combination of
the FFN time share and the FFN kernel speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api import FlashFuser
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.workloads import ModelConfig, get_model
from repro.models.transformer import TransformerTimingModel


@dataclass(frozen=True)
class E2EConfig:
    """One end-to-end measurement point."""

    model_name: str
    seq_len: int = 256
    batch: int = 1

    @property
    def tokens(self) -> int:
        """Total tokens processed per forward pass."""
        return self.seq_len * self.batch


@dataclass
class InferenceResult:
    """Baseline-vs-FlashFuser latency of one configuration."""

    config: E2EConfig
    baseline_ms: float
    flashfuser_ms: float
    ffn_kernel_speedup: float
    ffn_time_fraction: float

    @property
    def e2e_speedup(self) -> float:
        """End-to-end speedup from swapping in the fused FFN kernels."""
        return self.baseline_ms / self.flashfuser_ms if self.flashfuser_ms > 0 else 0.0


class InferenceLatencyModel:
    """Serving-framework latency with and without FlashFuser FFN kernels.

    Parameters
    ----------
    device:
        Hardware model.
    framework_overhead_fraction:
        Scheduler/runtime overhead added on top of kernel time (SGLang's
        batching and sampling machinery), applied equally to both systems.
    """

    def __init__(
        self,
        device: Optional[HardwareSpec] = None,
        framework_overhead_fraction: float = 0.05,
        compiler: Optional[FlashFuser] = None,
    ) -> None:
        self.device = device or h100_spec()
        self.framework_overhead_fraction = framework_overhead_fraction
        self.compiler = compiler or FlashFuser(device=self.device)
        self._ffn_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def evaluate(self, config: E2EConfig) -> InferenceResult:
        """Latency of one model/sequence/batch point under both systems."""
        model = get_model(config.model_name)
        timing = TransformerTimingModel(model, device=self.device)

        baseline_layer = timing.layer_breakdown(config.seq_len, config.batch)
        fused_ffn_us = self._fused_ffn_time_us(model, config)
        flashfuser_layer = timing.layer_breakdown(
            config.seq_len, config.batch, ffn_time_us=fused_ffn_us
        )

        overhead = 1.0 + self.framework_overhead_fraction
        baseline_ms = baseline_layer.total_us * model.num_layers * overhead / 1e3
        flashfuser_ms = flashfuser_layer.total_us * model.num_layers * overhead / 1e3

        ffn_speedup = (
            baseline_layer.ffn_us / fused_ffn_us if fused_ffn_us > 0 else float("inf")
        )
        return InferenceResult(
            config=config,
            baseline_ms=baseline_ms,
            flashfuser_ms=flashfuser_ms,
            ffn_kernel_speedup=ffn_speedup,
            ffn_time_fraction=baseline_layer.ffn_fraction,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _fused_ffn_time_us(self, model: ModelConfig, config: E2EConfig) -> float:
        """Simulated time of the FlashFuser-compiled FFN chain (cached)."""
        chain = model.ffn_chain(config.seq_len, config.batch)
        key = f"{model.name}:{chain.m}"
        if key not in self._ffn_cache:
            try:
                compiled = self.compiler.compile(chain)
                self._ffn_cache[key] = compiled.time_us
            except Exception:
                # If no fused plan exists (it always should), fall back to
                # the unfused FFN time so the comparison degrades gracefully.
                timing = TransformerTimingModel(model, device=self.device)
                self._ffn_cache[key] = timing.simulator.simulate_kernels(
                    timing.ffn_kernels(config.seq_len, config.batch)
                ).time_us
        return self._ffn_cache[key]
