"""End-to-end model layer: transformer timing, roofline, inference latency.

These modules stand in for the paper's end-to-end measurements (PyTorch
profiling for Table I, SGLang serving for Figure 17, large-model roofline and
batch sweeps for Figure 16): a transformer layer is decomposed into its
kernels, each kernel is charged on the same performance simulator the rest of
the reproduction uses, and FlashFuser's fused FFN kernels can be swapped in
to obtain end-to-end speedups.
"""

from repro.models.inference import E2EConfig, InferenceLatencyModel, InferenceResult
from repro.models.roofline import RooflinePoint, roofline_analysis, roofline_performance
from repro.models.transformer import LayerTimeBreakdown, TransformerTimingModel

__all__ = [
    "E2EConfig",
    "InferenceLatencyModel",
    "InferenceResult",
    "RooflinePoint",
    "roofline_analysis",
    "roofline_performance",
    "LayerTimeBreakdown",
    "TransformerTimingModel",
]
