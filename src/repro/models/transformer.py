"""Transformer layer timing model.

One transformer layer is decomposed into the kernels an inference framework
launches: QKV projection, attention score/context GEMMs, output projection,
the FFN GEMM chain, and the surrounding memory-bound operators (layer norms,
residual adds, softmax).  Each kernel is charged on the performance
simulator, which yields the per-component time breakdown behind Table I
(FFN share of execution time) and the end-to-end models of Figures 16-17.

The *fused* FFN component is produced by the graph compiler: the model's FFN
block is materialised as an operator graph and routed through
:func:`repro.graphs.compile_graph`, so the end-to-end numbers rest on
automatic chain extraction rather than a hand-wired chain spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.workloads import ModelConfig
from repro.sim.engine import KernelLaunch, PerformanceSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.api import FlashFuser
    from repro.graphs.plan import ModelPlan


@dataclass
class LayerTimeBreakdown:
    """Per-component time of one transformer layer, in microseconds."""

    attention_us: float
    ffn_us: float
    other_us: float

    @property
    def total_us(self) -> float:
        """Total layer time."""
        return self.attention_us + self.ffn_us + self.other_us

    @property
    def ffn_fraction(self) -> float:
        """Share of layer time spent in the FFN (Table I's metric)."""
        return self.ffn_us / self.total_us if self.total_us > 0 else 0.0


class TransformerTimingModel:
    """Kernel-level timing of transformer inference.

    Parameters
    ----------
    model:
        Model architecture (hidden size, FFN size, layer count, ...).
    device:
        Hardware model.
    simulator:
        Simulator charged for every kernel; defaults to library-grade
        (PyTorch-like) kernel efficiency, since Table I profiles standard
        framework execution.
    compiler:
        The :class:`~repro.api.FlashFuser` behind :meth:`ffn_plan`'s fused
        FFN compilation.  Lazily constructed for this model's device when
        first needed.
    """

    def __init__(
        self,
        model: ModelConfig,
        device: Optional[HardwareSpec] = None,
        simulator: Optional[PerformanceSimulator] = None,
        compiler: Optional["FlashFuser"] = None,
    ) -> None:
        self.model = model
        self.device = device or h100_spec()
        self.simulator = simulator or PerformanceSimulator.library_grade(self.device)
        self._compiler = compiler
        self._owns_compiler = False

    # ------------------------------------------------------------------ #
    # Kernel decompositions
    # ------------------------------------------------------------------ #
    def attention_kernels(self, seq_len: int, batch: int = 1) -> List[KernelLaunch]:
        """Kernels of the attention block (projections + attention itself)."""
        hidden = self.model.hidden
        tokens = seq_len * batch
        itemsize = 2
        qkv_flops = 2 * tokens * hidden * 3 * hidden
        qkv_bytes = (tokens * hidden + 3 * hidden * hidden + tokens * 3 * hidden) * itemsize
        score_flops = 2 * batch * self.model.num_heads * seq_len * seq_len * self.model.head_dim
        score_bytes = (2 * tokens * hidden + batch * self.model.num_heads * seq_len * seq_len) * itemsize
        context_flops = score_flops
        context_bytes = score_bytes
        out_flops = 2 * tokens * hidden * hidden
        out_bytes = (tokens * hidden * 2 + hidden * hidden) * itemsize
        return [
            KernelLaunch("qkv_proj", qkv_flops, qkv_bytes),
            KernelLaunch("attn_score", score_flops, score_bytes),
            KernelLaunch("attn_context", context_flops, context_bytes),
            KernelLaunch("out_proj", out_flops, out_bytes),
        ]

    def ffn_kernels(self, seq_len: int, batch: int = 1) -> List[KernelLaunch]:
        """Kernels of the FFN block under standard (unfused) execution."""
        from repro.baselines.base import unfused_launches

        chain = self.model.ffn_chain(seq_len, batch)
        return unfused_launches(chain)

    # ------------------------------------------------------------------ #
    # Graph-compiled FFN
    # ------------------------------------------------------------------ #
    @property
    def compiler(self) -> "FlashFuser":
        """The compiler behind :meth:`ffn_plan` (lazily constructed)."""
        if self._compiler is None:
            from repro.api import FlashFuser

            self._compiler = FlashFuser(device=self.device)
            self._owns_compiler = True
        return self._compiler

    def close(self) -> None:
        """Release a lazily constructed compiler's worker pools (idempotent).

        A compiler passed in by the caller is left untouched.
        """
        if self._owns_compiler and self._compiler is not None:
            self._compiler.close()

    def __enter__(self) -> "TransformerTimingModel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def ffn_plan(self, seq_len: int, batch: int = 1) -> "ModelPlan":
        """The FFN block compiled end to end by the graph compiler.

        The model's FFN operator graph goes through chain extraction and the
        full compile stack (plan cache included); residual operators — none,
        for a pure FFN graph — are charged on this timing model's simulator.
        The plan's time is what :meth:`layer_breakdown` substitutes for the
        FFN component on the FlashFuser side of the end-to-end comparison.
        """
        from repro.graphs.plan import compile_graph

        return compile_graph(
            self.model.ffn_graph(seq_len, batch),
            compiler=self.compiler,
            simulator=self.simulator,
        )

    def other_kernels(self, seq_len: int, batch: int = 1) -> List[KernelLaunch]:
        """Memory-bound glue: two layer norms and two residual adds."""
        tokens = seq_len * batch
        hidden_bytes = tokens * self.model.hidden * 2
        return [
            KernelLaunch("layernorm_1", tokens * self.model.hidden * 5, 2 * hidden_bytes),
            KernelLaunch("residual_1", tokens * self.model.hidden, 3 * hidden_bytes),
            KernelLaunch("layernorm_2", tokens * self.model.hidden * 5, 2 * hidden_bytes),
            KernelLaunch("residual_2", tokens * self.model.hidden, 3 * hidden_bytes),
        ]

    # ------------------------------------------------------------------ #
    # Timings
    # ------------------------------------------------------------------ #
    def layer_breakdown(
        self,
        seq_len: int,
        batch: int = 1,
        ffn_time_us: Optional[float] = None,
    ) -> LayerTimeBreakdown:
        """Time breakdown of one layer.

        ``ffn_time_us`` overrides the FFN component, which is how FlashFuser's
        fused kernel time is substituted into the end-to-end model.
        """
        attention = self.simulator.simulate_kernels(self.attention_kernels(seq_len, batch))
        other = self.simulator.simulate_kernels(self.other_kernels(seq_len, batch))
        if ffn_time_us is None:
            ffn = self.simulator.simulate_kernels(self.ffn_kernels(seq_len, batch)).time_us
        else:
            ffn = ffn_time_us
        return LayerTimeBreakdown(
            attention_us=attention.time_us,
            ffn_us=ffn,
            other_us=other.time_us,
        )

    def model_time_us(self, seq_len: int, batch: int = 1, ffn_time_us: Optional[float] = None) -> float:
        """Total model latency (all layers)."""
        layer = self.layer_breakdown(seq_len, batch, ffn_time_us=ffn_time_us)
        return layer.total_us * self.model.num_layers

    def ffn_time_percentage(self, seq_len: int, batch: int = 1) -> float:
        """Percentage of execution time spent in FFN layers (Table I)."""
        return self.layer_breakdown(seq_len, batch).ffn_fraction * 100.0
