"""Roofline analysis (Figure 16a).

The roofline model bounds attainable performance by
``min(peak_compute, arithmetic_intensity * memory_bandwidth)``.  Figure 16a
places the FFN kernels of large models on this curve to show they are
compute-bound at large batch sizes, which explains why the kernel-level
speedup shrinks there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.graph import GemmChainSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the roofline."""

    name: str
    arithmetic_intensity: float
    attainable_tflops: float
    compute_bound: bool


def roofline_performance(
    arithmetic_intensity: float,
    device: Optional[HardwareSpec] = None,
) -> float:
    """Attainable TFLOPS at a given arithmetic intensity (FLOP/byte)."""
    device = device or h100_spec()
    if arithmetic_intensity < 0:
        raise ValueError("arithmetic intensity must be non-negative")
    memory_bound = arithmetic_intensity * device.global_bandwidth_gbps / 1e3
    return min(device.peak_fp16_tflops, memory_bound)


def ridge_point(device: Optional[HardwareSpec] = None) -> float:
    """Arithmetic intensity at which compute and bandwidth rooflines meet."""
    device = device or h100_spec()
    return device.peak_fp16_tflops * 1e3 / device.global_bandwidth_gbps


def roofline_analysis(
    chains: Sequence[GemmChainSpec],
    device: Optional[HardwareSpec] = None,
) -> List[RooflinePoint]:
    """Place each chain on the roofline using its fused-traffic intensity."""
    device = device or h100_spec()
    ridge = ridge_point(device)
    points = []
    for chain in chains:
        intensity = chain.arithmetic_intensity()
        points.append(
            RooflinePoint(
                name=chain.name,
                arithmetic_intensity=intensity,
                attainable_tflops=roofline_performance(intensity, device),
                compute_bound=intensity >= ridge,
            )
        )
    return points
