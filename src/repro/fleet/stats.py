"""Fleet-level metrics aggregation.

:class:`FleetStats` is the one observable view of a running
:class:`~repro.fleet.router.ServingFleet`: router counters (routed,
rejected, retried, failovers, restarts, broadcast activity, per-worker
queue depths) plus every worker's
:class:`~repro.runtime.stats.ServingStats` — merged into one fleet-wide
serving aggregate via :meth:`ServingStats.merge` rather than ad-hoc
dictionary math, with the raw per-worker payloads preserved alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.runtime.stats import ServingStats

#: Pinned key order of the ``router`` block in :meth:`FleetStats.to_dict`.
ROUTER_KEYS = (
    "routed",
    "rejected",
    "retried",
    "failovers",
    "restarts",
    "broadcasts",
    "broadcast_warms",
    "duplicates",
    "inflight",
    "queue_depth",
)


@dataclass
class FleetStats:
    """One snapshot of a serving fleet's health and traffic.

    Parameters
    ----------
    workers:
        Configured worker count.
    alive:
        Workers whose processes were alive at snapshot time.
    router:
        Router counters (see :data:`ROUTER_KEYS`) including per-worker
        queue depths at snapshot time.
    per_worker:
        Raw per-worker payloads (serving stats, model stats, cache stats,
        broadcast warms), keyed by worker id as a string.

    The fleet-wide ``serving`` aggregate is *derived*: every worker's
    kernel-level :class:`ServingStats` is rebuilt from its payload and
    folded together with :meth:`ServingStats.merge`, so the fleet view and
    the per-worker views can never disagree about totals.

    Example
    -------
    >>> stats = FleetStats(
    ...     workers=1, alive=1,
    ...     router={"routed": 2, "rejected": 0},
    ...     per_worker={"0": {"broadcast_warms": 0}},
    ... )
    >>> stats.to_dict()["workers"], stats.to_dict()["router"]["routed"]
    (1, 2)
    """

    workers: int
    alive: int
    router: Dict[str, object] = field(default_factory=dict)
    per_worker: Dict[str, Dict[str, object]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def merged_serving(self) -> ServingStats:
        """All workers' kernel-level serving stats, merged into one sink."""
        merged = ServingStats()
        for payload in self.per_worker.values():
            serving = payload.get("serving")
            if isinstance(serving, Mapping):
                merged.merge(ServingStats.from_dict(serving))
        return merged

    def merged_models(self) -> ServingStats:
        """All workers' model-level serving stats, merged into one sink."""
        merged = ServingStats()
        for payload in self.per_worker.values():
            models = payload.get("models")
            if isinstance(models, Mapping):
                merged.merge(ServingStats.from_dict(models))
        return merged

    @property
    def broadcast_warms(self) -> int:
        """Table entries adopted via the broadcast channel, fleet-wide."""
        return sum(
            int(payload.get("broadcast_warms", 0))
            for payload in self.per_worker.values()
        )

    @property
    def restarts(self) -> int:
        """Worker processes restarted by the health monitor."""
        return int(self.router.get("restarts", 0))

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a pinned top-level key order.

        Key order is ``workers``, ``alive``, ``router`` (its keys in
        :data:`ROUTER_KEYS` order), ``serving`` (the merged kernel-level
        aggregate), ``models`` (the merged model-level aggregate) and
        ``per_worker`` (sorted by worker id) — so two snapshots of equal
        state serialize identically and fleet artifacts diff cleanly.
        """
        router = {
            key: self.router[key] for key in ROUTER_KEYS if key in self.router
        }
        for key in sorted(set(self.router) - set(ROUTER_KEYS)):
            router[key] = self.router[key]
        if isinstance(router.get("queue_depth"), Mapping):
            router["queue_depth"] = {
                key: router["queue_depth"][key]
                for key in sorted(router["queue_depth"], key=int)
            }
        return {
            "workers": self.workers,
            "alive": self.alive,
            "router": router,
            "serving": self.merged_serving().to_dict(),
            "models": self.merged_models().to_dict(),
            "per_worker": {
                key: self.per_worker[key]
                for key in sorted(self.per_worker, key=int)
            },
        }
