"""Fleet-deployment configuration.

:class:`FleetConfig` follows the :class:`~repro.config.FuserConfig` /
:class:`~repro.bench.config.BenchConfig` conventions — one frozen value
object carrying every knob of a multi-worker serving deployment, with
``replace()`` derivation and a ``to_dict()``/``from_dict()`` round-trip — so
a whole fleet (worker count, shared cache namespace, admission watermark,
failover budget, compiler knobs) is described by a single serializable
value that also crosses the process boundary to the workers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace as _dataclass_replace
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.config import FuserConfig
from repro.runtime.server import DEFAULT_M_BINS

#: Process start methods the fleet accepts.  ``spawn`` is the default —
#: worker processes are long-lived and the router is multi-threaded, which
#: makes forking a threaded parent hazardous.
START_METHODS: Tuple[str, ...] = ("spawn", "fork", "forkserver")


@dataclass(frozen=True)
class FleetConfig:
    """Every knob of one serving-fleet deployment, as one frozen value.

    Parameters
    ----------
    workers:
        Worker processes the fleet runs.  Each worker hosts a real
        :class:`~repro.runtime.server.KernelServer` /
        :class:`~repro.graphs.server.ModelServer` pair.
    cache_dir:
        Shared on-disk :class:`~repro.runtime.cache.PlanCache` namespace.
        Every worker points its plan cache here, which is what makes one
        worker's cold compile reusable by every replica.  ``None`` lets the
        fleet create (and own) a temporary directory for its lifetime.
    m_bins:
        M bins of each worker's kernel server.
    device, top_k, include_dsm, max_tile, transfer:
        Compiler knobs forwarded to each worker's
        :class:`~repro.config.FuserConfig`.  Workers always run the serial
        search engine — the fleet itself is the parallelism.  With
        ``transfer`` enabled, a worker's cold compile of a new M warm-starts
        from the nearest shape in the shared plan cache (source
        ``compiled:transfer``).
    watermark:
        Admission-control watermark: when the aggregate queue depth
        (dispatched-but-unfinished requests across all workers) reaches
        this, new requests are rejected with a Retry-After hint instead of
        queuing without bound.
    affinity_slack:
        How much deeper (in queued requests) the affinity-preferred worker
        may be than the least-loaded worker before the router overrides
        affinity and rebalances to the least-loaded one.
    max_retries:
        Failover budget: how many times one request may be re-dispatched
        after a worker death before it is failed back to the caller.
    retry_after_s:
        Base Retry-After hint attached to rejected requests; the router
        scales it with the amount of excess queue depth.
    health_interval_s:
        Period of the health monitor's liveness sweep (dead workers are
        restarted and their in-flight requests failed over).
    broadcast:
        Enable the warm-plan broadcast channel (one worker's cold compile
        warms every replica's tables through the shared cache).
    start_method:
        ``multiprocessing`` start method for worker processes.
    request_timeout_s:
        Upper bound one request may wait for a worker answer (covers
        retries); exceeding it fails the request rather than hanging.

    Example
    -------
    >>> config = FleetConfig(workers=4, watermark=32)
    >>> FleetConfig.from_dict(config.to_dict()) == config
    True
    >>> config.replace(workers=2).workers
    2
    """

    workers: int = 2
    cache_dir: Optional[Union[str, os.PathLike]] = None
    m_bins: Tuple[int, ...] = DEFAULT_M_BINS
    device: str = "h100"
    top_k: int = 11
    include_dsm: bool = True
    max_tile: int = 256
    transfer: bool = False
    watermark: int = 64
    affinity_slack: int = 2
    max_retries: int = 2
    retry_after_s: float = 0.05
    health_interval_s: float = 0.2
    broadcast: bool = True
    start_method: str = "spawn"
    request_timeout_s: float = 300.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        object.__setattr__(self, "m_bins", tuple(self.m_bins))
        if not self.m_bins or any(m <= 0 for m in self.m_bins):
            raise ValueError("m_bins must be non-empty and positive")
        if self.watermark < 1:
            raise ValueError("watermark must be >= 1")
        if self.affinity_slack < 0:
            raise ValueError("affinity_slack must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be positive")
        if self.start_method not in START_METHODS:
            raise ValueError(
                f"unknown start_method {self.start_method!r}; choose from "
                f"{START_METHODS}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def replace(self, **overrides: object) -> "FleetConfig":
        """A copy with ``overrides`` applied (validated like construction)."""
        if not overrides:
            return self
        return _dataclass_replace(self, **overrides)

    def fuser_config(self, cache_dir: Optional[str] = None) -> FuserConfig:
        """The per-worker :class:`FuserConfig` (``cache_dir`` resolved).

        ``cache_dir`` overrides the config's own directory — the fleet
        passes the concrete path here when it created a temporary shared
        namespace on the config's behalf.
        """
        directory = cache_dir if cache_dir is not None else self.cache_dir
        return FuserConfig(
            device=self.device,
            top_k=self.top_k,
            include_dsm=self.include_dsm,
            max_tile=self.max_tile,
            cache=directory,
            transfer=self.transfer,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a stable key order (JSON-ready)."""
        return {
            "workers": self.workers,
            "cache_dir": (
                None if self.cache_dir is None else os.fspath(self.cache_dir)
            ),
            "m_bins": list(self.m_bins),
            "device": self.device,
            "top_k": self.top_k,
            "include_dsm": self.include_dsm,
            "max_tile": self.max_tile,
            "transfer": self.transfer,
            "watermark": self.watermark,
            "affinity_slack": self.affinity_slack,
            "max_retries": self.max_retries,
            "retry_after_s": self.retry_after_s,
            "health_interval_s": self.health_interval_s,
            "broadcast": self.broadcast,
            "start_method": self.start_method,
            "request_timeout_s": self.request_timeout_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FleetConfig":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FleetConfig fields {sorted(unknown)}; known: "
                f"{sorted(known)}"
            )
        coerced: Dict[str, object] = dict(payload)
        if "m_bins" in coerced:
            coerced["m_bins"] = tuple(coerced["m_bins"])
        return cls(**coerced)
