"""Distributed serving fleet: router, workers, replication, failover.

The :mod:`repro.fleet` package scales the single-process serving stack
(:class:`~repro.runtime.server.KernelServer` /
:class:`~repro.graphs.server.ModelServer`) out to N worker processes
behind one :class:`~repro.fleet.router.FleetRouter`:

* :mod:`repro.fleet.config` — :class:`FleetConfig`, the one frozen value
  describing a deployment (worker count, shared cache namespace,
  admission watermark, failover budget, compiler knobs);
* :mod:`repro.fleet.worker` — the worker process entry point: a real
  serving stack consuming a task queue, plus the ``broadcast`` plan
  provenance;
* :mod:`repro.fleet.router` — :class:`ServingFleet` (lifecycle, request
  path, admission control, health/failover) and :class:`FleetRouter`
  (the pure consistent-hash + least-loaded dispatch policy);
* :mod:`repro.fleet.stats` — :class:`FleetStats`, the merged
  router + per-worker observability snapshot.
"""

from repro.fleet.config import FleetConfig
from repro.fleet.router import FleetResponse, FleetRouter, ServingFleet
from repro.fleet.stats import FleetStats
from repro.fleet.worker import SOURCE_BROADCAST, FleetWorker

__all__ = [
    "FleetConfig",
    "FleetResponse",
    "FleetRouter",
    "FleetStats",
    "FleetWorker",
    "ServingFleet",
    "SOURCE_BROADCAST",
]
