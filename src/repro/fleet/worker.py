"""Fleet worker process: a real serving stack behind two queues.

Each fleet worker is an ordinary OS process running
:func:`worker_main` — it hosts a real
:class:`~repro.graphs.server.ModelServer` (and therefore a real
:class:`~repro.runtime.server.KernelServer`) whose plan cache points at the
fleet's shared on-disk namespace, consumes tasks from its private task
queue, and answers on the fleet-wide result queue.  Nothing is mocked: a
cold request inside a worker runs the full fusion search; a warm one hits
the worker's kernel tables.

The queue protocol is deliberately tiny (plain tuples of primitives):

Task queue (router -> worker)
    ``("serve", req_id, kind, target, m)`` — serve one request.  When the
    router's request carries an active trace, a sixth element extends the
    tuple: the :meth:`~repro.obs.trace.Tracer.wire_context` triple
    ``(trace_id, parent_span_id, sent_us)``; workers adopt it so their
    spans stitch into the router-side trace (and ``sent_us`` yields a
    queue-wait span).  Workers accept both arities.
    ``("warm", kind, target, m)`` — adopt a plan from the shared cache
    (the warm-plan broadcast; no fusion search ever runs).
    ``("stats", token)`` — snapshot and report this worker's metrics.
    ``("stop",)`` — drain and exit.

Result queue (worker -> router)
    ``("ready", worker_id, incarnation)`` — serving stack is built.
    ``("result", worker_id, incarnation, req_id, payload)`` — one answer;
    ``payload`` carries source/latency/bin/error.
    ``("compiled", worker_id, incarnation, kind, target, m)`` — this worker
    just cold-compiled; the router fans this out as ``warm`` tasks.
    ``("stats", worker_id, incarnation, token, payload)`` — metrics reply.

Provenance: when a request is served from a table entry that arrived via
the broadcast channel (rather than this worker's own compile), its first
serve reports the dedicated source :data:`SOURCE_BROADCAST` — that is how
"worker B served the shape worker A compiled" stays visible all the way up
into :class:`~repro.bench.report.PerfReport` source histograms.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Tuple

from repro.bench.traces import KIND_KERNEL, KIND_MODEL
from repro.errors import FusionError
from repro.fleet.config import FleetConfig
from repro.graphs.server import ModelServer
from repro.ir.workloads import MODEL_ZOO
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger, log_event
from repro.obs.trace import set_process_tag, tracer
from repro.runtime.stats import ServingStats

_logger = get_logger(__name__)

#: Resolution source reported for the first serve from a broadcast-warmed
#: table entry: the shape was cold-compiled by a *different* worker and
#: adopted through the shared plan cache.
SOURCE_BROADCAST = "broadcast"


class FleetWorker:
    """The serving loop body of one fleet worker process.

    Parameters
    ----------
    worker_id:
        This worker's fleet-wide index.
    incarnation:
        Restart generation (0 for the original process); echoed on every
        message so the router can discard stragglers from dead processes.
    config:
        The fleet's :class:`~repro.fleet.config.FleetConfig`.
    cache_dir:
        Concrete shared plan-cache directory (already resolved by the
        fleet, so workers never have to agree on a default).

    The class is separable from the process entry point so tests can drive
    one in-process; production always runs it via :func:`worker_main`.

    Example
    -------
    ::

        worker = FleetWorker(0, 0, FleetConfig(), cache_dir="/tmp/ns")
        payload = worker.serve("kernel", "G4", 64)
        print(payload["source"])                 # 'compiled'
    """

    def __init__(
        self,
        worker_id: int,
        incarnation: int,
        config: FleetConfig,
        cache_dir: str,
    ) -> None:
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.config = config
        self.server = ModelServer(
            config=config.fuser_config(cache_dir), m_bins=config.m_bins
        )
        self.kernels = self.server.server
        #: (kind, target, bin) table entries adopted via broadcast whose
        #: first serve has not happened yet.
        self._warmed: Set[Tuple[str, str, int]] = set()
        self.broadcast_warms = 0

    # ------------------------------------------------------------------ #
    # Task handlers
    # ------------------------------------------------------------------ #
    def serve(self, kind: str, target: str, m: int) -> Dict[str, object]:
        """Serve one request; returns the wire payload (never raises)."""
        start = time.perf_counter()
        source: Optional[str] = None
        bin_m = 0
        error: Optional[str] = None
        compiled = False
        try:
            if kind == KIND_KERNEL:
                response = self.kernels.request(target, m)
                source = response.source
                bin_m = response.bin_m
            elif kind == KIND_MODEL:
                self._ensure_model(target)
                model_response = self.server.serve(target, m=m)
                source = model_response.source
                bin_m = self.kernels.bin_for(m)
            else:
                error = f"unknown request kind {kind!r}"
        except FusionError as exc:
            error = f"FusionError: {exc}"
        except Exception as exc:  # noqa: BLE001 — workers must not die mid-serve
            error = f"{type(exc).__name__}: {exc}"
        if source is not None:
            compiled = ServingStats.is_compile_source(source)
            warmed_key = (kind, target, bin_m)
            if not compiled and warmed_key in self._warmed:
                self._warmed.discard(warmed_key)
                source = SOURCE_BROADCAST
        return {
            "source": source,
            "bin_m": bin_m,
            "latency_us": (time.perf_counter() - start) * 1e6,
            "compiled": compiled,
            "error": error,
        }

    def warm(self, kind: str, target: str, m: int) -> bool:
        """Adopt a broadcast plan from the shared cache (no search)."""
        try:
            if kind == KIND_KERNEL:
                adopted = self.kernels.warm_from_cache(target, m) is not None
            elif kind == KIND_MODEL:
                self._ensure_model(target)
                adopted = self.server.warm_from_cache(target, m=m) > 0
            else:
                return False
        except (FusionError, KeyError, ValueError):
            return False
        if adopted:
            self._warmed.add((kind, target, self.kernels.bin_for(m)))
            self.broadcast_warms += 1
        return adopted

    def stats_payload(self) -> Dict[str, object]:
        """This worker's metrics, as plain JSON-able data."""
        payload: Dict[str, object] = {
            "worker": self.worker_id,
            "incarnation": self.incarnation,
            "broadcast_warms": self.broadcast_warms,
            "serving": self.kernels.stats.to_dict(),
            "models": self.server.stats.to_dict(),
        }
        if self.kernels.cache is not None:
            payload["cache"] = self.kernels.cache.stats.snapshot()
        return payload

    def close(self) -> None:
        """Release the serving stack's pools."""
        self.server.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _ensure_model(self, target: str) -> None:
        if target in self.server.models():
            return
        if target not in MODEL_ZOO:
            raise KeyError(f"model {target!r} is not in the zoo")
        self.server.register(target, target)


def worker_main(
    worker_id: int,
    incarnation: int,
    config_payload: Dict[str, object],
    cache_dir: str,
    task_queue,
    result_queue,
) -> None:
    """Process entry point: build the stack, then serve until ``stop``.

    Parameters
    ----------
    worker_id, incarnation:
        Identity echoed on every outgoing message.
    config_payload:
        ``FleetConfig.to_dict()`` (crossing the spawn boundary as data).
    cache_dir:
        Shared plan-cache directory.
    task_queue, result_queue:
        The ``multiprocessing`` queues described in the module docstring.
    """
    set_process_tag(f"w{worker_id}-i{incarnation}")
    config = FleetConfig.from_dict(config_payload)
    worker = FleetWorker(worker_id, incarnation, config, cache_dir)
    log_event(
        _logger,
        "worker-serving",
        worker=worker_id,
        incarnation=incarnation,
        cache_dir=cache_dir,
    )
    result_queue.put(("ready", worker_id, incarnation))
    try:
        while True:
            task = task_queue.get()
            op = task[0]
            if op == "stop":
                break
            if op == "serve":
                _, req_id, kind, target, m = task[:5]
                wire = task[5] if len(task) > 5 else None
                with tracer().adopt(wire):
                    if wire is not None and obs_trace.enabled():
                        # The gap between the router's send timestamp and
                        # now is time the task sat in this worker's queue.
                        tracer().emit(
                            "worker.queue_wait",
                            start_us=float(wire[2]),
                            end_us=obs_trace.now_us(),
                            worker=worker_id,
                        )
                    with tracer().span(
                        "worker.serve", worker=worker_id, target=target
                    ) as span:
                        payload = worker.serve(kind, target, m)
                        span.set("source", payload.get("source"))
                if payload.pop("compiled"):
                    result_queue.put(
                        ("compiled", worker_id, incarnation, kind, target, m)
                    )
                result_queue.put(
                    ("result", worker_id, incarnation, req_id, payload)
                )
            elif op == "warm":
                _, kind, target, m = task
                worker.warm(kind, target, m)
            elif op == "stats":
                _, token = task
                result_queue.put(
                    (
                        "stats",
                        worker_id,
                        incarnation,
                        token,
                        worker.stats_payload(),
                    )
                )
    finally:
        worker.close()
        if obs_trace.enabled():
            tracer().flush()
        log_event(
            _logger, "worker-exit", worker=worker_id, incarnation=incarnation
        )
