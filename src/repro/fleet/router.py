"""Multi-worker serving fleet: router, admission control, failover.

:class:`ServingFleet` runs N :mod:`~repro.fleet.worker` processes — each a
real serving stack over one shared on-disk plan-cache namespace — behind a
:class:`FleetRouter` that decides, per request, which worker serves it:

* **affinity first** — requests for the same ``(kind, target, M-bin)`` key
  rendezvous-hash to the same worker, so a shape compiles once and then
  keeps hitting the kernel table that already holds it;
* **queue-depth aware** — when the affinity worker's queue is more than
  ``affinity_slack`` deeper than the least-loaded worker's, the router
  overrides affinity and rebalances (the same queue-length thesis PR 2's
  ``AdaptiveShardSizer`` applies to search shards);
* **admission control** — when the aggregate queue depth reaches the
  configured watermark, new requests are *rejected* with a Retry-After
  hint instead of queuing without bound (:meth:`ServingFleet.request`
  returns ``status="rejected"``; :meth:`ServingFleet.serve` retries for
  callers that prefer blocking);
* **failover** — a health monitor restarts dead workers and re-dispatches
  their in-flight requests to surviving replicas (bounded by
  ``max_retries``), so a worker crash delays requests instead of losing
  them;
* **warm-plan broadcast** — after any worker cold-compiles, every replica
  adopts the plan from the shared cache, so one compile cliff warms the
  whole fleet.

Everything observable lands in :class:`~repro.fleet.stats.FleetStats`.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import multiprocessing

from repro.analysis.locks import make_lock
from repro.bench.traces import KIND_KERNEL, KIND_MODEL
from repro.fleet.config import FleetConfig
from repro.fleet.stats import FleetStats
from repro.fleet.worker import worker_main
from repro.ir.workloads import MODEL_ZOO, get_workload
from repro.obs.logging import get_logger, log_event
from repro.obs.trace import tracer

_logger = get_logger(__name__)

#: Statuses a :class:`FleetResponse` can carry.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class FleetResponse:
    """One answered (or refused) fleet request.

    ``status`` is ``"ok"`` for a served request, ``"rejected"`` when
    admission control refused it (``retry_after_s`` then carries the
    backoff hint), and ``"error"`` when serving failed (``error`` carries
    the reason — an unfusable chain, an exhausted failover budget, or a
    timeout).  ``latency_us`` is end-to-end (queueing, failover and IPC
    included); ``serve_us`` is the worker-side serving time alone.
    """

    kind: str
    target: str
    m: int
    status: str
    worker: Optional[int] = None
    source: Optional[str] = None
    bin_m: int = 0
    latency_us: float = 0.0
    serve_us: float = 0.0
    retries: int = 0
    retry_after_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the request was served."""
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        """Whether admission control refused the request."""
        return self.status == STATUS_REJECTED


class FleetRouter:
    """Deterministic dispatch policy: consistent-hash affinity, load-aware.

    The router is pure policy — it holds no queues and spawns nothing —
    so its decisions are unit-testable: given an affinity key and the
    current per-worker queue depths, :meth:`route` returns the worker id.

    Parameters
    ----------
    affinity_slack:
        How much deeper (in queued requests) the affinity-preferred
        worker may be than the least-loaded worker before the router
        abandons affinity and picks the least-loaded worker instead.
        ``0`` routes purely by load; a large value routes purely by hash.

    Example
    -------
    >>> router = FleetRouter(affinity_slack=2)
    >>> depths = {0: 0, 1: 0, 2: 0}
    >>> chosen = router.route("kernel:G4:128", depths)
    >>> chosen == router.route("kernel:G4:128", depths)  # deterministic
    True
    >>> busy = {w: (9 if w == chosen else 0) for w in depths}
    >>> router.route("kernel:G4:128", busy) != chosen    # rebalances
    True
    """

    def __init__(self, affinity_slack: int = 2) -> None:
        if affinity_slack < 0:
            raise ValueError("affinity_slack must be >= 0")
        self.affinity_slack = affinity_slack

    @staticmethod
    def affinity_key(kind: str, target: str, bin_m: int) -> str:
        """The affinity key one request hashes under."""
        return f"{kind}:{target}:{bin_m}"

    @staticmethod
    def preferred(key: str, workers: List[int]) -> int:
        """Rendezvous (highest-random-weight) choice for ``key``.

        Stable under membership change: removing one worker only remaps
        the keys that pointed at it, which is what keeps kernel-table
        affinity intact when a worker dies and rejoins.
        """
        if not workers:
            raise ValueError("no workers to route to")
        return max(
            workers,
            key=lambda worker: hashlib.sha256(
                f"{key}|{worker}".encode("utf-8")
            ).digest(),
        )

    def route(self, key: str, depths: Mapping[int, int]) -> int:
        """Pick the worker for ``key`` given current queue ``depths``."""
        workers = sorted(depths)
        preferred = self.preferred(key, workers)
        least_depth = min(depths.values())
        if depths[preferred] <= least_depth + self.affinity_slack:
            return preferred
        return min(workers, key=lambda worker: (depths[worker], worker))


@dataclass
class _Pending:
    """Router-side bookkeeping for one dispatched request."""

    req_id: int
    kind: str
    target: str
    m: int
    key: str
    future: "Future[Dict[str, object]]"
    worker: int = -1
    retries: int = 0
    #: Trace wire context (trace_id, parent span_id, sent timestamp) riding
    #: the task tuple to the worker; ``None`` when tracing is off.
    wire: Optional[Tuple[str, str, float]] = None


class _WorkerHandle:
    """One worker slot: the live process plus its private task queue."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.incarnation = -1
        self.process = None
        self.task_queue = None
        self.ready = False
        self.inflight: set = set()

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ServingFleet:
    """N serving workers behind a queue-aware router with failover.

    Parameters
    ----------
    config:
        A :class:`~repro.fleet.config.FleetConfig`; keyword overrides are
        applied on top (``ServingFleet(workers=4, watermark=32)``).

    Use it as a context manager (or call :meth:`start`/:meth:`close`):
    workers are real processes sharing the config's on-disk plan-cache
    namespace, so the fleet survives worker crashes with its compiled
    plans intact.

    Example
    -------
    ::

        from repro import FleetConfig, ServingFleet

        config = FleetConfig(workers=2, cache_dir="/tmp/fleet-ns")
        with ServingFleet(config) as fleet:
            response = fleet.serve("G4", m=100)          # routed by affinity
            print(response.worker, response.source)
            print(fleet.stats().to_dict()["router"]["routed"])
    """

    def __init__(
        self, config: Optional[FleetConfig] = None, **overrides: object
    ) -> None:
        self.config = (config or FleetConfig()).replace(**overrides)
        self.router = FleetRouter(affinity_slack=self.config.affinity_slack)
        self._owns_cache_dir = self.config.cache_dir is None
        self.cache_dir: Optional[str] = (
            None
            if self._owns_cache_dir
            else str(self.config.cache_dir)
        )
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._handles: List[_WorkerHandle] = []
        self._result_queue = None
        self._lock = make_lock("fleet-router")
        self._pending: Dict[int, _Pending] = {}
        self._req_ids = itertools.count()
        self._stats_replies: Dict[str, Dict[str, Dict[str, object]]] = {}
        self._stats_tokens = itertools.count()
        self._counters: Dict[str, int] = {
            "routed": 0,
            "rejected": 0,
            "retried": 0,
            "failovers": 0,
            "restarts": 0,
            "broadcasts": 0,
            "duplicates": 0,
        }
        self._started = False
        self._closing = False
        self._collector: Optional[threading.Thread] = None
        self._health: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, wait: bool = True, timeout: float = 120.0) -> "ServingFleet":
        """Spawn the workers and the router threads (idempotent).

        With ``wait=True`` (the default) the call returns once every
        worker has built its serving stack and reported ready — so the
        first request never races worker initialisation.
        """
        if self._started:
            return self
        self._started = True
        self._closing = False
        if self.cache_dir is None:
            self.cache_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        self._result_queue = self._ctx.Queue()
        self._handles = [
            _WorkerHandle(worker_id) for worker_id in range(self.config.workers)
        ]
        for handle in self._handles:
            self._spawn(handle)
        self._collector = threading.Thread(
            target=self._collect_loop, name="fleet-collector", daemon=True
        )
        self._collector.start()
        self._health = threading.Thread(
            target=self._health_loop, name="fleet-health", daemon=True
        )
        self._health.start()
        if wait:
            self.wait_ready(timeout=timeout)
        return self

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until every worker reported ready (raises on timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if all(handle.ready for handle in self._handles):
                    return
            time.sleep(0.01)
        raise TimeoutError(
            f"fleet workers not ready within {timeout:.0f}s"
        )

    def close(self) -> None:
        """Stop the workers and router threads (idempotent)."""
        if not self._started:
            return
        self._closing = True
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            for handle in self._handles:
                handle.inflight.clear()
        for entry in pending:
            if not entry.future.done():
                entry.future.set_result(
                    {"source": None, "bin_m": 0, "latency_us": 0.0,
                     "error": "fleet closed"}
                )
        for handle in self._handles:
            if handle.task_queue is not None:
                try:
                    handle.task_queue.put(("stop",))
                except (OSError, ValueError):  # lint: allow[silent-except]
                    # Best-effort shutdown: the queue may already be closed
                    # by a worker that died; join/terminate below still runs.
                    pass
        for handle in self._handles:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)
        self._started = False
        for thread in (self._collector, self._health):
            if thread is not None:
                thread.join(timeout=2.0)
        self._collector = None
        self._health = None
        if self._owns_cache_dir and self.cache_dir is not None:
            shutil.rmtree(self.cache_dir, ignore_errors=True)
            self.cache_dir = None

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def request(
        self,
        target: str,
        m: Optional[int] = None,
        *,
        kind: str = KIND_KERNEL,
        worker: Optional[int] = None,
    ) -> FleetResponse:
        """Serve one request, or refuse it under backpressure.

        ``target`` is a workload id (``kind="kernel"``) or a model-zoo
        name (``kind="model"``); ``m`` is the runtime M.  When the fleet's
        aggregate queue depth has reached the admission watermark the
        request is *not* queued: the response comes back with
        ``status="rejected"`` and a ``retry_after_s`` hint (use
        :meth:`serve` for a caller that prefers to block and retry).
        ``worker`` pins the request to one worker, bypassing both routing
        and admission — an operational/testing hook, not the normal path.
        """
        if m is None or m <= 0:
            raise ValueError("request(target, m) requires a positive m")
        if kind not in (KIND_KERNEL, KIND_MODEL):
            raise ValueError(f"kind must be 'kernel' or 'model', not {kind!r}")
        self._validate_target(kind, target)
        if not self._started:
            raise RuntimeError("fleet is not started; use it as a context manager")
        start = time.perf_counter()
        bin_m = self._bin_for(m)
        key = FleetRouter.affinity_key(kind, target, bin_m)
        future: "Future[Dict[str, object]]" = Future()
        with tracer().span("router.dispatch", key=key) as dspan:
            wire = tracer().wire_context()
            with self._lock:
                inflight = len(self._pending)
                if worker is None and inflight >= self.config.watermark:
                    self._counters["rejected"] += 1
                    excess = inflight - self.config.watermark
                    retry_after = self.config.retry_after_s * (
                        1.0 + excess / max(1, self.config.watermark)
                    )
                    dspan.set("rejected", True)
                    return FleetResponse(
                        kind=kind,
                        target=target,
                        m=m,
                        status=STATUS_REJECTED,
                        retry_after_s=retry_after,
                        latency_us=(time.perf_counter() - start) * 1e6,
                    )
                handle = self._pick_handle(key, worker)
                pending = _Pending(
                    req_id=next(self._req_ids),
                    kind=kind,
                    target=target,
                    m=m,
                    key=key,
                    future=future,
                    wire=wire,
                )
                self._counters["routed"] += 1
                self._dispatch(pending, handle)
            dspan.set("worker", pending.worker)
        try:
            payload = future.result(timeout=self.config.request_timeout_s)
        except FutureTimeoutError:
            with self._lock:
                entry = self._pending.pop(pending.req_id, None)
                if entry is not None:
                    for candidate in self._handles:
                        candidate.inflight.discard(pending.req_id)
            return FleetResponse(
                kind=kind,
                target=target,
                m=m,
                status=STATUS_ERROR,
                worker=pending.worker,
                retries=pending.retries,
                latency_us=(time.perf_counter() - start) * 1e6,
                error=(
                    f"timed out after {self.config.request_timeout_s:.0f}s"
                ),
            )
        latency_us = (time.perf_counter() - start) * 1e6
        error = payload.get("error")
        return FleetResponse(
            kind=kind,
            target=target,
            m=m,
            status=STATUS_ERROR if error else STATUS_OK,
            worker=payload.get("worker", pending.worker),
            source=payload.get("source"),
            bin_m=int(payload.get("bin_m", 0)),
            latency_us=latency_us,
            serve_us=float(payload.get("latency_us", 0.0)),
            retries=pending.retries,
            error=error,
        )

    def serve(
        self,
        target: str,
        m: Optional[int] = None,
        *,
        kind: str = KIND_KERNEL,
        max_wait_s: Optional[float] = None,
    ) -> FleetResponse:
        """Like :meth:`request`, but block-and-retry through backpressure.

        Rejected attempts honour the router's Retry-After hint and retry
        until ``max_wait_s`` (default: the config's request timeout) is
        exhausted; the last rejection is then returned as-is, so callers
        still see an explicit ``rejected`` status rather than an
        open-ended hang.
        """
        budget = (
            max_wait_s if max_wait_s is not None else self.config.request_timeout_s
        )
        deadline = time.monotonic() + budget
        while True:
            response = self.request(target, m, kind=kind)
            if not response.rejected:
                return response
            if time.monotonic() + response.retry_after_s >= deadline:
                return response
            time.sleep(response.retry_after_s)

    # ------------------------------------------------------------------ #
    # Introspection and chaos hooks
    # ------------------------------------------------------------------ #
    def queue_depths(self) -> Dict[int, int]:
        """Dispatched-but-unfinished request count per worker."""
        with self._lock:
            return {
                handle.worker_id: len(handle.inflight)
                for handle in self._handles
            }

    def alive_workers(self) -> List[int]:
        """Worker ids whose processes are currently alive."""
        with self._lock:
            return [h.worker_id for h in self._handles if h.alive()]

    def stats(self, timeout: float = 10.0) -> FleetStats:
        """Aggregate router and per-worker metrics into a snapshot.

        Workers answer on the ordinary result queue, so a worker stuck in
        a long compile delays its reply; after ``timeout`` the snapshot is
        returned with whichever workers answered (the router block is
        always complete).
        """
        token = f"stats-{next(self._stats_tokens)}"
        with self._lock:
            self._stats_replies[token] = {}
            targets = [h for h in self._handles if h.alive() and h.ready]
            for handle in targets:
                handle.task_queue.put(("stats", token))
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self._stats_replies[token]) >= len(targets):
                    break
            time.sleep(0.01)
        with self._lock:
            per_worker = self._stats_replies.pop(token, {})
            router: Dict[str, object] = dict(self._counters)
            router["inflight"] = len(self._pending)
            router["queue_depth"] = {
                str(handle.worker_id): len(handle.inflight)
                for handle in self._handles
            }
            router["broadcast_warms"] = sum(
                int(payload.get("broadcast_warms", 0))
                for payload in per_worker.values()
            )
            alive = sum(1 for handle in self._handles if handle.alive())
        return FleetStats(
            workers=self.config.workers,
            alive=alive,
            router=router,
            per_worker=per_worker,
        )

    def kill_worker(self, worker_id: int) -> None:
        """Kill one worker process outright (chaos/testing hook).

        The health monitor notices, restarts the worker and fails its
        in-flight requests over to the survivors — exactly the crash path
        this method exists to exercise.
        """
        with self._lock:
            handle = self._handles[worker_id]
            process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bin_for(self, m: int) -> int:
        bins = self.config.m_bins
        for bin_m in bins:
            if m <= bin_m:
                return bin_m
        return bins[-1]

    @staticmethod
    def _validate_target(kind: str, target: str) -> None:
        if kind == KIND_KERNEL:
            get_workload(target)  # raises KeyError for unknown ids
        elif target not in MODEL_ZOO:
            raise KeyError(f"model {target!r} is not in the zoo")

    def _pick_handle(
        self, key: str, worker: Optional[int]
    ) -> _WorkerHandle:
        """Choose the worker for ``key`` (caller holds the lock)."""
        if worker is not None:
            return self._handles[worker]
        candidates = {
            handle.worker_id: len(handle.inflight)
            for handle in self._handles
            if handle.alive()
        }
        if not candidates:
            # Every worker is mid-restart; queue on the affinity choice.
            candidates = {
                handle.worker_id: len(handle.inflight)
                for handle in self._handles
            }
        return self._handles[self.router.route(key, candidates)]

    def _dispatch(self, pending: _Pending, handle: _WorkerHandle) -> None:
        """Send one request to one worker (caller holds the lock).

        The task tuple is ``("serve", req_id, kind, target, m)``, extended
        with the trace wire context as an optional sixth element when the
        request carries one (workers tolerate both arities).
        """
        pending.worker = handle.worker_id
        self._pending[pending.req_id] = pending
        handle.inflight.add(pending.req_id)
        task = ("serve", pending.req_id, pending.kind, pending.target, pending.m)
        if pending.wire is not None:
            task = task + (pending.wire,)
        handle.task_queue.put(task)

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) one worker process (caller holds no/any lock)."""
        handle.incarnation += 1
        handle.ready = False
        handle.task_queue = self._ctx.Queue()
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.worker_id,
                handle.incarnation,
                self.config.to_dict(),
                self.cache_dir,
                handle.task_queue,
                self._result_queue,
            ),
            name=f"fleet-worker-{handle.worker_id}",
            daemon=True,
        )
        handle.process.start()
        log_event(
            _logger,
            "worker-start" if handle.incarnation == 0 else "worker-respawn",
            worker=handle.worker_id,
            incarnation=handle.incarnation,
            pid=handle.process.pid,
        )

    # ----------------------------- threads ---------------------------- #
    def _collect_loop(self) -> None:
        while not self._closing:
            try:
                message = self._result_queue.get(timeout=0.1)
            except Exception:  # noqa: BLE001 — queue.Empty or EOF on close
                continue
            op = message[0]
            if op == "result":
                self._on_result(message)
            elif op == "compiled":
                self._on_compiled(message)
            elif op == "ready":
                self._on_ready(message)
            elif op == "stats":
                self._on_stats(message)

    def _on_result(self, message) -> None:
        _, worker_id, _incarnation, req_id, payload = message
        payload = dict(payload)
        payload["worker"] = worker_id
        with self._lock:
            pending = self._pending.pop(req_id, None)
            for handle in self._handles:
                handle.inflight.discard(req_id)
            if pending is None:
                self._counters["duplicates"] += 1
                return
        if not pending.future.done():
            pending.future.set_result(payload)

    def _on_compiled(self, message) -> None:
        _, worker_id, _incarnation, kind, target, m = message
        if not self.config.broadcast:
            return
        with self._lock:
            self._counters["broadcasts"] += 1
            for handle in self._handles:
                if handle.worker_id == worker_id or not handle.alive():
                    continue
                handle.task_queue.put(("warm", kind, target, m))

    def _on_ready(self, message) -> None:
        _, worker_id, incarnation = message
        with self._lock:
            handle = self._handles[worker_id]
            if incarnation == handle.incarnation:
                handle.ready = True

    def _on_stats(self, message) -> None:
        _, worker_id, _incarnation, token, payload = message
        with self._lock:
            replies = self._stats_replies.get(token)
            if replies is not None:
                replies[str(worker_id)] = payload

    def _health_loop(self) -> None:
        while not self._closing:
            time.sleep(self.config.health_interval_s)
            if self._closing:
                return
            for handle in list(self._handles):
                if handle.process is not None and not handle.process.is_alive():
                    self._handle_death(handle)

    def _handle_death(self, handle: _WorkerHandle) -> None:
        """Restart a dead worker and fail its in-flight requests over."""
        with self._lock:
            if self._closing or handle.alive():
                return
            orphaned = [
                self._pending[req_id]
                for req_id in sorted(handle.inflight)
                if req_id in self._pending
            ]
            handle.inflight.clear()
            self._counters["restarts"] += 1
            if orphaned:
                self._counters["failovers"] += 1
            log_event(
                _logger,
                "worker-death",
                level=logging.WARNING,
                worker=handle.worker_id,
                incarnation=handle.incarnation,
                orphaned=len(orphaned),
            )
            self._spawn(handle)
            for pending in orphaned:
                pending.retries += 1
                if pending.retries > self.config.max_retries:
                    self._pending.pop(pending.req_id, None)
                    if not pending.future.done():
                        pending.future.set_result(
                            {
                                "source": None,
                                "bin_m": 0,
                                "latency_us": 0.0,
                                "error": (
                                    "failover budget exhausted after "
                                    f"{pending.retries - 1} retries"
                                ),
                            }
                        )
                    continue
                self._counters["retried"] += 1
                survivors = {
                    other.worker_id: len(other.inflight)
                    for other in self._handles
                    if other.alive() and other.worker_id != handle.worker_id
                }
                if survivors:
                    target = self._handles[
                        self.router.route(pending.key, survivors)
                    ]
                else:
                    target = handle  # single-worker fleet: queue on restart
                self._pending.pop(pending.req_id, None)
                self._dispatch(pending, target)
