"""Loop schedules: spatial/temporal partitioning and nesting order.

A loop schedule assigns every loop dimension of the fused chain (m, n, k, l)
to either the *spatial* set S (covered by parallel processing units — the
grid and the cluster) or the *temporal* set T (iterated sequentially inside
the kernel mainloop), and fixes the nesting order of the temporal dims.

Table IV counts the possibilities: with ``s`` spatial dimensions there are
``C(4, s) * (4 - s)!`` schedules (the spatial set is unordered, the temporal
dims are ordered), giving 24 + 12 + 4 + 1 = 41 schedules for one to four
spatial dimensions.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Sequence, Tuple

#: Canonical loop dimensions of the fused two-GEMM chain.
CHAIN_DIMENSIONS: Tuple[str, ...] = ("m", "n", "k", "l")


@dataclass(frozen=True)
class LoopSchedule:
    """One loop schedule: a spatial set plus an ordered temporal nest.

    Parameters
    ----------
    spatial:
        Dimensions mapped to parallel processing units (grid x cluster).
    temporal:
        Remaining dimensions, ordered outermost-first.
    """

    spatial: FrozenSet[str]
    temporal: Tuple[str, ...]

    def __post_init__(self) -> None:
        dims = set(self.spatial) | set(self.temporal)
        if dims != set(CHAIN_DIMENSIONS):
            raise ValueError(
                f"schedule must cover exactly {CHAIN_DIMENSIONS}, got {sorted(dims)}"
            )
        if set(self.spatial) & set(self.temporal):
            raise ValueError("a dimension cannot be both spatial and temporal")
        if len(set(self.temporal)) != len(self.temporal):
            raise ValueError("temporal order contains duplicates")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_spatial(self, dim: str) -> bool:
        """Whether ``dim`` is covered by parallel units."""
        return dim in self.spatial

    def is_temporal(self, dim: str) -> bool:
        """Whether ``dim`` is iterated sequentially."""
        return dim in self.temporal

    def temporal_position(self, dim: str) -> int:
        """Nesting depth of a temporal dim (0 = outermost)."""
        return self.temporal.index(dim)

    def innermost(self) -> str | None:
        """The innermost temporal dimension, or ``None`` if all are spatial."""
        return self.temporal[-1] if self.temporal else None

    def is_outer_than(self, dim_a: str, dim_b: str) -> bool:
        """Whether temporal ``dim_a`` is nested outside temporal ``dim_b``."""
        return self.temporal_position(dim_a) < self.temporal_position(dim_b)

    @property
    def num_spatial(self) -> int:
        """Number of spatial dimensions."""
        return len(self.spatial)

    def label(self) -> str:
        """Compact label such as ``"S(m)|T(nlk)"`` or the paper's ``mnlk``."""
        spatial = "".join(sorted(self.spatial))
        temporal = "".join(self.temporal)
        return f"S({spatial})|T({temporal})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, spatial: str, temporal: str) -> "LoopSchedule":
        """Build a schedule from strings, e.g. ``from_string("m", "nlk")``."""
        return cls(spatial=frozenset(spatial), temporal=tuple(temporal))


def enumerate_schedules(
    dims: Sequence[str] = CHAIN_DIMENSIONS,
    min_spatial: int = 1,
    max_spatial: int | None = None,
) -> List[LoopSchedule]:
    """Enumerate all spatial/temporal partitions with ordered temporal dims.

    The default bounds (at least one spatial dimension, no upper bound)
    reproduce Table IV's 41 schedules for the four chain dimensions.
    """
    if max_spatial is None:
        max_spatial = len(dims)
    schedules: List[LoopSchedule] = []
    for num_spatial in range(min_spatial, max_spatial + 1):
        for spatial in itertools.combinations(dims, num_spatial):
            remaining = [d for d in dims if d not in spatial]
            for temporal in itertools.permutations(remaining):
                schedules.append(
                    LoopSchedule(spatial=frozenset(spatial), temporal=temporal)
                )
    return schedules


def count_schedules(num_dims: int = 4, min_spatial: int = 1) -> int:
    """Closed-form count of schedules (Table IV's right-hand column)."""
    total = 0
    for num_spatial in range(min_spatial, num_dims + 1):
        total += math.comb(num_dims, num_spatial) * math.factorial(
            num_dims - num_spatial
        )
    return total


def iter_schedule_table(
    dims: Sequence[str] = CHAIN_DIMENSIONS,
) -> Iterator[Tuple[int, int]]:
    """Yield (number of spatial dims, schedule count) rows of Table IV."""
    for num_spatial in range(1, len(dims) + 1):
        count = math.comb(len(dims), num_spatial) * math.factorial(
            len(dims) - num_spatial
        )
        yield num_spatial, count
