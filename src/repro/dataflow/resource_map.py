"""Greedy resource mapping: placing reused tensors across the hierarchy.

Algorithm 1 (lines 15-26) places a reused tensor on the fastest memory level
with spare capacity and spills the remainder progressively downwards —
registers, then SMEM, then DSM, then global memory.  The placement, together
with how often the data is re-accessed, determines the per-level data
movement volume the cost model later minimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.memory import MemoryHierarchy, MemoryLevelName


@dataclass(frozen=True)
class LevelBudget:
    """Capacity of one memory level available for reused data.

    A fraction of each on-chip level is reserved for the working set the
    mainloop needs anyway (operand staging buffers, accumulators), so only
    the remainder can hold persistent intermediates.
    """

    name: str
    capacity_bytes: float

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")


@dataclass
class TensorPlacement:
    """Where one reused tensor lives: bytes allocated per memory level."""

    tensor: str
    allocations: Dict[str, float] = field(default_factory=dict)

    def allocated_bytes(self, level: str) -> float:
        """Bytes of this tensor resident at ``level``."""
        return self.allocations.get(level, 0.0)

    @property
    def total_bytes(self) -> float:
        """Total bytes placed across all levels."""
        return sum(self.allocations.values())

    @property
    def levels_used(self) -> List[str]:
        """Levels with a non-zero allocation, fastest first."""
        return [
            name
            for name in MemoryLevelName.ORDER
            if self.allocations.get(name, 0.0) > 0
        ]

    @property
    def spills_to_global(self) -> bool:
        """Whether part of the tensor had to fall back to global memory."""
        return self.allocations.get(MemoryLevelName.GLOBAL, 0.0) > 0

    @property
    def deepest_level(self) -> Optional[str]:
        """The slowest level holding any part of the tensor."""
        used = self.levels_used
        return used[-1] if used else None


@dataclass
class ResourceMapping:
    """Placements for every reused tensor of one candidate plan."""

    placements: Dict[str, TensorPlacement] = field(default_factory=dict)

    def add(self, placement: TensorPlacement) -> None:
        """Record the placement of one tensor."""
        self.placements[placement.tensor] = placement

    def get(self, tensor: str) -> TensorPlacement:
        """Return the placement of ``tensor`` (raises ``KeyError`` if absent)."""
        return self.placements[tensor]

    def fits_on_chip(self) -> bool:
        """Whether every reused tensor avoided global memory entirely."""
        return all(not p.spills_to_global for p in self.placements.values())


def default_budgets(
    hierarchy: MemoryHierarchy,
    include_dsm: bool = True,
    register_reserve_fraction: float = 0.5,
    smem_reserve_bytes: int = 32 * 1024,
) -> List[LevelBudget]:
    """Capacity budgets for reused data at each spill target.

    * registers: half the register file is reserved for MMA accumulators and
      address arithmetic,
    * SMEM: a fixed staging reserve is held back for double-buffered operand
      tiles,
    * DSM: the aggregate remote SMEM of the cluster (already sized per
      cluster by :meth:`repro.hardware.spec.HardwareSpec
      .memory_hierarchy_for_cluster`),
    * global: unbounded fallback.
    """
    budgets: List[LevelBudget] = []
    for level in hierarchy.spill_targets(include_dsm=include_dsm):
        capacity = float(level.capacity_bytes)
        if level.name == MemoryLevelName.REGISTER:
            capacity *= 1.0 - register_reserve_fraction
        elif level.name == MemoryLevelName.SMEM:
            capacity = max(0.0, capacity - smem_reserve_bytes)
        elif level.name == MemoryLevelName.GLOBAL:
            capacity = float("inf")
        budgets.append(LevelBudget(level.name, capacity))
    return budgets


def greedy_place(
    tensor: str, footprint_bytes: float, budgets: List[LevelBudget]
) -> TensorPlacement:
    """Place ``footprint_bytes`` of one tensor greedily across ``budgets``.

    The fastest level is filled first; whatever does not fit spills to the
    next level (Algorithm 1, lines 17-23).  The final budget is expected to
    be global memory with unbounded capacity, so the placement always
    succeeds.
    """
    if footprint_bytes < 0:
        raise ValueError("footprint_bytes must be non-negative")
    placement = TensorPlacement(tensor=tensor)
    remaining = float(footprint_bytes)
    for budget in budgets:
        if remaining <= 0:
            break
        allocation = min(remaining, budget.capacity_bytes)
        if allocation > 0:
            placement.allocations[budget.name] = (
                placement.allocations.get(budget.name, 0.0) + allocation
            )
            remaining -= allocation
    if remaining > 0:
        # No global-memory budget was supplied; record the overflow there so
        # callers can still see the spill.
        placement.allocations[MemoryLevelName.GLOBAL] = (
            placement.allocations.get(MemoryLevelName.GLOBAL, 0.0) + remaining
        )
    return placement
