"""The dataflow analyzer (Algorithm 1).

Given one candidate — a loop schedule, block tile sizes and a cluster
geometry — the analyzer produces

* the per-memory-level data movement volume ``D_V`` (bytes moved through
  registers, SMEM, DSM and global memory),
* the greedy placement of the persistent intermediate across the hierarchy,
* the dsm_comm plan implied by the cluster geometry, and
* a feasibility verdict (whether the fusion stays on chip).

The fusion search engine calls this for every pruned candidate and feeds the
volumes into the minimax cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataflow.footprint import (
    ReusedTensorInfo,
    io_tensor_traffic,
    reused_tensor_footprint,
    tensor_size_bytes,
)
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.resource_map import (
    ResourceMapping,
    TensorPlacement,
    default_budgets,
    greedy_place,
)
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.dsm_comm.primitives import CommPlan
from repro.hardware.memory import MemoryLevelName
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec


@dataclass
class DataflowResult:
    """Output of one dataflow analysis.

    Attributes
    ----------
    volumes:
        Bytes moved per memory level, keyed by level name.
    mapping:
        Greedy placement of the persistent intermediate.
    reused:
        Description of the persistent intermediate (which tensor, footprint,
        reuse count).
    comm_plan:
        The dsm_comm collectives the cluster geometry implies.
    feasible:
        ``True`` when the persistent intermediate stays on chip, i.e. the
        fusion does not fall back to a global-memory round trip.
    """

    chain: GemmChainSpec
    schedule: LoopSchedule
    tile: TileConfig
    geometry: ClusterGeometry
    volumes: Dict[str, float]
    mapping: ResourceMapping
    reused: ReusedTensorInfo
    comm_plan: CommPlan
    feasible: bool

    @property
    def global_bytes(self) -> float:
        """Bytes moved to or from global memory."""
        return self.volumes.get(MemoryLevelName.GLOBAL, 0.0)

    @property
    def dsm_bytes(self) -> float:
        """Bytes moved over the SM-to-SM fabric."""
        return self.volumes.get(MemoryLevelName.DSM, 0.0)

    @property
    def on_chip_bytes(self) -> float:
        """Bytes served from registers, SMEM and DSM."""
        return sum(
            self.volumes.get(name, 0.0)
            for name in (
                MemoryLevelName.REGISTER,
                MemoryLevelName.SMEM,
                MemoryLevelName.DSM,
            )
        )


@dataclass
class SubchainAnalysis:
    """The chain-kind-independent core of one candidate analysis.

    Everything here depends only on the candidate (schedule, tile,
    geometry), the problem dimensions and the analyzer's device context —
    *not* on the chain kind or the gated-sequential flag.  A gated-FFN
    chain and its standard-FFN prefix therefore share one record: the
    GEMM0 weight traffic is stored per branch (``b_unit_traffic``) and
    scaled back up at assembly time, which is exact because the branch
    count is a small power of two.
    """

    a_traffic: float
    b_unit_traffic: float
    d_traffic: float
    output_traffic: float
    reused: ReusedTensorInfo
    placement: TensorPlacement
    reuse_volumes: Dict[str, float]
    clusters_per_output: int
    feasible: bool


class DataflowAnalyzer:
    """Algorithm 1: quantify data movement for one candidate plan.

    Parameters
    ----------
    device:
        Hardware description providing capacities and bandwidths.
    include_dsm:
        Whether the DSM tier participates in the greedy spill.  Baselines
        that predate clusters (Chimera, BOLT, Welder) set this to ``False``.
    register_reserve_fraction:
        Fraction of the register file reserved for the mainloop working set.
    smem_reserve_bytes:
        SMEM held back for double-buffered operand staging.
    analysis_cache:
        Optional memo for :class:`SubchainAnalysis` records.  Any object
        with ``lookup(chain, schedule, tile, geometry)`` returning a
        record or ``None`` and ``store(chain, schedule, tile, geometry,
        analysis)`` works (see
        :class:`repro.search.incremental.SubchainAnalysisCache`); the
        cache must only be shared between analyzers with an identical
        device context.
    """

    def __init__(
        self,
        device: HardwareSpec,
        include_dsm: bool = True,
        register_reserve_fraction: float = 0.5,
        smem_reserve_bytes: int = 32 * 1024,
        analysis_cache: Optional[object] = None,
    ) -> None:
        self.device = device
        self.include_dsm = include_dsm and device.has_dsm
        self.register_reserve_fraction = register_reserve_fraction
        self.smem_reserve_bytes = smem_reserve_bytes
        self.analysis_cache = analysis_cache
        # Hierarchy and budget construction are pure functions of the cluster
        # size; cache them because the search engine analyses tens of
        # thousands of candidates per chain.
        self._hierarchy_cache: Dict[int, object] = {}
        self._budget_cache: Dict[tuple, list] = {}

    # ------------------------------------------------------------------ #
    # Main entry point (Algorithm 1)
    # ------------------------------------------------------------------ #
    def analyze(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: Optional[ClusterGeometry] = None,
        gated_sequential: bool = False,
    ) -> DataflowResult:
        """Analyse one candidate and return its data-movement breakdown."""
        geometry = geometry or ClusterGeometry.single_block()
        core: Optional[SubchainAnalysis] = None
        if self.analysis_cache is not None:
            core = self.analysis_cache.lookup(chain, schedule, tile, geometry)
        if core is None:
            core = self.analyze_core(chain, schedule, tile, geometry)
            if self.analysis_cache is not None:
                self.analysis_cache.store(chain, schedule, tile, geometry, core)
        return self.assemble(
            chain, schedule, tile, geometry, core, gated_sequential
        )

    def analyze_core(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: ClusterGeometry,
    ) -> SubchainAnalysis:
        """The kind-independent part of Algorithm 1 for one candidate.

        GEMM0 weight traffic is computed for a *single* branch; everything
        else (A/D/E traffic, the persistent-intermediate placement and its
        per-level reuse traffic, the partial-output cluster count) is the
        same for a standard and a gated chain of equal dimensions.
        """
        # ----- input/output tensors (Algorithm 1 lines 8-13) ----------- #
        a_traffic = io_tensor_traffic("A", chain, schedule, tile, geometry)
        b_unit_traffic = io_tensor_traffic(
            "B", chain, schedule, tile, geometry, branches=1
        )
        d_traffic = io_tensor_traffic("D", chain, schedule, tile, geometry)
        output_traffic = float(tensor_size_bytes("E", chain))

        # ----- persistent intermediate (lines 15-26) -------------------- #
        reused = reused_tensor_footprint(chain, schedule, tile, geometry)
        budgets = self._budgets_for(
            geometry.blocks_per_cluster if self.include_dsm else 1,
            self.include_dsm and geometry.uses_dsm,
        )
        placement = greedy_place(reused.tensor, reused.footprint_bytes, budgets)

        reuse_volumes: Dict[str, float] = {}
        for level_name, allocated in placement.allocations.items():
            if allocated <= 0:
                continue
            traffic = allocated * reused.reuse_traffic_per_byte
            if level_name == MemoryLevelName.GLOBAL:
                # A global spill costs an extra write to stage the data in
                # addition to the per-trip accesses.
                traffic += allocated
            reuse_volumes[level_name] = traffic

        return SubchainAnalysis(
            a_traffic=a_traffic,
            b_unit_traffic=b_unit_traffic,
            d_traffic=d_traffic,
            output_traffic=output_traffic,
            reused=reused,
            placement=placement,
            reuse_volumes=reuse_volumes,
            clusters_per_output=self._clusters_per_output(
                chain, schedule, tile, geometry
            ),
            feasible=not placement.spills_to_global,
        )

    def assemble(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: ClusterGeometry,
        core: SubchainAnalysis,
        gated_sequential: bool = False,
    ) -> DataflowResult:
        """Rebuild the full :class:`DataflowResult` from a cached core.

        Adds back exactly the kind-dependent pieces: the GEMM0 branch
        factor on the B traffic and the dsm_comm plan (which depends on
        the gated-sequential flag).  Scaling ``b_unit_traffic`` by the
        branch count is bit-identical to sizing B with both branches up
        front — the count is a power of two, so the multiplication is
        exact and commutes with the traffic factor.
        """
        cluster_blocks = geometry.blocks_per_cluster
        hierarchy = self._hierarchy_for(cluster_blocks if self.include_dsm else 1)

        volumes: Dict[str, float] = {name: 0.0 for name in hierarchy.names()}
        volumes.setdefault(MemoryLevelName.GLOBAL, 0.0)

        b_traffic = core.b_unit_traffic * chain.num_gemm0_branches
        input_traffic = (core.a_traffic + b_traffic) + core.d_traffic
        volumes[MemoryLevelName.GLOBAL] += input_traffic + core.output_traffic
        # Streamed operands pass through SMEM staging buffers on their way
        # to the tensor cores.
        if MemoryLevelName.SMEM in volumes:
            volumes[MemoryLevelName.SMEM] += input_traffic

        mapping = ResourceMapping()
        mapping.add(core.placement)
        for level_name, traffic in core.reuse_volumes.items():
            volumes[level_name] = volumes.get(level_name, 0.0) + traffic

        # ----- dsm_comm collectives ------------------------------------- #
        comm_plan = CommPlan.build(
            chain,
            geometry,
            clusters_per_output=core.clusters_per_output,
            gated_sequential=gated_sequential,
        )
        if self.include_dsm and geometry.uses_dsm:
            volumes[MemoryLevelName.DSM] = (
                volumes.get(MemoryLevelName.DSM, 0.0) + comm_plan.dsm_bytes()
            )
        else:
            # Without DSM the same exchanges would have to round-trip
            # through global memory.
            volumes[MemoryLevelName.GLOBAL] += 2.0 * comm_plan.dsm_bytes()
        volumes[MemoryLevelName.GLOBAL] += comm_plan.inter_cluster_bytes()

        return DataflowResult(
            chain=chain,
            schedule=schedule,
            tile=tile,
            geometry=geometry,
            volumes=volumes,
            mapping=mapping,
            reused=core.reused,
            comm_plan=comm_plan,
            feasible=core.feasible,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _hierarchy_for(self, cluster_blocks: int):
        """Memory hierarchy specialised to one cluster size (cached)."""
        if cluster_blocks not in self._hierarchy_cache:
            self._hierarchy_cache[cluster_blocks] = (
                self.device.memory_hierarchy_for_cluster(cluster_blocks)
            )
        return self._hierarchy_cache[cluster_blocks]

    def _budgets_for(self, cluster_blocks: int, include_dsm: bool):
        """Spill budgets for one cluster size (cached)."""
        key = (cluster_blocks, include_dsm)
        if key not in self._budget_cache:
            self._budget_cache[key] = default_budgets(
                self._hierarchy_for(cluster_blocks),
                include_dsm=include_dsm,
                register_reserve_fraction=self.register_reserve_fraction,
                smem_reserve_bytes=self.smem_reserve_bytes,
            )
        return self._budget_cache[key]

    def _clusters_per_output(
        self,
        chain: GemmChainSpec,
        schedule: LoopSchedule,
        tile: TileConfig,
        geometry: ClusterGeometry,
    ) -> int:
        """How many clusters contribute partial sums to one output tile.

        When the GEMM1 reduction dimension ``n`` is spatial and its extent
        exceeds what one cluster covers, partial outputs from different
        clusters must be merged with the TMA-based inter-cluster reduce.
        """
        if not schedule.is_spatial("n"):
            return 1
        covered = tile.block_n * geometry.cls_n
        extent = chain.n
        return max(1, -(-extent // covered))
