"""Tile configurations.

Tiling is defined at two hierarchical levels (Section IV-B2):

* the **block tile** (``tile.block``) — the data granularity one thread block
  computes along each dimension, and
* the **cluster tile** (``tile.cluster``) — the block tile multiplied by the
  per-dimension cluster size, i.e. the region one cluster covers.

Block tile sizes must be multiples of the MMA granularity (16); Rule 1
additionally requires them to divide the problem extents evenly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.dsm_comm.geometry import ClusterGeometry
from repro.hardware.cluster import ClusterLimits
from repro.ir.graph import GemmChainSpec


@dataclass(frozen=True)
class TileConfig:
    """Block-level tile sizes for the four chain dimensions.

    Parameters
    ----------
    block:
        Mapping from dimension name (m/n/k/l) to the block tile extent.
    """

    block_m: int
    block_n: int
    block_k: int
    block_l: int

    def __post_init__(self) -> None:
        for dim in ("m", "n", "k", "l"):
            if self.block_of(dim) <= 0:
                raise ValueError(f"block tile along {dim} must be positive")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def block_of(self, dim: str) -> int:
        """Block tile extent along ``dim``."""
        return {
            "m": self.block_m,
            "n": self.block_n,
            "k": self.block_k,
            "l": self.block_l,
        }[dim]

    def as_dict(self) -> Dict[str, int]:
        """Block tile extents keyed by dimension name."""
        return {dim: self.block_of(dim) for dim in ("m", "n", "k", "l")}

    def cluster_tile(self, geometry: ClusterGeometry) -> Dict[str, int]:
        """Cluster tile extents (block tile x per-dimension cluster size)."""
        return {
            dim: self.block_of(dim) * geometry.size_of(dim)
            for dim in ("m", "n", "k", "l")
        }

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #
    def respects_mma(self, limits: ClusterLimits) -> bool:
        """Whether every block tile is a multiple of the MMA granularity."""
        min_m, min_n, min_k = limits.mma_tile
        return (
            self.block_m % min_m == 0
            and self.block_n % min_n == 0
            and self.block_k % min_k == 0
            and self.block_l % min_n == 0
        )

    def divides_problem(
        self,
        chain: GemmChainSpec,
        geometry: ClusterGeometry,
        max_padding_waste: float = 0.0,
    ) -> bool:
        """Rule 1: the cluster tile evenly divides every problem extent.

        ``max_padding_waste`` relaxes the rule for irregular extents (for
        example the M = H*W*batch dimension of im2col-lowered convolutions):
        a cluster tile is accepted if padding the extent up to the next
        multiple wastes at most that fraction of the padded work.
        """
        cluster = self.cluster_tile(geometry)
        sizes = chain.dimension_sizes()
        for dim, tile in cluster.items():
            extent = sizes[dim]
            if extent % tile == 0:
                continue
            if max_padding_waste <= 0.0:
                return False
            padded = -(-extent // tile) * tile
            waste = (padded - extent) / padded
            if waste > max_padding_waste:
                return False
        return True

    def fits_problem(self, chain: GemmChainSpec) -> bool:
        """Whether no block tile exceeds its problem extent."""
        sizes = chain.dimension_sizes()
        return all(self.block_of(dim) <= sizes[dim] for dim in sizes)


def candidate_tile_sizes(
    extent: int,
    mma: int = 16,
    max_tile: int = 256,
    powers_of_two_only: bool = True,
) -> List[int]:
    """Candidate block tile extents for one dimension.

    Candidates are multiples of the MMA granularity that do not exceed
    ``max_tile`` or the problem extent, and (by default) are powers of two
    times the MMA size — the shapes CUTLASS tensor-core mainloops support.
    """
    if extent <= 0:
        raise ValueError("extent must be positive")
    candidates: List[int] = []
    tile = mma
    while tile <= min(max_tile, extent):
        candidates.append(tile)
        if powers_of_two_only:
            tile *= 2
        else:
            tile += mma
    if not candidates:
        candidates.append(min(mma, extent))
    return candidates


def enumerate_block_tiles(
    chain: GemmChainSpec,
    mma: int = 16,
    max_tile: int = 256,
    powers_of_two_only: bool = True,
) -> Iterator[TileConfig]:
    """Yield candidate block tile configurations for a chain."""
    sizes = chain.dimension_sizes()
    options = {
        dim: candidate_tile_sizes(
            sizes[dim], mma=mma, max_tile=max_tile, powers_of_two_only=powers_of_two_only
        )
        for dim in sizes
    }
    for block_m in options["m"]:
        for block_n in options["n"]:
            for block_k in options["k"]:
                for block_l in options["l"]:
                    yield TileConfig(block_m, block_n, block_k, block_l)


def count_unpruned_tiles(chain: GemmChainSpec, mma: int = 16) -> int:
    """Size of the raw tile-size space used for Table III's first row.

    The paper counts every multiple of the MMA granularity up to the problem
    extent per dimension, i.e. ``extent / 16`` choices per dimension.
    """
    sizes = chain.dimension_sizes()
    count = 1
    for extent in sizes.values():
        count *= max(1, extent // mma)
    return count
