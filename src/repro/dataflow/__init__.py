"""Dataflow analyzer (Section IV-B).

Given a loop schedule, tile sizes and a cluster geometry, the analyzer

* determines which intermediate tensor must persist on chip and how large it
  is (:mod:`repro.dataflow.footprint`),
* greedily places it across the memory hierarchy, spilling from registers to
  SMEM to DSM to global memory (:mod:`repro.dataflow.resource_map`),
* and charges data-movement volume to every memory tier
  (:mod:`repro.dataflow.analyzer`, Algorithm 1 of the paper).

Loop-schedule enumeration (Table IV) lives in
:mod:`repro.dataflow.loop_schedule` and tile-size handling in
:mod:`repro.dataflow.tiling`.
"""

from repro.dataflow.analyzer import DataflowAnalyzer, DataflowResult
from repro.dataflow.footprint import (
    TENSOR_DIMS,
    block_tile_footprint,
    reused_tensor_footprint,
    tensor_size_bytes,
)
from repro.dataflow.loop_schedule import LoopSchedule, enumerate_schedules
from repro.dataflow.resource_map import ResourceMapping, TensorPlacement, greedy_place
from repro.dataflow.tiling import TileConfig, enumerate_block_tiles

__all__ = [
    "DataflowAnalyzer",
    "DataflowResult",
    "TENSOR_DIMS",
    "block_tile_footprint",
    "reused_tensor_footprint",
    "tensor_size_bytes",
    "LoopSchedule",
    "enumerate_schedules",
    "ResourceMapping",
    "TensorPlacement",
    "greedy_place",
    "TileConfig",
    "enumerate_block_tiles",
]
