"""Tensor footprints and reuse analysis.

The fused two-GEMM chain touches five logical tensors:

========  ==========  =======================================
tensor    dimensions  role
========  ==========  =======================================
``A``     (m, k)      input activation
``B``     (k, n)      GEMM0 weight (two copies for gated FFN)
``C``     (m, n)      intermediate (activation applied)
``D``     (n, l)      GEMM1 weight
``E``     (m, l)      output
========  ==========  =======================================

This module computes block-tile footprints, whole-tensor sizes, and — the
part that drives the spilling decision of Figure 9 — the footprint of the
tensor that must *persist* on chip for a given loop schedule, together with
how many times it is re-accessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.ir.graph import GemmChainSpec

#: Loop dimensions each logical tensor is indexed by.
TENSOR_DIMS: Dict[str, Tuple[str, ...]] = {
    "A": ("m", "k"),
    "B": ("k", "n"),
    "C": ("m", "n"),
    "D": ("n", "l"),
    "E": ("m", "l"),
}

#: Accumulators are kept in FP32 regardless of the storage datatype.
ACCUMULATOR_ITEMSIZE = 4


def tensor_size_bytes(
    tensor: str, chain: GemmChainSpec, branches: Optional[int] = None
) -> int:
    """Whole-tensor size in bytes (both weight branches for a gated B).

    ``branches`` overrides the chain's own GEMM0 branch count; passing 1
    yields the single-branch (standard-FFN) size of B, which the
    incremental analysis cache scales back up per chain kind.
    """
    dims = TENSOR_DIMS[tensor]
    sizes = chain.dimension_sizes()
    elements = 1
    for dim in dims:
        elements *= sizes[dim]
    if branches is None:
        branches = chain.num_gemm0_branches if tensor == "B" else 1
    return elements * chain.itemsize * branches


def block_tile_footprint(
    tensor: str, tile: TileConfig, itemsize: int, branches: int = 1
) -> int:
    """Bytes one block tile of ``tensor`` occupies."""
    dims = TENSOR_DIMS[tensor]
    elements = 1
    for dim in dims:
        elements *= tile.block_of(dim)
    return elements * itemsize * branches


def cluster_tile_footprint(
    tensor: str,
    tile: TileConfig,
    geometry: ClusterGeometry,
    itemsize: int,
    branches: int = 1,
) -> int:
    """Bytes one cluster tile of ``tensor`` occupies."""
    dims = TENSOR_DIMS[tensor]
    cluster = tile.cluster_tile(geometry)
    elements = 1
    for dim in dims:
        elements *= cluster[dim]
    return elements * itemsize * branches


@dataclass(frozen=True)
class ReusedTensorInfo:
    """Description of the intermediate data that must persist on chip.

    Parameters
    ----------
    tensor:
        ``"C"`` when the full intermediate row must be kept (l-outer
        schedules) or ``"E"`` when partial output accumulators must persist
        across the n loop (n-outer schedules).
    footprint_bytes:
        On-chip bytes required per cluster.
    reuse_trips:
        How many temporal iterations re-access the persistent data.
    accesses_per_trip:
        1 for read-only reuse of C, 2 for the read-modify-write accumulation
        of partial E.
    """

    tensor: str
    footprint_bytes: int
    reuse_trips: int
    accesses_per_trip: int

    @property
    def reuse_traffic_per_byte(self) -> int:
        """How many times each persistent byte moves during the kernel."""
        return self.reuse_trips * self.accesses_per_trip


def temporal_trip_count(
    dim: str,
    chain: GemmChainSpec,
    schedule: LoopSchedule,
    tile: TileConfig,
    geometry: ClusterGeometry,
) -> int:
    """Number of sequential iterations of ``dim``.

    Spatial dimensions are covered by parallel units, so their sequential
    trip count is one (line 5 of Algorithm 1: the effective size of a spatial
    dimension is its tile size).
    """
    if schedule.is_spatial(dim):
        return 1
    extent = chain.dimension_sizes()[dim]
    cluster_extent = tile.block_of(dim) * geometry.size_of(dim)
    return max(1, -(-extent // cluster_extent))  # ceil division


def reused_tensor_footprint(
    chain: GemmChainSpec,
    schedule: LoopSchedule,
    tile: TileConfig,
    geometry: ClusterGeometry,
) -> ReusedTensorInfo:
    """Determine which intermediate persists on chip and how large it is.

    The decision follows Figure 9:

    * If the temporal ``l`` loop is nested outside the temporal ``n`` loop
      (an "MLNK"-style order), the complete intermediate row of C — the
      cluster's M tile by the *full* N extent — must be kept and is re-read
      on every ``l`` iteration.
    * If the temporal ``n`` loop is outside ``l`` ("MNLK"-style), partial
      output accumulators — the cluster's M tile by the full L extent, in
      FP32 — persist and are read-modified-written on every ``n`` iteration.
    * If ``n`` is spatial (its extent covered by parallel blocks), only the
      cluster tile of C must be live; it is reused across the temporal ``l``
      iterations (or consumed immediately if ``l`` is also spatial).
    * If ``l`` is spatial but ``n`` temporal, partial output accumulators of
      the cluster's (M, L) tile persist across the ``n`` iterations.
    """
    sizes = chain.dimension_sizes()
    cluster = tile.cluster_tile(geometry)
    m_tile = min(cluster["m"], sizes["m"])
    itemsize = chain.itemsize

    n_temporal = schedule.is_temporal("n")
    l_temporal = schedule.is_temporal("l")

    if n_temporal and l_temporal:
        if schedule.is_outer_than("l", "n"):
            footprint = m_tile * sizes["n"] * itemsize
            trips = temporal_trip_count("l", chain, schedule, tile, geometry)
            return ReusedTensorInfo("C", footprint, trips, accesses_per_trip=1)
        footprint = m_tile * sizes["l"] * ACCUMULATOR_ITEMSIZE
        trips = temporal_trip_count("n", chain, schedule, tile, geometry)
        return ReusedTensorInfo("E", footprint, trips, accesses_per_trip=2)

    if not n_temporal and l_temporal:
        footprint = m_tile * min(cluster["n"], sizes["n"]) * itemsize
        trips = temporal_trip_count("l", chain, schedule, tile, geometry)
        return ReusedTensorInfo("C", footprint, trips, accesses_per_trip=1)

    if n_temporal and not l_temporal:
        footprint = m_tile * min(cluster["l"], sizes["l"]) * ACCUMULATOR_ITEMSIZE
        trips = temporal_trip_count("n", chain, schedule, tile, geometry)
        return ReusedTensorInfo("E", footprint, trips, accesses_per_trip=2)

    # Both n and l spatial: the intermediate cluster tile is produced and
    # consumed in place (through the shuffle); nothing is re-read.
    footprint = m_tile * min(cluster["n"], sizes["n"]) * itemsize
    return ReusedTensorInfo("C", footprint, reuse_trips=1, accesses_per_trip=1)


#: Loop dimensions whose sequential iteration forces one full re-streaming of
#: a tensor from global memory.  The structure of the fused two-GEMM chain
#: determines these: the input activation A(m, k) is consumed once per
#: intermediate tile, i.e. once per n iteration; the GEMM0 weight B(k, n) and
#: the GEMM1 weight D(n, l) are consumed once per output row block, i.e. once
#: per m iteration; the output E is written exactly once (partial-sum spills
#: are charged separately through the reused-tensor placement).
_RESTREAM_DIMS: Dict[str, Tuple[str, ...]] = {
    "A": ("n",),
    "B": ("m",),
    "D": ("m",),
    "E": (),
}


def io_tensor_traffic(
    tensor: str,
    chain: GemmChainSpec,
    schedule: LoopSchedule,
    tile: TileConfig,
    geometry: ClusterGeometry,
    branches: Optional[int] = None,
) -> float:
    """Global-memory traffic of one input/output tensor in bytes.

    A tensor is streamed tile-by-tile and contributes its full size once,
    multiplied by the trip count of every *temporal* loop that forces it to
    be re-streamed (see :data:`_RESTREAM_DIMS`).  Spatial dimensions are
    covered by parallel units and contribute a factor of one — reuse across
    blocks is served by L2 multicast, matching Algorithm 1's treatment of
    spatial dimensions.  ``branches`` forwards to
    :func:`tensor_size_bytes` (single-branch sizing for the incremental
    analysis cache).
    """
    size = tensor_size_bytes(tensor, chain, branches=branches)
    factor = 1.0
    for dim in _RESTREAM_DIMS[tensor]:
        if schedule.is_temporal(dim):
            factor *= temporal_trip_count(dim, chain, schedule, tile, geometry)
    return float(size) * factor
