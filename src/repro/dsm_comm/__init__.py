"""The ``dsm_comm`` primitive: cluster-level communication abstraction.

Section IV-A of the paper introduces a small set of primitives that describe
every inter-SM data exchange a fused kernel needs:

* :data:`~repro.dsm_comm.primitives.PrimitiveKind.ALL_EXCHANGE` — intra-
  cluster all-reduce (Add, or Mul for gated FFNs) of partial sums produced by
  spatially partitioning the K dimension,
* :data:`~repro.dsm_comm.primitives.PrimitiveKind.SHUFFLE` — ring exchange of
  intermediate-C slices within a shuffle group so every block sees the full
  row it needs for GEMM1,
* :data:`~repro.dsm_comm.primitives.PrimitiveKind.REDUCE_SCATTER` — intra-
  cluster accumulation of partial E tiles across shuffle groups,
* :data:`~repro.dsm_comm.primitives.PrimitiveKind.INTER_CLUSTER_REDUCE` —
  TMA-based atomic reduction across clusters through L2/global memory.

The geometry that drives them lives in
:class:`~repro.dsm_comm.geometry.ClusterGeometry`; tile-level dataflow graphs
(Figure 8) in :mod:`repro.dsm_comm.tile_graph`; and NumPy reference
implementations, used by the functional executor to prove the fused dataflow
correct, in :mod:`repro.dsm_comm.functional`.
"""

from repro.dsm_comm.functional import (
    dsm_all_exchange,
    dsm_reduce_scatter,
    dsm_shuffle,
    inter_cluster_reduce,
)
from repro.dsm_comm.geometry import ClusterGeometry
from repro.dsm_comm.primitives import CommPlan, DsmPrimitive, PrimitiveKind
from repro.dsm_comm.tile_graph import TileGraph, TileNode, build_tile_graph

__all__ = [
    "ClusterGeometry",
    "CommPlan",
    "DsmPrimitive",
    "PrimitiveKind",
    "TileGraph",
    "TileNode",
    "build_tile_graph",
    "dsm_all_exchange",
    "dsm_reduce_scatter",
    "dsm_shuffle",
    "inter_cluster_reduce",
]
