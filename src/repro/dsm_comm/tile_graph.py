"""Tile graphs: the dataflow picture of Figure 8.

A tile graph makes the fused kernel's cluster-level dataflow explicit: nodes
are per-block tile computations (matmul, activation, elementwise) or
dsm_comm collectives, and edges carry tiles between them.  The graph serves
three purposes in the reproduction:

* it is the structure the code generator walks when emitting the prologue /
  mainloop / epilogue of a fused kernel,
* the functional executor follows it to compute real NumPy results,
* tests assert structural properties on it (e.g. a gated FFN's first
  exchange is a Mul, a standard FFN's is an Add).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.dsm_comm.geometry import ClusterGeometry
from repro.dsm_comm.primitives import CombineOp, PrimitiveKind
from repro.ir.graph import ChainKind, GemmChainSpec


class TileOpKind(Enum):
    """Node kinds appearing in a tile graph."""

    MATMUL = "matmul"
    ACTIVATION = "activation"
    ELEMENTWISE = "elementwise"
    ALL_EXCHANGE = PrimitiveKind.ALL_EXCHANGE.value
    SHUFFLE = PrimitiveKind.SHUFFLE.value
    REDUCE_SCATTER = PrimitiveKind.REDUCE_SCATTER.value
    STORE = "store"


@dataclass(frozen=True)
class TileNode:
    """One node of the tile graph.

    ``coords`` identifies which block of the cluster owns the node (its
    (m, n, k) position for GEMM0-phase nodes, (m, l) position for
    GEMM1/store-phase nodes); ``phase`` is one of ``"gemm0"``, ``"gemm1"``
    or ``"store"``.
    """

    name: str
    kind: TileOpKind
    phase: str
    coords: Tuple[int, ...] = ()
    combine: CombineOp = CombineOp.NONE


@dataclass
class TileGraph:
    """The cluster-level dataflow graph of one fused kernel."""

    chain: GemmChainSpec
    geometry: ClusterGeometry
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_node(self, node: TileNode) -> TileNode:
        """Insert a node (name must be unique)."""
        if self.graph.has_node(node.name):
            raise ValueError(f"duplicate tile node {node.name!r}")
        self.graph.add_node(node.name, node=node)
        return node

    def add_edge(self, src: TileNode, dst: TileNode) -> None:
        """Connect two previously added nodes."""
        for endpoint in (src, dst):
            if not self.graph.has_node(endpoint.name):
                raise ValueError(f"unknown tile node {endpoint.name!r}")
        self.graph.add_edge(src.name, dst.name)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self, kind: Optional[TileOpKind] = None) -> List[TileNode]:
        """All nodes, optionally filtered by kind."""
        found = [data["node"] for _, data in self.graph.nodes(data=True)]
        if kind is not None:
            found = [node for node in found if node.kind is kind]
        return found

    def nodes_in_phase(self, phase: str) -> List[TileNode]:
        """All nodes belonging to one execution phase."""
        return [node for node in self.nodes() if node.phase == phase]

    def communication_nodes(self) -> List[TileNode]:
        """Nodes that are dsm_comm collectives."""
        comm_kinds = {
            TileOpKind.ALL_EXCHANGE,
            TileOpKind.SHUFFLE,
            TileOpKind.REDUCE_SCATTER,
        }
        return [node for node in self.nodes() if node.kind in comm_kinds]

    def is_acyclic(self) -> bool:
        """Whether the dataflow is a DAG (it always should be)."""
        return nx.is_directed_acyclic_graph(self.graph)

    def topological_order(self) -> List[TileNode]:
        """Nodes in a valid execution order."""
        return [self.graph.nodes[name]["node"] for name in nx.topological_sort(self.graph)]


def build_tile_graph(chain: GemmChainSpec, geometry: ClusterGeometry) -> TileGraph:
    """Construct the Figure 8 tile graph for one cluster.

    The graph covers a single cluster tile: ``cls_m x cls_n x cls_k`` blocks
    in the GEMM0 phase, regrouped into shuffle groups for the GEMM1 phase and
    reduce groups for the store phase.
    """
    tile_graph = TileGraph(chain=chain, geometry=geometry)
    gated = chain.kind is ChainKind.GATED_FFN
    exchange_combine = CombineOp.MUL if gated else CombineOp.ADD

    # ---------------- GEMM0 phase ---------------- #
    # One matmul node per (m, n, k) block coordinate; K-partition partials
    # meet in an all_exchange node per (m, n) coordinate.
    gemm0_outputs: Dict[Tuple[int, int], TileNode] = {}
    for mi in range(geometry.cls_m):
        for ni in range(geometry.cls_n):
            partials: List[TileNode] = []
            for ki in range(geometry.cls_k):
                matmul = tile_graph.add_node(
                    TileNode(
                        name=f"gemm0_m{mi}_n{ni}_k{ki}",
                        kind=TileOpKind.MATMUL,
                        phase="gemm0",
                        coords=(mi, ni, ki),
                    )
                )
                partials.append(matmul)
            if geometry.needs_all_exchange or gated:
                exchange = tile_graph.add_node(
                    TileNode(
                        name=f"all_exchange_m{mi}_n{ni}",
                        kind=TileOpKind.ALL_EXCHANGE,
                        phase="gemm0",
                        coords=(mi, ni),
                        combine=exchange_combine,
                    )
                )
                for partial in partials:
                    tile_graph.add_edge(partial, exchange)
                c_tile = exchange
            else:
                c_tile = partials[0]
            activation = tile_graph.add_node(
                TileNode(
                    name=f"act_m{mi}_n{ni}",
                    kind=TileOpKind.ACTIVATION,
                    phase="gemm0",
                    coords=(mi, ni),
                )
            )
            tile_graph.add_edge(c_tile, activation)
            gemm0_outputs[(mi, ni)] = activation

    # ---------------- GEMM1 phase ---------------- #
    # Shuffle groups gather the C slices a block needs, then each block
    # multiplies with its D tile to produce a partial E.
    gemm1_partials: Dict[Tuple[int, int], List[TileNode]] = {}
    shuffle_size = geometry.cls_shuffle
    for mi in range(geometry.cls_m):
        n_coords = list(range(geometry.cls_n))
        groups = [
            n_coords[start : start + shuffle_size]
            for start in range(0, len(n_coords), shuffle_size)
        ]
        for group_index, group in enumerate(groups):
            sources = [gemm0_outputs[(mi, ni)] for ni in group]
            if geometry.needs_shuffle:
                shuffle = tile_graph.add_node(
                    TileNode(
                        name=f"shuffle_m{mi}_g{group_index}",
                        kind=TileOpKind.SHUFFLE,
                        phase="gemm1",
                        coords=(mi, group_index),
                    )
                )
                for source in sources:
                    tile_graph.add_edge(source, shuffle)
                c_source: TileNode = shuffle
            else:
                c_source = sources[0]
            for li in range(geometry.cls_l // max(1, geometry.cls_k)):
                matmul = tile_graph.add_node(
                    TileNode(
                        name=f"gemm1_m{mi}_g{group_index}_l{li}",
                        kind=TileOpKind.MATMUL,
                        phase="gemm1",
                        coords=(mi, group_index, li),
                    )
                )
                tile_graph.add_edge(c_source, matmul)
                gemm1_partials.setdefault((mi, li), []).append(matmul)

    # ---------------- Store phase ---------------- #
    for (mi, li), partials in gemm1_partials.items():
        if len(partials) > 1 and geometry.needs_reduce_scatter:
            reduce_node = tile_graph.add_node(
                TileNode(
                    name=f"reduce_m{mi}_l{li}",
                    kind=TileOpKind.REDUCE_SCATTER,
                    phase="store",
                    coords=(mi, li),
                    combine=CombineOp.ADD,
                )
            )
            for partial in partials:
                tile_graph.add_edge(partial, reduce_node)
            final = reduce_node
        else:
            final = partials[0]
        store = tile_graph.add_node(
            TileNode(
                name=f"store_m{mi}_l{li}",
                kind=TileOpKind.STORE,
                phase="store",
                coords=(mi, li),
            )
        )
        tile_graph.add_edge(final, store)

    return tile_graph
