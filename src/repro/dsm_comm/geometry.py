"""Cluster geometry: how a fused GEMM chain maps onto a thread-block cluster.

Following Section IV-A, a fused two-GEMM kernel is parameterised by

* ``cls_i`` — the number of parallel blocks a cluster devotes to loop
  dimension ``i`` (for i in m, n, k, l), and
* ``blk_i`` — the data granularity one block computes along dimension ``i``.

Two derived quantities fully determine the communication pattern:

* ``cls_shuffle = cls_l / cls_k`` — blocks per shuffle group, and
* ``cls_reduce = cls_n * cls_k / cls_l`` — shuffle groups that accumulate one
  output tile during the store phase.

Figure 7 walks through cluster sizes (2, 4, 2, 4) and (2, 4, 2, 8): the
latter has ``cls_reduce = 1`` (no scatter-reduce needed) at the price of a
larger shuffle group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.hardware.cluster import ClusterLimits


@dataclass(frozen=True)
class ClusterGeometry:
    """Per-dimension cluster sizes of one fused kernel.

    Parameters
    ----------
    cls_m, cls_n, cls_k, cls_l:
        Number of parallel blocks along each loop dimension.  ``cls_l`` must
        be divisible by ``cls_k`` and ``cls_n * cls_k`` divisible by
        ``cls_l`` so the derived shuffle/reduce group sizes are integral.
    """

    cls_m: int
    cls_n: int
    cls_k: int
    cls_l: int

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.cls_l % self.cls_k != 0:
            raise ValueError(
                "cls_l must be divisible by cls_k so the shuffle group size "
                f"is integral (cls_l={self.cls_l}, cls_k={self.cls_k})"
            )
        if (self.cls_n * self.cls_k) % self.cls_l != 0:
            raise ValueError(
                "cls_n * cls_k must be divisible by cls_l so the reduce "
                f"group count is integral (cls_n={self.cls_n}, "
                f"cls_k={self.cls_k}, cls_l={self.cls_l})"
            )

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, int]:
        """Per-dimension sizes keyed by ``cls_m`` ... ``cls_l``."""
        return {
            "cls_m": self.cls_m,
            "cls_n": self.cls_n,
            "cls_k": self.cls_k,
            "cls_l": self.cls_l,
        }

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Sizes in (m, n, k, l) order."""
        return (self.cls_m, self.cls_n, self.cls_k, self.cls_l)

    def size_of(self, dim: str) -> int:
        """Cluster size along loop dimension ``dim`` (one of m/n/k/l)."""
        return {"m": self.cls_m, "n": self.cls_n, "k": self.cls_k, "l": self.cls_l}[dim]

    @property
    def blocks_per_cluster(self) -> int:
        """Number of thread blocks in the cluster.

        One block exists per (m, n, k) coordinate of GEMM0; those same blocks
        are re-purposed in the GEMM1/store phases, so the count is
        ``cls_m * cls_n * cls_k``.
        """
        return self.cls_m * self.cls_n * self.cls_k

    @property
    def cls_shuffle(self) -> int:
        """Blocks per shuffle group (``cls_l / cls_k``)."""
        return self.cls_l // self.cls_k

    @property
    def cls_reduce(self) -> int:
        """Shuffle groups reduced together in the store phase."""
        return (self.cls_n * self.cls_k) // self.cls_l

    @property
    def uses_dsm(self) -> bool:
        """Whether the geometry requires any inter-block communication."""
        return self.blocks_per_cluster > 1

    @property
    def needs_all_exchange(self) -> bool:
        """Whether GEMM0 partial sums must be combined (K is split)."""
        return self.cls_k > 1

    @property
    def needs_shuffle(self) -> bool:
        """Whether C slices must be exchanged before GEMM1."""
        return self.cls_shuffle > 1

    @property
    def needs_reduce_scatter(self) -> bool:
        """Whether partial E tiles must be reduced across shuffle groups."""
        return self.cls_reduce > 1

    # ------------------------------------------------------------------ #
    # Validation against hardware limits
    # ------------------------------------------------------------------ #
    def is_valid(self, limits: ClusterLimits) -> bool:
        """Whether the geometry respects the hardware cluster limits.

        Implements pruning Rule 2: the block count per cluster must not
        exceed the hardware maximum and every per-dimension size must come
        from the allowed set.
        """
        if not limits.cluster_product_ok(self.cls_m, self.cls_n, self.cls_k):
            return False
        return all(limits.dim_size_allowed(size) for size in self.as_tuple())

    # ------------------------------------------------------------------ #
    # Enumeration helper used by the search space construction
    # ------------------------------------------------------------------ #
    @classmethod
    def enumerate(
        cls, limits: ClusterLimits, validate: bool = False
    ) -> Iterator["ClusterGeometry"]:
        """Yield cluster geometries drawn from the allowed dimension sizes.

        With ``validate=False`` (the default) every combination of allowed
        per-dimension sizes that satisfies the divisibility requirements is
        yielded — this is the *initial* search space of Section IV-C whose
        size the pruning cascade of Table III then reduces.  With
        ``validate=True`` only geometries that pass :meth:`is_valid` are
        yielded.
        """
        sizes = limits.allowed_dim_sizes
        for cls_m in sizes:
            for cls_n in sizes:
                for cls_k in sizes:
                    for cls_l in sizes:
                        if cls_l % cls_k != 0:
                            continue
                        if (cls_n * cls_k) % cls_l != 0:
                            continue
                        geometry = cls(cls_m, cls_n, cls_k, cls_l)
                        if validate and not geometry.is_valid(limits):
                            continue
                        yield geometry

    @classmethod
    def single_block(cls) -> "ClusterGeometry":
        """The degenerate geometry of one block (no DSM communication)."""
        return cls(1, 1, 1, 1)
