"""DSM communication primitives and their traffic model.

Each primitive describes one collective exchange inside a thread-block
cluster.  Volumes are modelled analytically for the *whole problem* — every
element of the intermediate matrix C participates in exactly one
all-exchange and one shuffle, and every element of the output E in one
scatter-reduce — so the totals are independent of how the temporal loops are
ordered.  The dataflow analyzer combines these totals with the per-level
traffic of inputs and outputs.

The ring-based accounting mirrors the paper's implementation (TMA transfers
with ``mbarrier`` synchronisation arranged as ring communication):

* **all_exchange** over a group of ``g = cls_k`` blocks: a ring all-reduce
  moves ``2 (g-1)/g`` times the tile per block, i.e. ``2 (g-1)/g`` times the
  total C volume overall.
* **shuffle** over a group of ``g = cls_shuffle`` blocks: every block
  receives the ``g-1`` slices it does not own, i.e. ``g-1`` times the C
  volume overall.
* **reduce_scatter** over ``g = cls_reduce`` shuffle groups: the ``g``
  partial copies of E are combined into one, moving ``g-1`` times the E
  volume through DSM.
* **inter_cluster_reduce**: partial outputs of different clusters are merged
  with TMA ``cp.reduce.async.bulk`` atomics; this traffic goes to L2/global
  memory, not DSM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.dsm_comm.geometry import ClusterGeometry
from repro.hardware.dsm import DsmModel
from repro.ir.graph import ChainKind, GemmChainSpec


class PrimitiveKind(Enum):
    """The four dsm_comm collectives of Section IV-A."""

    ALL_EXCHANGE = "dsm_all_exchange"
    SHUFFLE = "dsm_shuffle"
    REDUCE_SCATTER = "dsm_reduce_scatter"
    INTER_CLUSTER_REDUCE = "inter_cluster_reduce"


class CombineOp(Enum):
    """Element combination applied while exchanging."""

    ADD = "add"
    MUL = "mul"
    NONE = "none"


@dataclass(frozen=True)
class DsmPrimitive:
    """One collective exchange of a fused kernel.

    Parameters
    ----------
    kind:
        Which collective this is.
    group_size:
        Number of participants (blocks for intra-cluster primitives,
        clusters for the inter-cluster reduce).
    combine:
        Element combination applied on arrival (Add, Mul or none).
    volume_bytes:
        Total bytes moved by this primitive over the whole problem.
    invocations:
        How many times the collective is issued (one per cluster-tile).
    """

    kind: PrimitiveKind
    group_size: int
    combine: CombineOp
    volume_bytes: float
    invocations: int

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.volume_bytes < 0:
            raise ValueError("volume_bytes must be non-negative")
        if self.invocations < 0:
            raise ValueError("invocations must be non-negative")

    @property
    def uses_dsm(self) -> bool:
        """Whether the traffic travels over the SM-to-SM fabric."""
        return self.kind is not PrimitiveKind.INTER_CLUSTER_REDUCE

    def time_us(self, dsm: DsmModel, cluster_size: int, clock_ghz: float) -> float:
        """Estimated time of this primitive's traffic in microseconds.

        Bandwidth term plus a per-invocation latency term; inter-cluster
        reductions are charged at global-memory bandwidth instead.
        """
        if self.volume_bytes == 0:
            return 0.0
        if self.uses_dsm:
            bandwidth_gbps = dsm.bandwidth_gbps(max(cluster_size, 2))
            latency_cycles = dsm.latency(max(cluster_size, 2))
        else:
            bandwidth_gbps = dsm.global_bandwidth_tbps * 1e3
            latency_cycles = dsm.global_latency_cycles
        bandwidth_time = self.volume_bytes / (bandwidth_gbps * 1e3)
        latency_time = self.invocations * latency_cycles / (clock_ghz * 1e3)
        return bandwidth_time + latency_time


@dataclass
class CommPlan:
    """The complete set of collectives a fused kernel issues.

    Built by :meth:`CommPlan.build` from a chain spec and a cluster
    geometry.  The plan is what the dataflow analyzer charges against the
    DSM tier and what the code generator lowers into prologue / mainloop /
    epilogue communication.
    """

    chain: GemmChainSpec
    geometry: ClusterGeometry
    primitives: List[DsmPrimitive] = field(default_factory=list)
    #: Number of clusters cooperating on one output tile along the GEMM1
    #: reduction dimension; > 1 triggers the inter-cluster reduce.
    clusters_per_output: int = 1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        chain: GemmChainSpec,
        geometry: ClusterGeometry,
        clusters_per_output: int = 1,
        gated_sequential: bool = False,
    ) -> "CommPlan":
        """Derive the collectives implied by ``geometry`` for ``chain``.

        Parameters
        ----------
        chain:
            The fused GEMM chain.
        geometry:
            Per-dimension cluster sizes.
        clusters_per_output:
            How many clusters produce partial sums of the same output tile;
            values above one add an :data:`PrimitiveKind.INTER_CLUSTER_REDUCE`.
        gated_sequential:
            For gated FFNs, choose the sequential mapping (both branches run
            in the same block with a doubled K) instead of the spatial
            mapping (branches split across the cls_k partition).  The
            sequential mapping removes the Mul exchange at the price of a
            longer mainloop.
        """
        primitives: List[DsmPrimitive] = []
        c_bytes = chain.c_bytes
        e_bytes = chain.e_bytes
        cluster_tiles = cls._cluster_tile_count(chain, geometry)

        gated_spatial = chain.kind is ChainKind.GATED_FFN and not gated_sequential

        if geometry.needs_all_exchange or gated_spatial:
            group = max(geometry.cls_k, 2 if gated_spatial else geometry.cls_k)
            combine = CombineOp.MUL if gated_spatial else CombineOp.ADD
            volume = 2.0 * (group - 1) / group * c_bytes
            primitives.append(
                DsmPrimitive(
                    kind=PrimitiveKind.ALL_EXCHANGE,
                    group_size=group,
                    combine=combine,
                    volume_bytes=volume,
                    invocations=cluster_tiles,
                )
            )

        if geometry.needs_shuffle:
            group = geometry.cls_shuffle
            primitives.append(
                DsmPrimitive(
                    kind=PrimitiveKind.SHUFFLE,
                    group_size=group,
                    combine=CombineOp.NONE,
                    volume_bytes=float(group - 1) * c_bytes,
                    invocations=cluster_tiles,
                )
            )

        if geometry.needs_reduce_scatter:
            group = geometry.cls_reduce
            primitives.append(
                DsmPrimitive(
                    kind=PrimitiveKind.REDUCE_SCATTER,
                    group_size=group,
                    combine=CombineOp.ADD,
                    volume_bytes=float(group - 1) * e_bytes,
                    invocations=cluster_tiles,
                )
            )

        if clusters_per_output > 1:
            primitives.append(
                DsmPrimitive(
                    kind=PrimitiveKind.INTER_CLUSTER_REDUCE,
                    group_size=clusters_per_output,
                    combine=CombineOp.ADD,
                    volume_bytes=float(clusters_per_output - 1) * e_bytes,
                    invocations=cluster_tiles,
                )
            )

        return cls(
            chain=chain,
            geometry=geometry,
            primitives=primitives,
            clusters_per_output=clusters_per_output,
        )

    @staticmethod
    def _cluster_tile_count(chain: GemmChainSpec, geometry: ClusterGeometry) -> int:
        """How many cluster-sized tiles cover the problem (invocation count).

        The collectives are issued once per cluster tile of the output space
        (M x L) combined with the K partition handled inside the cluster.
        A conservative estimate based on the minimum MMA granularity is
        sufficient for the latency term, which is tiny next to the bandwidth
        term for the problem sizes of interest.
        """
        blocks = geometry.blocks_per_cluster
        # Work items at MMA granularity along M and L (the output space).
        tiles_m = max(1, chain.m // 128)
        tiles_l = max(1, chain.l // 128)
        return max(1, (tiles_m * tiles_l) // max(1, blocks))

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def dsm_bytes(self) -> float:
        """Total bytes moved over the SM-to-SM fabric."""
        return sum(p.volume_bytes for p in self.primitives if p.uses_dsm)

    def inter_cluster_bytes(self) -> float:
        """Total bytes of inter-cluster (global/L2) reduction traffic."""
        return sum(p.volume_bytes for p in self.primitives if not p.uses_dsm)

    def has_primitive(self, kind: PrimitiveKind) -> bool:
        """Whether the plan contains a collective of the given kind."""
        return any(p.kind is kind for p in self.primitives)

    def get(self, kind: PrimitiveKind) -> Optional[DsmPrimitive]:
        """Return the collective of the given kind if present."""
        for primitive in self.primitives:
            if primitive.kind is kind:
                return primitive
        return None

    def time_us(self, dsm: DsmModel, clock_ghz: float) -> float:
        """Total estimated communication time in microseconds."""
        cluster_size = max(2, self.geometry.blocks_per_cluster)
        cluster_size = min(cluster_size, dsm.max_cluster_size)
        return sum(
            primitive.time_us(dsm, cluster_size, clock_ghz)
            for primitive in self.primitives
        )
