"""NumPy reference implementations of the dsm_comm collectives.

On real hardware the primitives move tiles between SMs through distributed
shared memory.  Here each "block" is represented by the NumPy array it holds
in its shared memory, and a collective is a pure function from the list of
per-block arrays to the list of per-block results.  The functional executor
(:mod:`repro.sim.executor`) stitches these together to run an entire fused
FFN tile-by-tile and compare against the unfused reference — the
reproduction's substitute for validating generated CUDA kernels.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

ArrayList = List[np.ndarray]

_COMBINE_FUNCTIONS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "mul": np.multiply,
}


def _check_group(blocks: Sequence[np.ndarray]) -> None:
    if not blocks:
        raise ValueError("a collective needs at least one participating block")
    first_shape = blocks[0].shape
    for array in blocks:
        if array.shape != first_shape:
            raise ValueError(
                "all participating blocks must hold identically shaped tiles: "
                f"{first_shape} vs {array.shape}"
            )


def _combine(op: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    if op not in _COMBINE_FUNCTIONS:
        raise ValueError(f"unsupported combine op {op!r}; expected 'add' or 'mul'")
    return _COMBINE_FUNCTIONS[op]


def dsm_all_exchange(blocks: Sequence[np.ndarray], op: str = "add") -> ArrayList:
    """All-exchange: every block ends with the combination of all tiles.

    This is the collective issued after GEMM0 when the K dimension is
    spatially partitioned (``op="add"``) or when the two branches of a gated
    FFN live on different blocks (``op="mul"``).
    """
    _check_group(blocks)
    combine = _combine(op)
    result = blocks[0].copy()
    for array in blocks[1:]:
        result = combine(result, array)
    return [result.copy() for _ in blocks]


def dsm_shuffle(blocks: Sequence[np.ndarray], axis: int = -1) -> ArrayList:
    """Shuffle: every block gathers the slices owned by its group peers.

    Each block holds one slice of the intermediate matrix C along ``axis``;
    after the shuffle every block holds the concatenation of all slices in
    group order, which is exactly the full row of C that GEMM1 needs.
    """
    _check_group(blocks)
    gathered = np.concatenate(list(blocks), axis=axis)
    return [gathered.copy() for _ in blocks]


def dsm_reduce_scatter(
    blocks: Sequence[np.ndarray], op: str = "add", axis: int = -1
) -> ArrayList:
    """Reduce-scatter: partial sums are combined and each block keeps a shard.

    The ``g`` participating blocks hold ``g`` partial copies of the same
    output tile.  They are reduced elementwise and the result is split along
    ``axis`` so block ``i`` owns shard ``i`` — avoiding redundant writes in
    the store phase, as Section IV-A describes.
    """
    _check_group(blocks)
    combine = _combine(op)
    reduced = blocks[0].copy()
    for array in blocks[1:]:
        reduced = combine(reduced, array)
    shards = np.array_split(reduced, len(blocks), axis=axis)
    return [shard.copy() for shard in shards]


def inter_cluster_reduce(
    cluster_partials: Sequence[np.ndarray], op: str = "add"
) -> np.ndarray:
    """Inter-cluster reduction through global memory (TMA bulk atomics).

    Partial outputs produced by different clusters are combined into the
    final tensor.  Unlike the intra-cluster collectives this returns a single
    array because the result lives in global memory, not per-block SMEM.
    """
    _check_group(cluster_partials)
    combine = _combine(op)
    result = cluster_partials[0].copy()
    for array in cluster_partials[1:]:
        result = combine(result, array)
    return result
