"""High-level public API.

:class:`FlashFuser` is the compiler facade a downstream user interacts with:
it owns the hardware model, the search engine and the simulator, and turns a
:class:`~repro.ir.graph.GemmChainSpec` (or a workload id from the paper's
tables) into a :class:`CompiledKernel` — the selected execution plan, the
generated kernel source, and the simulated performance report.

The facade is configured by one :class:`~repro.config.FuserConfig` value
(``FlashFuser(config, **overrides)``); the pre-config kwargs keep working
because every config field doubles as a constructor override.  Structured
entry points wrap the same pipeline: a :class:`CompileRequest` names a chain
*or* a workload id (plus optional per-request config overrides) and
:meth:`FlashFuser.compile_request` / :meth:`FlashFuser.submit` answer with a
:class:`CompileResponse` carrying the kernel and its provenance (effective
config, cache hit/miss, cache key, wall clock).

A :class:`KernelTable` implements the runtime strategy of Section IV-C3:
kernels are compiled offline for a set of M bins (N, K and L are fixed by
the model) and selected at runtime with a table lookup.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.locks import make_lock
from repro.codegen.cuda_emitter import emit_cuda
from repro.codegen.kernel_ir import KernelIR, lower_plan
from repro.codegen.plan import ExecutionPlan
from repro.config import FuserConfig, warn_deprecated
from repro.errors import FusionError
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_workload
from repro.obs.trace import tracer
from repro.search.cost_model import CostModel
from repro.search.engine import SearchEngine, SearchResult, SearchSummary
from repro.search.incremental import (
    ShapeIndex,
    TransferSeed,
    seed_from_plan_dict,
    shape_family_key,
)
from repro.sim.engine import PerformanceSimulator, SimulationReport
from repro.sim.profiler import MemoryProfiler, TrafficReport

#: Memoization key for the compiler's own configured device (the common
#: case), sparing a fingerprint serialization per compile.
_DEFAULT_DEVICE_KEY = "<configured-device>"


@dataclass
class CompiledKernel:
    """The result of compiling one chain.

    Bundles everything the compiler produced for one
    :class:`~repro.ir.graph.GemmChainSpec`: the selected execution plan, the
    lowered kernel IR and CUDA-like source, the simulated performance
    report, the search result (or its persisted summary when the kernel was
    rehydrated from the plan cache), and the global-memory traffic profile.

    Example
    -------
    ::

        from repro import FlashFuser

        with FlashFuser(top_k=5, max_tile=128) as compiler:
            kernel = compiler.compile_workload("G4")
        print(kernel.time_us, kernel.tflops, kernel.from_cache)
        print(kernel.summary())
    """

    plan: ExecutionPlan
    kernel_ir: KernelIR
    source: str
    report: SimulationReport
    #: A full :class:`SearchResult` for freshly compiled kernels, or the
    #: persisted :class:`SearchSummary` for kernels served by the plan cache.
    search: Union[SearchResult, SearchSummary]
    traffic: TrafficReport

    @property
    def from_cache(self) -> bool:
        """Whether this kernel was rehydrated from the plan cache."""
        return getattr(self.search, "from_cache", False)

    @property
    def time_us(self) -> float:
        """Simulated execution time of the fused kernel."""
        return self.report.time_us

    @property
    def tflops(self) -> float:
        """Simulated sustained TFLOPS."""
        return self.plan.chain.total_flops() / self.time_us / 1e6

    def summary(self) -> Dict[str, object]:
        """Human-readable summary used by the examples."""
        summary = self.plan.summary()
        summary.update(
            {
                "time_us": self.time_us,
                "tflops": self.tflops,
                "global_bytes": self.traffic.total_bytes,
                "search_time_s": self.search.search_time_s,
                "candidates_analyzed": self.search.candidates_analyzed,
            }
        )
        return summary


@dataclass(frozen=True)
class CompileRequest:
    """One structured compile job: what to compile, and with which knobs.

    Exactly one of ``chain`` and ``workload`` must be given.  ``m`` rescales
    the chain's M extent (the runtime token/batch dimension); ``overrides``
    are per-request :class:`~repro.config.FuserConfig` field overrides,
    applied on top of the serving compiler's config — e.g.
    ``{"parallelism": 8}`` to fan one cold search across processes without
    touching the shared configuration.

    Example
    -------
    >>> request = CompileRequest(workload="G4", m=256)
    >>> request.resolve_chain().m
    256
    >>> CompileRequest(workload="G4", chain=request.resolve_chain())
    Traceback (most recent call last):
        ...
    ValueError: exactly one of chain= and workload= must be provided
    """

    chain: Optional[GemmChainSpec] = None
    workload: Optional[str] = None
    m: Optional[int] = None
    overrides: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.chain is None) == (self.workload is None):
            raise ValueError(
                "exactly one of chain= and workload= must be provided"
            )
        if self.m is not None and self.m <= 0:
            raise ValueError("m must be positive")
        # Snapshot the overrides so a caller mutating its dict afterwards
        # cannot change an already-constructed request.
        object.__setattr__(self, "overrides", dict(self.overrides))

    def resolve_chain(self) -> GemmChainSpec:
        """The concrete chain this request compiles."""
        if self.chain is not None:
            chain = self.chain
        else:
            chain = get_workload(self.workload).to_spec()
        if self.m is not None and self.m != chain.m:
            chain = chain.scaled(m=self.m)
        return chain


@dataclass
class CompileResponse:
    """A compiled kernel plus the provenance of how it was produced.

    Returned by :meth:`FlashFuser.compile_request` and resolved from the
    futures of :meth:`FlashFuser.submit`: the kernel itself, the request it
    answers, the effective configuration after per-request overrides, and
    the cache provenance (hit/miss, the key consulted, wall-clock time).

    Example
    -------
    ::

        from repro import CompileRequest, FlashFuser

        with FlashFuser(top_k=5, max_tile=128) as compiler:
            response = compiler.compile_request(CompileRequest(workload="G1"))
        print(response.cache_hit, response.elapsed_s)
        print(response.provenance())
    """

    kernel: CompiledKernel
    request: CompileRequest
    #: The effective configuration (request overrides applied).
    config: FuserConfig
    #: Whether the kernel was served by the plan cache instead of a search.
    cache_hit: bool
    #: The plan-cache key consulted, or ``None`` when no cache is attached.
    cache_key: Optional[str]
    #: Wall-clock seconds spent resolving this request.
    elapsed_s: float

    def provenance(self) -> Dict[str, object]:
        """Plain-dictionary provenance view for logs and metrics."""
        return {
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "elapsed_s": self.elapsed_s,
            "search": dict(self.config.cache_key_fields()),
            "parallelism": self.config.parallelism,
            #: How the plan was found: "exact" enumeration or a warm-started
            #: "transfer" search seeded from the nearest compiled shape.
            "mode": getattr(self.kernel.search, "mode", "exact"),
            "transfer": self.config.transfer,
            "incremental": self.config.incremental,
        }


class FlashFuser:
    """The FlashFuser compiler facade.

    Parameters
    ----------
    config:
        A :class:`~repro.config.FuserConfig`.  Omitted fields take the
        config defaults (H100 model, the paper's search knobs).
    **overrides:
        Any :class:`FuserConfig` field, applied on top of ``config`` — so
        both ``FlashFuser(FuserConfig(device="a100"))`` and the familiar
        ``FlashFuser(device="a100", top_k=5)`` construct the same compiler.

    Call :meth:`close` (or use the compiler as a context manager) to release
    worker pools held by parallel search engines and :meth:`submit`.

    Example
    -------
    ::

        from repro import FlashFuser, FuserConfig

        config = FuserConfig(device="h100", top_k=11, cache="~/.cache/ff")
        with FlashFuser(config) as compiler:
            kernel = compiler.compile_workload("G5")      # full fusion search
            again = compiler.compile_workload("G5")       # plan-cache hit
        assert again.from_cache
    """

    def __init__(
        self,
        config: Optional[Union[FuserConfig, HardwareSpec, str]] = None,
        **overrides: object,
    ) -> None:
        if config is not None and not isinstance(config, FuserConfig):
            # Pre-config API: the first positional argument was the device.
            warn_deprecated(
                "flashfuser-positional-device",
                "passing a device as FlashFuser's positional argument is "
                "deprecated; pass a FuserConfig, or use the device= override",
            )
            if "device" in overrides:
                raise TypeError(
                    "device passed both positionally and as an override"
                )
            overrides["device"] = config
            config = None
        self.config = (config or FuserConfig()).replace(**overrides)
        self.device = self.config.resolve_device()
        self._cache = self.config.resolve_cache()
        self.simulator = PerformanceSimulator(self.device)
        self.cost_model = CostModel(self.device)
        self.profiler = MemoryProfiler()
        #: Engines memoized by their effective (device, search knobs,
        #: parallelism) so repeated compiles reuse one worker pool instead of
        #: re-forking per chain.  compile_request() is called concurrently
        #: from submit()'s pool, so lazy construction is lock-guarded; the
        #: lock is reentrant because engine construction resolves per-device
        #: toolchains under the same lock.
        self._engines: Dict[Tuple[object, ...], object] = {}
        self._engines_lock = make_lock("flashfuser-engines", reentrant=True)
        self._toolchains: Dict[str, Tuple[PerformanceSimulator, CostModel]] = {
            _DEFAULT_DEVICE_KEY: (self.simulator, self.cost_model)
        }
        #: In-process nearest-shape index of serialized plans, seeding
        #: warm-start transfer searches even when no plan cache is attached.
        self._shapes = ShapeIndex()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = make_lock("flashfuser-pool")

    # ------------------------------------------------------------------ #
    # Config-derived views
    # ------------------------------------------------------------------ #
    @property
    def top_k(self) -> int:
        return self.config.top_k

    @property
    def include_dsm(self) -> bool:
        return self.config.include_dsm

    @property
    def max_tile(self) -> int:
        return self.config.max_tile

    @property
    def parallelism(self) -> Optional[int]:
        return self.config.parallelism

    @property
    def cache(self):
        """The attached plan cache (``None`` when compiling uncached)."""
        return self._cache

    @cache.setter
    def cache(self, value) -> None:
        self.config = self.config.replace(cache=value)
        self._cache = self.config.resolve_cache()

    def search_config(self) -> Dict[str, object]:
        """Deprecated alias for :meth:`FuserConfig.cache_key_fields`."""
        warn_deprecated(
            "flashfuser-search-config",
            "FlashFuser.search_config() is deprecated; use "
            "FlashFuser.config.cache_key_fields()",
        )
        return dict(self.config.cache_key_fields())

    def cache_key(self, chain: GemmChainSpec) -> Optional[str]:
        """The plan-cache key for ``chain``, or ``None`` without a cache."""
        if self._cache is None:
            return None
        return self._cache.key_for(
            chain, self.device, self.config.cache_key_fields()
        )

    # ------------------------------------------------------------------ #
    # Structured compilation
    # ------------------------------------------------------------------ #
    def compile_request(self, request: CompileRequest) -> CompileResponse:
        """Resolve one :class:`CompileRequest` synchronously.

        The request's overrides are applied to this compiler's config for
        the duration of the request only.  With a cache attached (and not
        overridden away) the cache is consulted first and back-filled on a
        miss, exactly like :meth:`compile`.
        """
        start = time.perf_counter()
        config = self.config.replace(**request.overrides)
        chain = request.resolve_chain()
        device = self._device_for(config)
        cache = self._cache_for(config)
        key: Optional[str] = None
        kernel: Optional[CompiledKernel] = None
        with tracer().span("compile.request", chain=chain.name) as span:
            if cache is not None:
                key = cache.key_for(chain, device, config.cache_key_fields())
                kernel = cache.load_kernel(key, chain=chain)
            cache_hit = kernel is not None
            span.set("cache_hit", cache_hit)
            if kernel is None:
                seed = self._transfer_seed(chain, config, device, cache)
                kernel = self._compile_uncached(
                    chain, config, device, transfer_seed=seed
                )
                if cache is not None and key is not None:
                    cache.store_kernel(
                        key,
                        kernel,
                        device=device,
                        search_config=config.cache_key_fields(),
                    )
            self._register_shape(chain, config, device, cache, key, kernel)
        return CompileResponse(
            kernel=kernel,
            request=request,
            config=config,
            cache_hit=cache_hit,
            cache_key=key,
            elapsed_s=time.perf_counter() - start,
        )

    def submit(
        self, request: CompileRequest, executor: Optional[Executor] = None
    ) -> "Future[CompileResponse]":
        """Resolve a :class:`CompileRequest` asynchronously.

        Requests run on this compiler's lazily created thread pool (or on
        ``executor`` when provided, e.g. by
        :class:`~repro.runtime.batch.BatchCompiler`); concurrent submissions
        share the memoized search-engine pool, so a parallel engine is
        forked once, not per future.  The future resolves to a
        :class:`CompileResponse`; a chain admitting no fused plan raises
        :class:`FusionError` from ``result()``.
        """
        pool = executor if executor is not None else self._ensure_pool()
        ctx = tracer().capture()
        if ctx is None:
            return pool.submit(self.compile_request, request)

        def run() -> CompileResponse:
            # Re-activate the submitter's trace context on the pool thread so
            # the compile's spans stitch under the submitting request.
            with tracer().activate(ctx):
                return self.compile_request(request)

        return pool.submit(run)

    # ------------------------------------------------------------------ #
    # Classic entry points
    # ------------------------------------------------------------------ #
    def compile(
        self, chain: GemmChainSpec, parallelism: Optional[int] = None
    ) -> CompiledKernel:
        """Return the best fused kernel for ``chain``, consulting the cache.

        With no cache attached this always runs the full fusion search;
        with one attached, a canonically identical chain compiled before —
        by this process or a previous one — is rehydrated from the stored
        plan instead.  The ``parallelism`` kwarg is deprecated: set
        :attr:`FuserConfig.parallelism`, or pass a :class:`CompileRequest`
        with ``overrides={"parallelism": ...}``.
        """
        overrides: Dict[str, object] = {}
        if parallelism is not None:
            warn_deprecated(
                "compile-parallelism-kwarg",
                "compile(parallelism=...) is deprecated; set "
                "FuserConfig.parallelism or pass a CompileRequest with "
                "overrides={'parallelism': ...}",
            )
            overrides["parallelism"] = parallelism
        return self.compile_request(
            CompileRequest(chain=chain, overrides=overrides)
        ).kernel

    def compile_uncached(
        self, chain: GemmChainSpec, parallelism: Optional[int] = None
    ) -> CompiledKernel:
        """Search, select and lower the best fused kernel for ``chain``."""
        config = self.config
        if parallelism is not None:
            warn_deprecated(
                "compile-parallelism-kwarg",
                "compile_uncached(parallelism=...) is deprecated; set "
                "FuserConfig.parallelism or pass a CompileRequest with "
                "overrides={'parallelism': ...}",
            )
            config = config.replace(parallelism=parallelism)
        return self._compile_uncached(chain, config, self._device_for(config))

    def compile_workload(
        self, workload_id: str, m: Optional[int] = None
    ) -> CompiledKernel:
        """Compile one of the paper's workloads (e.g. ``"G5"`` or ``"S3"``)."""
        return self.compile_request(
            CompileRequest(workload=workload_id, m=m)
        ).kernel

    def compile_table(
        self, chain: GemmChainSpec, m_bins: Sequence[int]
    ) -> "KernelTable":
        """Compile one kernel per M bin for runtime selection.

        Bins are compiled serially here (each one still benefits from the
        plan cache when attached); use
        :class:`repro.runtime.batch.BatchCompiler` to fan the bins across a
        worker pool.
        """
        kernels: Dict[int, CompiledKernel] = {}
        for m in m_bins:
            kernels[m] = self.compile(chain.scaled(m=m, name=f"{chain.name}_m{m}"))
        return KernelTable(chain=chain, kernels=kernels)

    def close(self) -> None:
        """Release worker pools (search engines and the submit pool)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._engines_lock:
            engines, self._engines = dict(self._engines), {}
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "FlashFuser":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _device_for(self, config: FuserConfig) -> HardwareSpec:
        if config.device is self.config.device:
            return self.device
        return config.resolve_device()

    def _cache_for(self, config: FuserConfig):
        if config.cache is self.config.cache:
            return self._cache
        return config.resolve_cache()

    def _transfer_seed(
        self,
        chain: GemmChainSpec,
        config: FuserConfig,
        device: HardwareSpec,
        cache,
    ) -> Optional[TransferSeed]:
        """The nearest-shape plan skeleton to warm-start this compile from.

        Consults the in-process shape index first (it exists even without a
        plan cache), then the cache's cross-process index.  Returns ``None``
        when transfer is disabled or no same-family shape was compiled yet —
        the search then runs the full enumeration.
        """
        if not config.transfer:
            return None
        family = shape_family_key(chain, device, config.cache_key_fields())
        payload = self._shapes.nearest(
            family, (chain.m, chain.n, chain.k, chain.l)
        )
        if payload is not None:
            return seed_from_plan_dict(payload)
        if cache is not None:
            return cache.nearest_seed(
                chain, device, config.cache_key_fields()
            )
        return None

    def _register_shape(
        self,
        chain: GemmChainSpec,
        config: FuserConfig,
        device: HardwareSpec,
        cache,
        key: Optional[str],
        kernel: CompiledKernel,
    ) -> None:
        """Index this compile's shape so nearby shapes can seed from it."""
        if not config.transfer:
            return
        family = shape_family_key(chain, device, config.cache_key_fields())
        self._shapes.register(
            family, (chain.m, chain.n, chain.k, chain.l), kernel.plan.to_dict()
        )
        if cache is not None and key is not None:
            cache.register_shape(
                chain, device, config.cache_key_fields(), key
            )

    def _compile_uncached(
        self,
        chain: GemmChainSpec,
        config: FuserConfig,
        device: HardwareSpec,
        transfer_seed: Optional[TransferSeed] = None,
    ) -> CompiledKernel:
        engine = self._engine_for(config, device)
        # Positional-free dispatch keeps custom/stubbed engines without a
        # transfer_seed parameter working when transfer is off.
        if transfer_seed is not None:
            search = engine.search(chain, transfer_seed=transfer_seed)
        else:
            search = engine.search(chain)
        if not search.succeeded:
            raise FusionError(
                f"no feasible fused plan found for {chain.name}; the chain's "
                "intermediate exceeds every on-chip placement the search explored"
            )
        best = search.best
        assert best is not None
        simulator, _ = self._toolchain(device)
        report = simulator.simulate_plan(best.result)
        plan = ExecutionPlan.from_dataflow(
            best.result,
            predicted_cost_us=best.predicted_cost_us,
            simulated_time_us=report.time_us,
        )
        kernel_ir = lower_plan(plan)
        source = emit_cuda(plan)
        traffic = self.profiler.profile_fused(best.result)
        return CompiledKernel(
            plan=plan,
            kernel_ir=kernel_ir,
            source=source,
            report=report,
            search=search,
            traffic=traffic,
        )

    def _device_key(self, device: HardwareSpec) -> str:
        """Stable memoization key for a device.

        Fingerprint-based (not ``id()``-based) so per-request overrides that
        pass fresh-but-identical spec objects reuse the existing toolchain
        and engines instead of accumulating one entry (and, under parallel
        search, one process pool) per request.
        """
        if device is self.device:
            return _DEFAULT_DEVICE_KEY
        return json.dumps(device.fingerprint(), sort_keys=True)

    def _toolchain(
        self, device: HardwareSpec
    ) -> Tuple[PerformanceSimulator, CostModel]:
        """The (memoized) simulator and cost model for a device."""
        key = self._device_key(device)
        with self._engines_lock:
            toolchain = self._toolchains.get(key)
            if toolchain is None:
                toolchain = (PerformanceSimulator(device), CostModel(device))
                self._toolchains[key] = toolchain
            return toolchain

    def _engine_for(self, config: FuserConfig, device: HardwareSpec):
        """The (memoized) search engine for an effective configuration."""
        parallelism = max(1, config.parallelism or 1)
        key = (
            self._device_key(device),
            config.top_k,
            config.include_dsm,
            config.max_tile,
            parallelism,
            config.incremental,
            config.transfer_bound,
        )
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                engine = self._make_engine(config, device, parallelism)
                self._engines[key] = engine
            return engine

    def _make_engine(
        self, config: FuserConfig, device: HardwareSpec, parallelism: int
    ):
        from repro.search.parallel import ParallelSearchEngine
        from repro.search.space import SearchSpace

        simulator, cost_model = self._toolchain(device)
        space = SearchSpace(
            device,
            max_tile=config.max_tile,
            include_clusters=config.include_dsm,
        )
        if parallelism > 1:
            return ParallelSearchEngine(
                device,
                top_k=config.top_k,
                include_dsm=config.include_dsm,
                profiler=simulator.profile,
                space=space,
                cost_model=cost_model,
                parallelism=parallelism,
                incremental=config.incremental,
                transfer_bound=config.transfer_bound,
            )
        return SearchEngine(
            device,
            top_k=config.top_k,
            include_dsm=config.include_dsm,
            profiler=simulator.profile,
            space=space,
            cost_model=cost_model,
            incremental=config.incremental,
            transfer_bound=config.transfer_bound,
        )

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=min(8, os.cpu_count() or 1),
                    thread_name_prefix="flashfuser-submit",
                )
            return self._pool


@dataclass
class KernelTable:
    """Pre-compiled kernels binned by M for runtime lookup (Section IV-C3).

    N, K and L are fixed by the model, so only the token/batch dimension M
    varies at runtime: kernels are compiled offline for a set of M bins
    (:meth:`FlashFuser.compile_table` or the batch compiler) and selected
    per request with :meth:`lookup` — the smallest bin covering the runtime
    M, falling back to the largest bin (run over multiple waves) above it.

    Example
    -------
    >>> from repro.ir.workloads import get_chain_spec
    >>> table = KernelTable(chain=get_chain_spec("G1"))
    >>> table.bins()            # empty until bins are compiled into it
    []
    >>> table.bin_for(0)
    Traceback (most recent call last):
        ...
    ValueError: m must be positive
    """

    chain: GemmChainSpec
    kernels: Dict[int, CompiledKernel] = field(default_factory=dict)

    def bins(self) -> List[int]:
        """The available M bins, ascending."""
        return sorted(self.kernels)

    def bin_for(self, m: int) -> int:
        """The M bin serving a runtime M: the smallest bin covering it.

        Runtime M values larger than every bin fall back to the largest
        compiled kernel (which then runs multiple waves).
        """
        if m <= 0:
            raise ValueError("m must be positive")
        bins = self.bins()
        if not bins:
            raise KeyError("kernel table is empty")
        index = bisect.bisect_left(bins, m)
        return bins[min(index, len(bins) - 1)]

    def lookup(self, m: int) -> CompiledKernel:
        """Select the kernel for a runtime M via :meth:`bin_for`."""
        return self.kernels[self.bin_for(m)]


def compile_chain(
    chain: GemmChainSpec,
    config: Optional[FuserConfig] = None,
    **overrides: object,
) -> CompiledKernel:
    """One-shot convenience wrapper around :class:`FlashFuser`.

    Builds a throwaway compiler from ``config`` plus ``overrides``, compiles
    ``chain``, and returns the :class:`CompiledKernel`.  The compiler is
    used as a context manager so any worker pools it spins up (a parallel
    search engine, the submit pool) are released even when compilation
    raises.  For more than one compile, construct a :class:`FlashFuser`
    once and reuse it — engines and caches are memoized per instance.

    Example
    -------
    ::

        from repro import compile_chain
        from repro.ir.workloads import get_chain_spec

        kernel = compile_chain(get_chain_spec("G1"), top_k=5, max_tile=128)
        print(kernel.time_us)
    """
    with FlashFuser(config, **overrides) as compiler:
        return compiler.compile(chain)
