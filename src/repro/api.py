"""High-level public API.

:class:`FlashFuser` is the compiler facade a downstream user interacts with:
it owns the hardware model, the search engine and the simulator, and turns a
:class:`~repro.ir.graph.GemmChainSpec` (or a workload id from the paper's
tables) into a :class:`CompiledKernel` — the selected execution plan, the
generated kernel source, and the simulated performance report.

A :class:`KernelTable` implements the runtime strategy of Section IV-C3:
kernels are compiled offline for a set of M bins (N, K and L are fixed by
the model) and selected at runtime with a table lookup.
"""

from __future__ import annotations

import bisect
import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.codegen.cuda_emitter import emit_cuda
from repro.codegen.kernel_ir import KernelIR, lower_plan
from repro.codegen.plan import ExecutionPlan
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_workload
from repro.search.cost_model import CostModel
from repro.search.engine import SearchEngine, SearchResult, SearchSummary
from repro.sim.engine import PerformanceSimulator, SimulationReport
from repro.sim.profiler import MemoryProfiler, TrafficReport

if TYPE_CHECKING:
    from repro.runtime.cache import PlanCache


@dataclass
class CompiledKernel:
    """The result of compiling one chain."""

    plan: ExecutionPlan
    kernel_ir: KernelIR
    source: str
    report: SimulationReport
    #: A full :class:`SearchResult` for freshly compiled kernels, or the
    #: persisted :class:`SearchSummary` for kernels served by the plan cache.
    search: Union[SearchResult, SearchSummary]
    traffic: TrafficReport

    @property
    def from_cache(self) -> bool:
        """Whether this kernel was rehydrated from the plan cache."""
        return getattr(self.search, "from_cache", False)

    @property
    def time_us(self) -> float:
        """Simulated execution time of the fused kernel."""
        return self.report.time_us

    @property
    def tflops(self) -> float:
        """Simulated sustained TFLOPS."""
        return self.plan.chain.total_flops() / self.time_us / 1e6

    def summary(self) -> Dict[str, object]:
        """Human-readable summary used by the examples."""
        summary = self.plan.summary()
        summary.update(
            {
                "time_us": self.time_us,
                "tflops": self.tflops,
                "global_bytes": self.traffic.total_bytes,
                "search_time_s": self.search.search_time_s,
                "candidates_analyzed": self.search.candidates_analyzed,
            }
        )
        return summary


class FlashFuser:
    """The FlashFuser compiler facade.

    Parameters
    ----------
    device:
        Target hardware (defaults to the H100 model).
    top_k:
        Top-K candidates profiled after the cost-model ranking (11 in the
        paper).
    include_dsm:
        Disable to restrict fusion to a single SM's resources (prior-work
        behaviour), used by the ablation experiments.
    max_tile:
        Largest block tile extent the search considers.
    cache:
        Optional plan cache (a :class:`~repro.runtime.cache.PlanCache`
        instance, or a directory path from which one is created).  When set,
        :meth:`compile` first consults the cache and stores freshly searched
        plans back into it, so repeated compilations of canonically identical
        chains — within this process or across process restarts — skip the
        fusion search entirely.
    parallelism:
        Cold-compile fan-out.  ``None`` or ``1`` runs the serial
        :class:`~repro.search.engine.SearchEngine`; a larger value shards
        the candidate space across that many worker processes via
        :class:`~repro.search.parallel.ParallelSearchEngine`.  The selected
        plan is identical either way (and so are plan-cache keys — the knob
        never invalidates cached plans).  Call :meth:`close` (or use the
        compiler as a context manager) to release worker pools.
    """

    def __init__(
        self,
        device: Optional[HardwareSpec] = None,
        top_k: int = 11,
        include_dsm: bool = True,
        max_tile: int = 256,
        cache: Optional[Union["PlanCache", str, os.PathLike]] = None,
        parallelism: Optional[int] = None,
    ) -> None:
        self.device = device or h100_spec()
        self.simulator = PerformanceSimulator(self.device)
        self.cost_model = CostModel(self.device)
        self.profiler = MemoryProfiler()
        self.top_k = top_k
        self.include_dsm = include_dsm
        self.max_tile = max_tile
        self.parallelism = parallelism
        if isinstance(cache, (str, os.PathLike)):
            from repro.runtime.cache import PlanCache

            cache = PlanCache(directory=cache)
        self.cache = cache
        #: Engines memoized by effective parallelism so repeated compiles
        #: reuse one worker pool instead of re-forking per chain.  compile()
        #: is called concurrently from BatchCompiler's thread pool, so the
        #: lazy construction is lock-guarded.
        self._engines: Dict[int, object] = {}
        self._engines_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def search_config(self) -> Dict[str, object]:
        """The search parameters that shape compiled plans (cache key part)."""
        return {
            "top_k": self.top_k,
            "include_dsm": self.include_dsm,
            "max_tile": self.max_tile,
        }

    def cache_key(self, chain: GemmChainSpec) -> Optional[str]:
        """The plan-cache key for ``chain``, or ``None`` without a cache."""
        if self.cache is None:
            return None
        return self.cache.key_for(chain, self.device, self.search_config())

    def compile(
        self, chain: GemmChainSpec, parallelism: Optional[int] = None
    ) -> CompiledKernel:
        """Return the best fused kernel for ``chain``, consulting the cache.

        With no cache attached this always runs the full fusion search
        (:meth:`compile_uncached`); with one attached, a canonically
        identical chain compiled before — by this process or a previous one —
        is rehydrated from the stored plan instead.  ``parallelism``
        overrides the compiler default for this cold compile only; it never
        changes the selected plan or the cache key.
        """
        if self.cache is None:
            return self.compile_uncached(chain, parallelism=parallelism)
        key = self.cache.key_for(chain, self.device, self.search_config())
        cached = self.cache.load_kernel(key, chain=chain)
        if cached is not None:
            return cached
        kernel = self.compile_uncached(chain, parallelism=parallelism)
        self.cache.store_kernel(key, kernel)
        return kernel

    def compile_uncached(
        self, chain: GemmChainSpec, parallelism: Optional[int] = None
    ) -> CompiledKernel:
        """Search, select and lower the best fused kernel for ``chain``."""
        engine = self._engine_for(parallelism)
        search = engine.search(chain)
        if not search.succeeded:
            raise FusionError(
                f"no feasible fused plan found for {chain.name}; the chain's "
                "intermediate exceeds every on-chip placement the search explored"
            )
        best = search.best
        assert best is not None
        report = self.simulator.simulate_plan(best.result)
        plan = ExecutionPlan.from_dataflow(
            best.result,
            predicted_cost_us=best.predicted_cost_us,
            simulated_time_us=report.time_us,
        )
        kernel_ir = lower_plan(plan)
        source = emit_cuda(plan)
        traffic = self.profiler.profile_fused(best.result)
        return CompiledKernel(
            plan=plan,
            kernel_ir=kernel_ir,
            source=source,
            report=report,
            search=search,
            traffic=traffic,
        )

    def compile_workload(self, workload_id: str, m: Optional[int] = None) -> CompiledKernel:
        """Compile one of the paper's workloads (e.g. ``"G5"`` or ``"S3"``)."""
        spec = get_workload(workload_id).to_spec()
        if m is not None:
            spec = spec.scaled(m=m)
        return self.compile(spec)

    def compile_table(
        self, chain: GemmChainSpec, m_bins: Sequence[int]
    ) -> "KernelTable":
        """Compile one kernel per M bin for runtime selection.

        Bins are compiled serially here (each one still benefits from the
        plan cache when attached); use
        :class:`repro.runtime.batch.BatchCompiler` to fan the bins across a
        worker pool.
        """
        kernels: Dict[int, CompiledKernel] = {}
        for m in m_bins:
            kernels[m] = self.compile(chain.scaled(m=m, name=f"{chain.name}_m{m}"))
        return KernelTable(chain=chain, kernels=kernels)

    def close(self) -> None:
        """Release worker pools held by parallel search engines (idempotent)."""
        with self._engines_lock:
            engines, self._engines = dict(self._engines), {}
        for engine in engines.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "FlashFuser":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _engine_for(self, parallelism: Optional[int] = None):
        """The (memoized) search engine for an effective parallelism."""
        effective = parallelism if parallelism is not None else self.parallelism
        effective = max(1, effective or 1)
        with self._engines_lock:
            engine = self._engines.get(effective)
            if engine is None:
                engine = self._make_engine(effective)
                self._engines[effective] = engine
            return engine

    def _make_engine(self, parallelism: int = 1):
        from repro.search.parallel import ParallelSearchEngine
        from repro.search.space import SearchSpace

        space = SearchSpace(
            self.device,
            max_tile=self.max_tile,
            include_clusters=self.include_dsm,
        )
        if parallelism > 1:
            return ParallelSearchEngine(
                self.device,
                top_k=self.top_k,
                include_dsm=self.include_dsm,
                profiler=self.simulator.profile,
                space=space,
                cost_model=self.cost_model,
                parallelism=parallelism,
            )
        return SearchEngine(
            self.device,
            top_k=self.top_k,
            include_dsm=self.include_dsm,
            profiler=self.simulator.profile,
            space=space,
            cost_model=self.cost_model,
        )


class FusionError(RuntimeError):
    """Raised when no feasible fused plan exists for a chain."""


@dataclass
class KernelTable:
    """Pre-compiled kernels binned by M for runtime lookup (Section IV-C3)."""

    chain: GemmChainSpec
    kernels: Dict[int, CompiledKernel] = field(default_factory=dict)

    def bins(self) -> List[int]:
        """The available M bins, ascending."""
        return sorted(self.kernels)

    def bin_for(self, m: int) -> int:
        """The M bin serving a runtime M: the smallest bin covering it.

        Runtime M values larger than every bin fall back to the largest
        compiled kernel (which then runs multiple waves).
        """
        if m <= 0:
            raise ValueError("m must be positive")
        bins = self.bins()
        if not bins:
            raise KeyError("kernel table is empty")
        index = bisect.bisect_left(bins, m)
        return bins[min(index, len(bins) - 1)]

    def lookup(self, m: int) -> CompiledKernel:
        """Select the kernel for a runtime M via :meth:`bin_for`."""
        return self.kernels[self.bin_for(m)]


def compile_chain(
    chain: GemmChainSpec,
    device: Optional[HardwareSpec] = None,
    top_k: int = 11,
    include_dsm: bool = True,
) -> CompiledKernel:
    """One-shot convenience wrapper around :class:`FlashFuser`."""
    compiler = FlashFuser(device=device, top_k=top_k, include_dsm=include_dsm)
    return compiler.compile(chain)
