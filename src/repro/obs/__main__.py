"""``python -m repro.obs`` — inspect exported trace span files.

``summarize`` loads one or more JSONL span files (or directories of
them), stitches spans into traces, and prints the per-stage time
breakdown plus the critical path of the slowest trace; ``--chrome``
additionally writes Chrome trace-event JSON loadable in Perfetto
(https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.summary import (
    format_summary,
    load_spans,
    summarize,
    to_chrome_trace,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect JSONL span files exported by repro.obs.trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summ = sub.add_parser(
        "summarize",
        help="print per-stage and critical-path breakdowns of a trace",
    )
    summ.add_argument(
        "paths",
        nargs="+",
        help="span .jsonl files or directories containing them",
    )
    summ.add_argument(
        "--chrome",
        default=None,
        help="also write Chrome trace-event JSON (open in Perfetto) here",
    )
    summ.add_argument(
        "--fail-on-orphans",
        action="store_true",
        help="exit non-zero when any span's parent is missing from the "
        "input (incomplete stitching)",
    )
    args = parser.parse_args(argv)

    spans = load_spans(args.paths)
    if not spans:
        print("no spans found", file=sys.stderr)
        return 1
    summary = summarize(spans)
    for line in format_summary(summary):
        print(line)
    if args.chrome:
        path = Path(args.chrome)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(to_chrome_trace(spans), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")
    if args.fail_on_orphans and int(summary["orphans"]) > 0:
        print(f"ERROR: {summary['orphans']} orphan span(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
