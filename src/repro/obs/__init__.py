"""Observability layer: tracing, metrics, and structured logging.

The serving stack's aggregate stats (:class:`~repro.runtime.stats.ServingStats`,
:class:`~repro.fleet.stats.FleetStats`) answer "how did the fleet do overall";
this package answers "where did *this* request spend its time" and "what is
the fleet doing *right now*":

* :mod:`repro.obs.trace` — a span-based tracer with deterministic IDs,
  thread- and process-boundary context propagation, JSONL span files and
  Chrome trace-event export (loadable in Perfetto).  Off by default; enabled
  via ``REPRO_TRACE=1`` (the same zero-overhead-when-off pattern as
  ``REPRO_LOCK_CHECK``'s lock factory).
* :mod:`repro.obs.metrics` — counters/gauges/histograms with fixed
  log-spaced latency buckets (merges are exact, mirroring
  ``ServingStats.merge``), a Prometheus text-exposition writer, and the
  single shared percentile implementation the bench layer delegates to.
* :mod:`repro.obs.logging` — the ``repro.*`` structured-logging namespace,
  levelled via ``REPRO_LOG_LEVEL``.
* :mod:`repro.obs.summary` — trace stitching, per-stage breakdowns and
  critical-path extraction over exported span files; also behind
  ``python -m repro.obs summarize <trace.jsonl>``.
"""

from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_bound,
    bucket_index,
    histogram_quantile,
    percentile,
    weighted_percentile,
)
from repro.obs.trace import SpanContext, Tracer, tracer

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "SpanContext",
    "Tracer",
    "bucket_bound",
    "bucket_index",
    "get_logger",
    "histogram_quantile",
    "log_event",
    "percentile",
    "tracer",
    "weighted_percentile",
]
