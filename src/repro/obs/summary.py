"""Trace stitching, per-stage breakdowns and critical-path extraction.

Consumes the JSONL span files written by :mod:`repro.obs.trace` — from one
process or many (the fleet's ``spans-main.jsonl`` + ``spans-w*.jsonl``) —
and answers the questions raw spans cannot: do the files stitch into
complete traces (no orphan spans)?  Where does a request's wall clock go,
stage by stage?  What is the critical path of the slowest request?

Also behind the CLI::

    python -m repro.obs summarize traces/spans-*.jsonl
    python -m repro.obs summarize traces/ --chrome trace-events.json
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

SpanRecord = Dict[str, object]


def load_spans(
    paths: Iterable[Union[str, os.PathLike]],
) -> List[SpanRecord]:
    """Load span records from JSONL files (directories load ``*.jsonl``).

    Parameters
    ----------
    paths:
        Span files and/or directories holding ``spans-*.jsonl`` files.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    spans: List[SpanRecord] = []
    for path in files:
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def stitch(spans: Sequence[SpanRecord]) -> Dict[str, List[SpanRecord]]:
    """Group spans by ``trace_id``, each trace sorted by start time.

    Example
    -------
    >>> spans = [{"trace_id": "t1", "span_id": "a", "start_us": 0.0},
    ...          {"trace_id": "t2", "span_id": "b", "start_us": 1.0}]
    >>> sorted(stitch(spans))
    ['t1', 't2']
    """
    traces: Dict[str, List[SpanRecord]] = {}
    for span in spans:
        traces.setdefault(str(span.get("trace_id")), []).append(span)
    for records in traces.values():
        records.sort(key=lambda span: (float(span.get("start_us", 0.0)),
                                       str(span.get("span_id"))))
    return dict(sorted(traces.items()))


def orphan_spans(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    """Spans whose ``parent_id`` names a span missing from the input.

    An empty result over a multi-process span-file set is the "stitched
    end-to-end traces" property: every child's parent made it into some
    file, so each trace reconstructs completely.

    Example
    -------
    >>> complete = [{"trace_id": "t", "span_id": "a", "parent_id": None},
    ...             {"trace_id": "t", "span_id": "b", "parent_id": "a"}]
    >>> orphan_spans(complete)
    []
    """
    known = {str(span.get("span_id")) for span in spans}
    return [
        span
        for span in spans
        if span.get("parent_id") is not None
        and str(span.get("parent_id")) not in known
    ]


def critical_path(trace: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The root-to-leaf chain of longest-duration children.

    Follows, from the trace's root span, the child with the largest
    ``dur_us`` at each level — the classic "where did the time go" walk.
    """
    if not trace:
        return []
    by_parent: Dict[Optional[str], List[SpanRecord]] = {}
    for span in trace:
        parent = span.get("parent_id")
        by_parent.setdefault(
            str(parent) if parent is not None else None, []
        ).append(span)
    roots = by_parent.get(None) or [trace[0]]
    root = max(roots, key=lambda span: float(span.get("dur_us", 0.0)))
    path = [root]
    while True:
        children = by_parent.get(str(path[-1].get("span_id")), [])
        if not children:
            return path
        path.append(max(children, key=lambda s: float(s.get("dur_us", 0.0))))


def summarize(spans: Sequence[SpanRecord]) -> Dict[str, object]:
    """Aggregate spans into per-stage and per-trace breakdowns.

    Returns a pinned-key payload with a per-span-name stage table (count,
    total/mean duration), trace counts, orphan count, and the critical
    path of the slowest trace.
    """
    traces = stitch(spans)
    stages: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = str(span.get("name"))
        entry = stages.setdefault(name, {"count": 0, "total_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += float(span.get("dur_us", 0.0))
    for entry in stages.values():
        entry["mean_us"] = (
            entry["total_us"] / entry["count"] if entry["count"] else 0.0
        )
    durations: Dict[str, float] = {}
    for trace_id, records in traces.items():
        start = min(float(span.get("start_us", 0.0)) for span in records)
        end = max(
            float(span.get("start_us", 0.0)) + float(span.get("dur_us", 0.0))
            for span in records
        )
        durations[trace_id] = end - start
    slowest = max(durations, key=lambda t: durations[t]) if durations else None
    path = critical_path(traces[slowest]) if slowest is not None else []
    return {
        "spans": len(spans),
        "traces": len(traces),
        "orphans": len(orphan_spans(spans)),
        "stages": {name: stages[name] for name in sorted(stages)},
        "trace_durations_us": durations,
        "slowest_trace": slowest,
        "critical_path": [
            {
                "name": span.get("name"),
                "process": span.get("process"),
                "dur_us": float(span.get("dur_us", 0.0)),
            }
            for span in path
        ],
    }


def format_summary(summary: Mapping[str, object]) -> List[str]:
    """Human-readable lines for one :func:`summarize` payload."""
    lines = [
        f"{summary['spans']} spans in {summary['traces']} trace(s), "
        f"{summary['orphans']} orphan(s)"
    ]
    stages = dict(summary.get("stages", {}))
    total = sum(float(entry["total_us"]) for entry in stages.values())
    lines.append("per-stage breakdown (by total time):")
    for name in sorted(
        stages, key=lambda n: -float(stages[n]["total_us"])
    ):
        entry = stages[name]
        share = float(entry["total_us"]) / total if total > 0 else 0.0
        lines.append(
            f"  {name}: {int(entry['count'])} span(s), "
            f"{float(entry['total_us']):.0f} us total "
            f"({share:.1%}), mean {float(entry['mean_us']):.0f} us"
        )
    slowest = summary.get("slowest_trace")
    if slowest is not None:
        durations = dict(summary.get("trace_durations_us", {}))
        lines.append(
            f"critical path of slowest trace {slowest} "
            f"({float(durations.get(str(slowest), 0.0)):.0f} us):"
        )
        for hop in summary.get("critical_path", []):
            lines.append(
                f"  {hop['name']} [{hop['process']}] {hop['dur_us']:.0f} us"
            )
    return lines


def to_chrome_trace(spans: Sequence[SpanRecord]) -> Dict[str, object]:
    """Convert span records to Chrome trace-event JSON (Perfetto-loadable).

    Spans become complete (``ph: "X"``) events; the process tag maps to
    ``pid`` and the recording thread to ``tid``, so Perfetto's track view
    mirrors the fleet's process/thread structure.

    Parameters
    ----------
    spans:
        Span records, e.g. from :func:`load_spans`.
    """
    events = []
    for span in spans:
        events.append(
            {
                "name": span.get("name"),
                "cat": "repro",
                "ph": "X",
                "ts": float(span.get("start_us", 0.0)),
                "dur": float(span.get("dur_us", 0.0)),
                "pid": span.get("process"),
                "tid": span.get("thread"),
                "args": {
                    "trace_id": span.get("trace_id"),
                    "span_id": span.get("span_id"),
                    "parent_id": span.get("parent_id"),
                    **dict(span.get("attrs") or {}),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
