"""Metrics primitives: percentiles, log-bucket histograms, and a registry.

Two design decisions make this module the stack's single source of truth
for latency math:

* **One percentile implementation.**  :func:`weighted_percentile` is the
  linear-interpolation estimator; :func:`percentile` (re-exported by
  :mod:`repro.bench.report`) is its unit-weight special case, and
  :func:`histogram_quantile` applies it to bucket counts.  The bench
  reports and the live histogram summaries therefore agree by
  construction.
* **Fixed log-spaced buckets.**  :func:`bucket_index` assigns every
  latency to one of :data:`BUCKETS_PER_DECADE` buckets per decade with
  process-independent boundaries, so histograms merge *exactly* — adding
  two workers' bucket counts yields the same histogram as observing their
  union, mirroring how ``ServingStats.merge`` composes count/total/min/max
  losslessly.

:class:`MetricsRegistry` aggregates :class:`Counter`/:class:`Gauge`/
:class:`Histogram` samples (optionally labelled), renders them in the
Prometheus text exposition format, and ingests the existing
``ServingStats``/``CacheStats``/``FleetStats`` snapshot payloads so one
scrape shows the whole fleet.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Log-spaced histogram resolution: bucket ``i`` spans up to
#: ``10 ** (i / BUCKETS_PER_DECADE)`` microseconds, giving five buckets per
#: decade (~58% upper/lower ratio) — coarse enough to stay sparse, fine
#: enough for p50/p95 estimates within one bucket width.
BUCKETS_PER_DECADE = 5


def bucket_index(value: float) -> int:
    """The fixed log-bucket index covering ``value``.

    Boundaries depend only on the constant :data:`BUCKETS_PER_DECADE`, so
    any two processes bucket identically and their histograms merge by
    adding counts.  Values at or below 1.0 (including 0) share bucket 0.

    Example
    -------
    >>> bucket_index(0.0), bucket_index(1.0), bucket_index(100.0)
    (0, 0, 10)
    >>> bucket_index(101.0)
    11
    """
    if value <= 1.0:
        return 0
    return max(0, math.ceil(math.log10(value) * BUCKETS_PER_DECADE))


def bucket_bound(index: int) -> float:
    """Upper bound (inclusive) of bucket ``index``.

    Example
    -------
    >>> bucket_bound(0), round(bucket_bound(10), 6)
    (1.0, 100.0)
    """
    return 10.0 ** (index / BUCKETS_PER_DECADE)


def weighted_percentile(
    values: Sequence[float], weights: Sequence[float], q: float
) -> float:
    """The ``q``-th percentile of a weighted sample (linear interpolation).

    Each ``values[i]`` counts ``weights[i]`` times; with unit weights this
    reduces exactly to the classic linear-interpolation estimator over the
    sorted sample (the rank ``(n - 1) * q / 100`` convention), which is why
    :func:`percentile` can delegate here without changing any report.

    Parameters
    ----------
    values:
        Sample values (any order).
    weights:
        Non-negative multiplicity of each value; must match ``values`` in
        length and carry positive total weight.
    q:
        Percentile in ``[0, 100]``.

    Example
    -------
    >>> weighted_percentile([10.0, 20.0, 30.0, 40.0], [1, 1, 1, 1], 50)
    25.0
    >>> weighted_percentile([10.0, 20.0], [3, 1], 50)
    10.0
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    pairs = sorted(
        (float(value), float(weight))
        for value, weight in zip(values, weights)
        if weight > 0
    )
    total = sum(weight for _, weight in pairs)
    if not pairs or total <= 0:
        raise ValueError("total weight must be positive")
    rank = (total - 1.0) * q / 100.0
    if rank <= 0:
        return pairs[0][0]
    cumulative = 0.0
    previous = pairs[0][0]
    for value, weight in pairs:
        low = cumulative
        high = cumulative + weight - 1.0
        if rank <= high:
            if rank >= low:
                return value
            # The rank falls in the gap between the previous value's last
            # occupied rank (low - 1) and this value's first (low).
            fraction = rank - (low - 1.0)
            return previous + (value - previous) * fraction
        previous = value
        cumulative += weight
    return pairs[-1][0]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    The unit-weight case of :func:`weighted_percentile`; kept
    behaviour-identical to the historical ``repro.bench.report.percentile``
    (which now re-exports this function), including returning 0.0 for an
    empty sample.

    Example
    -------
    >>> percentile([10.0, 20.0, 30.0, 40.0], 50)
    25.0
    >>> percentile([7.0], 99)
    7.0
    >>> percentile([], 50)
    0.0
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if not values:
        return 0.0
    return weighted_percentile(values, [1.0] * len(values), q)


def histogram_quantile(
    buckets: Mapping[int, int],
    q: float,
    min_value: Optional[float] = None,
    max_value: Optional[float] = None,
) -> float:
    """Estimate the ``q``-th percentile from log-bucket counts.

    Each bucket contributes its *upper bound* (:func:`bucket_bound`)
    weighted by its count; the estimate is clamped into
    ``[min_value, max_value]`` when the true extremes are known (streaming
    summaries track them exactly), so single-observation histograms report
    the observation itself.

    Example
    -------
    >>> buckets = {bucket_index(42.0): 1}
    >>> histogram_quantile(buckets, 50, min_value=42.0, max_value=42.0)
    42.0
    """
    if not buckets:
        return 0.0
    indices = sorted(buckets)
    estimate = weighted_percentile(
        [bucket_bound(index) for index in indices],
        [buckets[index] for index in indices],
        q,
    )
    if max_value is not None:
        estimate = min(estimate, max_value)
    if min_value is not None:
        estimate = max(estimate, min_value)
    return estimate


# --------------------------------------------------------------------- #
# Metric samples
# --------------------------------------------------------------------- #
class Counter:
    """A monotonically growing count (one labelled sample).

    ``inc`` accumulates live increments; ``set_total`` publishes an
    absolute total taken from an existing stats snapshot (the bridge the
    ``publish_*`` helpers use).

    Example
    -------
    ::

        registry = MetricsRegistry()
        served = registry.counter("repro_requests_total", "Requests served")
        served.inc()
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only grow; use a Gauge instead")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Publish an absolute total from a stats snapshot."""
        self.value = float(value)


class Gauge:
    """A point-in-time value (one labelled sample)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge."""
        self.value = float(value)


class Histogram:
    """A log-bucket latency histogram (one labelled sample).

    Buckets are the fixed log-spaced grid of :func:`bucket_index`, so
    :meth:`merge` (plain count addition) is exact across processes; count,
    total, min and max are tracked alongside, mirroring
    ``LatencySummary``.

    Example
    -------
    >>> histogram = Histogram()
    >>> for value in (10.0, 20.0, 900.0):
    ...     histogram.observe(value)
    >>> histogram.count, histogram.quantile(100)
    (3, 900.0)
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        if value < 0:
            raise ValueError("histogram observations must be non-negative")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram exactly (returns self)."""
        if other.count:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            for index, count in other.buckets.items():
                self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def quantile(self, q: float) -> float:
        """Bucket-estimated percentile, clamped to the observed extremes."""
        if not self.count:
            return 0.0
        return histogram_quantile(
            self.buckets, q, min_value=self.min, max_value=self.max
        )

    def load(
        self,
        count: int,
        total: float,
        min_value: float,
        max_value: float,
        buckets: Mapping[int, int],
    ) -> "Histogram":
        """Publish absolute state from a stats snapshot (returns self).

        Parameters
        ----------
        count:
            Observation count.
        total:
            Sum of observations.
        min_value:
            Smallest observation.
        max_value:
            Largest observation.
        buckets:
            Log-bucket counts keyed by :func:`bucket_index`.
        """
        self.count = int(count)
        self.total = float(total)
        self.min = float(min_value) if self.count else math.inf
        self.max = float(max_value)
        self.buckets = {int(index): int(n) for index, n in buckets.items()}
        return self

    def snapshot(self) -> Dict[str, object]:
        """Plain-dictionary view (pinned key order)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }


_KIND_OF = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """A named collection of labelled counter/gauge/histogram samples.

    Samples are created on first access and identified by metric name plus
    a sorted label set; re-accessing returns the same sample, so publishers
    can overwrite snapshot-derived values scrape after scrape.  Rendering
    is deterministic: metrics sort by name, samples by label tuple, and the
    JSON :meth:`snapshot` pins its key order — equal registry state always
    serializes identically.

    Example
    -------
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_requests_total", "Total requests").inc(3)
    >>> registry.gauge("repro_queue_depth", worker="0").set(2)
    >>> print(registry.prometheus_text().splitlines()[4])
    repro_requests_total 3
    """

    def __init__(self) -> None:
        # name -> (kind, help, {label tuple -> sample})
        self._metrics: Dict[str, Tuple[str, str, Dict[tuple, object]]] = {}

    # -- sample access --------------------------------------------------- #
    def _sample(self, factory: type, name: str, help_text: str, labels):
        kind = _KIND_OF[factory]
        entry = self._metrics.get(name)
        if entry is None:
            entry = (kind, help_text, {})
            self._metrics[name] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {entry[0]}, not a {kind}"
            )
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        sample = entry[2].get(key)
        if sample is None:
            sample = factory()
            entry[2][key] = sample
        return sample

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        """Get or create the :class:`Counter` sample ``name``/``labels``.

        Parameters
        ----------
        name:
            Prometheus-style metric name.
        help_text:
            One-line description (first registration wins).
        """
        return self._sample(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        """Get or create the :class:`Gauge` sample ``name``/``labels``.

        Parameters
        ----------
        name:
            Prometheus-style metric name.
        help_text:
            One-line description (first registration wins).
        """
        return self._sample(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "", **labels) -> Histogram:
        """Get or create the :class:`Histogram` sample ``name``/``labels``.

        Parameters
        ----------
        name:
            Prometheus-style metric name.
        help_text:
            One-line description (first registration wins).
        """
        return self._sample(Histogram, name, help_text, labels)

    # -- snapshot publishers --------------------------------------------- #
    def publish_serving_stats(
        self,
        payload: Mapping[str, object],
        prefix: str = "repro_serving",
        **labels,
    ) -> None:
        """Publish a ``ServingStats.to_dict()`` payload into the registry.

        Request/hit/miss totals become counters, the hit rate a gauge,
        per-source request counts a labelled counter, and every latency
        summary that carries log-bucket counts becomes a mergeable
        histogram (summaries predating the bucket field publish count-only
        histograms).

        Parameters
        ----------
        payload:
            A :meth:`repro.runtime.stats.ServingStats.to_dict` snapshot.
        prefix:
            Metric-name prefix (`repro_serving` by default).
        """
        self.counter(f"{prefix}_requests_total", "Requests served", **labels)\
            .set_total(payload.get("requests", 0))
        self.counter(f"{prefix}_hits_total", "Search-free requests", **labels)\
            .set_total(payload.get("hits", 0))
        self.counter(f"{prefix}_misses_total", "On-demand compiles", **labels)\
            .set_total(payload.get("misses", 0))
        self.gauge(f"{prefix}_hit_rate", "Search-free fraction", **labels)\
            .set(payload.get("hit_rate", 0.0))
        by_source = payload.get("by_source") or {}
        if isinstance(by_source, Mapping):
            for source, count in by_source.items():
                self.counter(
                    f"{prefix}_requests_by_source_total",
                    "Requests by resolution source",
                    source=source,
                    **labels,
                ).set_total(count)
        latency = payload.get("latency_us") or {}
        if isinstance(latency, Mapping):
            for source, summary in latency.items():
                self._publish_latency(
                    f"{prefix}_latency_us", summary, source=source, **labels
                )
        overall = payload.get("overall_latency_us")
        if isinstance(overall, Mapping):
            self._publish_latency(
                f"{prefix}_overall_latency_us", overall, **labels
            )

    def _publish_latency(
        self, name: str, summary: Mapping[str, object], **labels
    ) -> None:
        buckets = summary.get("buckets") or {}
        count = int(summary.get("count", 0))
        mean = float(summary.get("mean_us", 0.0))
        self.histogram(name, "Latency histogram (log buckets)", **labels).load(
            count=count,
            total=mean * count,
            min_value=float(summary.get("min_us", 0.0)),
            max_value=float(summary.get("max_us", 0.0)),
            buckets={int(k): int(v) for k, v in dict(buckets).items()},
        )

    def publish_cache_stats(
        self,
        payload: Mapping[str, object],
        prefix: str = "repro_cache",
        **labels,
    ) -> None:
        """Publish a ``CacheStats.to_dict()`` payload into the registry.

        Every counter of the plan cache (tier hits, misses, stores,
        evictions, and the four disk-entry failure modes) becomes a
        Prometheus counter; the hit rate becomes a gauge.

        Parameters
        ----------
        payload:
            A :meth:`repro.runtime.cache.CacheStats.to_dict` snapshot.
        prefix:
            Metric-name prefix (`repro_cache` by default).
        """
        for key, value in payload.items():
            if key == "hit_rate":
                self.gauge(
                    f"{prefix}_hit_rate", "Plan-cache hit fraction", **labels
                ).set(value)
            else:
                self.counter(
                    f"{prefix}_{key}_total", f"Plan-cache {key}", **labels
                ).set_total(value)

    def publish_fleet_stats(
        self,
        payload: Mapping[str, object],
        prefix: str = "repro_fleet",
    ) -> None:
        """Publish a ``FleetStats.to_dict()`` payload into the registry.

        Router counters and worker liveness become counters/gauges, the
        fleet-wide merged serving aggregate publishes unlabelled, and each
        worker's own serving stats publish under a ``worker`` label — one
        scrape therefore shows the whole fleet at every granularity.

        Parameters
        ----------
        payload:
            A :meth:`repro.fleet.stats.FleetStats.to_dict` snapshot.
        prefix:
            Metric-name prefix (`repro_fleet` by default).
        """
        self.gauge(f"{prefix}_workers", "Configured workers").set(
            payload.get("workers", 0)
        )
        self.gauge(f"{prefix}_workers_alive", "Live worker processes").set(
            payload.get("alive", 0)
        )
        router = payload.get("router") or {}
        if isinstance(router, Mapping):
            for key, value in router.items():
                if isinstance(value, Mapping):
                    for worker, depth in value.items():
                        self.gauge(
                            f"{prefix}_router_{key}",
                            f"Router {key}",
                            worker=worker,
                        ).set(depth)
                else:
                    self.counter(
                        f"{prefix}_router_{key}_total", f"Router {key}"
                    ).set_total(value)
        serving = payload.get("serving")
        if isinstance(serving, Mapping):
            self.publish_serving_stats(serving, prefix=f"{prefix}_serving")
        per_worker = payload.get("per_worker") or {}
        if isinstance(per_worker, Mapping):
            for worker, worker_payload in per_worker.items():
                worker_serving = worker_payload.get("serving")
                if isinstance(worker_serving, Mapping):
                    self.publish_serving_stats(
                        worker_serving,
                        prefix=f"{prefix}_worker_serving",
                        worker=worker,
                    )
                worker_cache = worker_payload.get("cache")
                if isinstance(worker_cache, Mapping):
                    self.publish_cache_stats(
                        worker_cache,
                        prefix=f"{prefix}_worker_cache",
                        worker=worker,
                    )

    def publish_rewrite_provenance(
        self,
        payload: Mapping[str, object],
        prefix: str = "repro_rewrite",
        **labels,
    ) -> None:
        """Publish a ``RewriteProvenance.to_dict()`` payload into the registry.

        Rule firings become a per-rule labelled counter, and the pass count,
        operators-eliminated total and pruned-rule-scan total become plain
        counters — one scrape answers "is the rewrite layer actually doing
        anything, and which rules carry the load".

        Parameters
        ----------
        payload:
            A :meth:`repro.graphs.rewrite.RewriteProvenance.to_dict` snapshot.
        prefix:
            Metric-name prefix (`repro_rewrite` by default).
        """
        self.counter(
            f"{prefix}_passes_total", "Rewrite fixpoint passes", **labels
        ).set_total(payload.get("passes", 0))
        self.counter(
            f"{prefix}_ops_eliminated_total", "Operators eliminated", **labels
        ).set_total(payload.get("ops_eliminated", 0))
        self.counter(
            f"{prefix}_rules_pruned_total",
            "Rule scans skipped by anchor pre-pruning",
            **labels,
        ).set_total(payload.get("rules_pruned", 0))
        fired = payload.get("fired_counts") or {}
        if isinstance(fired, Mapping):
            for rule, count in fired.items():
                self.counter(
                    f"{prefix}_rule_fired_total",
                    "Rewrite-rule applications",
                    rule=rule,
                    **labels,
                ).set_total(count)

    # -- rendering ------------------------------------------------------- #
    @staticmethod
    def _label_text(key: tuple, extra: str = "") -> str:
        parts = [f'{name}="{value}"' for name, value in key]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def prometheus_text(self) -> str:
        """Render every metric in the Prometheus text exposition format.

        Histograms render the standard cumulative ``_bucket``/``_sum``/
        ``_count`` series with ``le`` boundaries from the fixed log grid.
        Output is deterministically ordered (metric name, then label set).

        Example
        -------
        ::

            registry = MetricsRegistry()
            registry.publish_serving_stats(stats.to_dict())
            open("metrics.prom", "w").write(registry.prometheus_text())
        """
        lines: List[str] = []
        for name in sorted(self._metrics):
            kind, help_text, samples = self._metrics[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(samples):
                sample = samples[key]
                if isinstance(sample, Histogram):
                    cumulative = 0
                    for index in sorted(sample.buckets):
                        cumulative += sample.buckets[index]
                        le = f'le="{bucket_bound(index):g}"'
                        lines.append(
                            f"{name}_bucket{self._label_text(key, le)} "
                            f"{cumulative}"
                        )
                    inf_label = 'le="+Inf"'
                    lines.append(
                        f"{name}_bucket{self._label_text(key, inf_label)} "
                        f"{sample.count}"
                    )
                    lines.append(
                        f"{name}_sum{self._label_text(key)} {sample.total:g}"
                    )
                    lines.append(
                        f"{name}_count{self._label_text(key)} {sample.count}"
                    )
                else:
                    lines.append(
                        f"{name}{self._label_text(key)} {sample.value:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """JSON-able registry state with a pinned key order.

        Top-level keys are the metric kinds; within each, metrics sort by
        name and samples by rendered label string, so equal registry state
        serializes byte-identically (the same contract as the stack's
        ``to_dict`` methods).
        """
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._metrics):
            kind, _, samples = self._metrics[name]
            sink = {
                "counter": counters,
                "gauge": gauges,
                "histogram": histograms,
            }[kind]
            for key in sorted(samples):
                sample = samples[key]
                label = f"{name}{self._label_text(key)}"
                if isinstance(sample, Histogram):
                    sink[label] = sample.snapshot()
                else:
                    sink[label] = sample.value
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
