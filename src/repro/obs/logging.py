"""Structured logging under the ``repro.*`` logger namespace.

The stack logs rare, operationally meaningful events — a fleet worker
starting, dying, or being respawned; a cache entry rejected by the
verifier; a transfer search falling back to full enumeration — as one
structured ``key=value`` line each, through standard :mod:`logging`
loggers named ``repro.<module>``.

By default the ``repro`` root logger carries a :class:`logging.NullHandler`
and nothing is printed (library etiquette: the embedding application owns
the handlers).  Setting ``REPRO_LOG_LEVEL`` (e.g. ``INFO``, ``DEBUG``)
attaches a stderr handler at that level, which is the operator's one-knob
way to see fleet lifecycle events::

    REPRO_LOG_LEVEL=INFO python -m repro.bench --scenario fleet ...
"""

from __future__ import annotations

import logging
import os
from typing import Optional

#: Environment variable selecting the log level (DEBUG/INFO/WARNING/...).
#: Unset means "no output" (NullHandler only).
ENV_LEVEL = "REPRO_LOG_LEVEL"

#: Root of the namespace every stack logger lives under.
ROOT_LOGGER = "repro"

_configured = False


def configure(level: Optional[str] = None) -> logging.Logger:
    """Configure the ``repro`` root logger once and return it.

    Parameters
    ----------
    level:
        Level name; defaults to :data:`ENV_LEVEL`.  When neither is set,
        only a :class:`logging.NullHandler` is attached and nothing is
        emitted.
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER)
    if _configured:
        return root
    _configured = True
    root.addHandler(logging.NullHandler())
    chosen = level if level is not None else os.environ.get(ENV_LEVEL)
    if chosen:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
        root.setLevel(chosen.strip().upper())
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.*`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix (or a full ``repro.x.y`` module name, used as-is).

    Example
    -------
    ::

        from repro.obs.logging import get_logger, log_event

        logger = get_logger(__name__)       # -> "repro.fleet.router"
        log_event(logger, "worker-start", worker=0, incarnation=1)
    """
    configure()
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def format_event(event: str, **fields: object) -> str:
    """Render one structured log line (``event=... key=value ...``).

    Field order is the caller's keyword order, so call sites read naturally
    and grep patterns stay stable.

    Parameters
    ----------
    event:
        Short kebab-case event name (``worker-start``, ``cache-entry-
        rejected``, ``transfer-fallback``).

    Example
    -------
    >>> format_event("worker-start", worker=0, incarnation=1)
    'event=worker-start worker=0 incarnation=1'
    """
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if " " in text:
            text = f'"{text}"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Log one structured event line.

    Parameters
    ----------
    logger:
        A ``repro.*`` logger from :func:`get_logger`.
    event:
        Short kebab-case event name.
    level:
        Standard :mod:`logging` level (default ``INFO``).
    """
    if logger.isEnabledFor(level):
        logger.log(level, "%s", format_event(event, **fields))
