"""Span-based request tracing with cross-thread/process propagation.

One request through the serving stack crosses a thread pool (the bench
driver), a router, a process boundary (fleet workers), a kernel server, a
two-tier cache and a search engine.  This module correlates all of it:
every layer opens a :class:`Span` under the ambient trace context, and the
exported span records stitch back into one end-to-end trace per request.

Design points, in the same spirit as :mod:`repro.analysis.locks`:

* **Zero overhead when off.**  Tracing is enabled by ``REPRO_TRACE=1``
  (or :func:`enable`); when off, :meth:`Tracer.span` returns a shared
  no-op scope and touches no clock.  Obs knobs are plan-neutral — they can
  never alter a cache key or a selected plan.
* **Deterministic IDs.**  Trace and span IDs are per-process counters
  prefixed with a process tag (``main``, ``w0-i1``, ...) — no randomness,
  which keeps the deterministic-layer lint meaningful and makes span files
  reproducible modulo thread interleaving.
* **Context propagation.**  The ambient context is a thread-local stack;
  :meth:`Tracer.capture`/:meth:`Tracer.activate` carry it across thread
  pools, and :meth:`Tracer.wire_context`/:meth:`Tracer.adopt` carry it
  across the fleet's process-boundary task tuples (the wire form also
  carries the send timestamp so workers can emit queue-wait spans).
* **Wall-clock timestamps.**  Spans record ``time.time()`` microseconds so
  spans from different processes line up on one timeline; the lint
  nondeterminism allowlist sanctions exactly this module's clock reads.

Exported span files are JSONL (one span per line) and convert to Chrome
trace-event JSON via :func:`repro.obs.summary.to_chrome_trace` for
Perfetto.  Usage::

    from repro.obs import trace

    trace.enable(out_dir="traces")
    with trace.tracer().root("request", target="G4") as span:
        with trace.tracer().span("cache.lookup", tier="memory"):
            ...
    trace.tracer().flush()
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Environment variable turning tracing on at process start (``1``/``true``/
#: ``on``); spawned fleet workers inherit it.
ENV_VAR = "REPRO_TRACE"

#: Directory span files are flushed into (``spans-<process tag>.jsonl``,
#: one file per process).  Inherited by spawned fleet workers, which is how
#: a multi-process replay lands all its spans in one place.
ENV_DIR = "REPRO_TRACE_DIR"

#: Process tag override (defaults to ``main``; fleet workers set their own).
ENV_TAG = "REPRO_TRACE_TAG"

#: Explicit override set by :func:`enable` / :func:`disable`; ``None``
#: defers to the environment variable.
_mode_override: Optional[bool] = None

_tls = threading.local()


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in ("1", "true", "on")


def enabled() -> bool:
    """Whether tracing is currently active."""
    if _mode_override is not None:
        return _mode_override
    return _env_enabled()


def enable(out_dir: Optional[Union[str, os.PathLike]] = None) -> None:
    """Turn tracing on for this process *and* its spawned workers.

    Parameters
    ----------
    out_dir:
        Optional span-file directory, published via :data:`ENV_DIR` so
        fleet worker processes (which inherit the environment) flush their
        span files next to this process's.
    """
    global _mode_override
    _mode_override = True
    os.environ[ENV_VAR] = "1"
    if out_dir is not None:
        os.environ[ENV_DIR] = os.fspath(out_dir)


def disable() -> None:
    """Turn tracing off (and stop advertising it to spawned workers)."""
    global _mode_override
    _mode_override = False
    os.environ.pop(ENV_VAR, None)


def reset() -> None:
    """Forget any :func:`enable`/:func:`disable` override (test helper)."""
    global _mode_override
    _mode_override = None


def _now_us() -> float:
    # Wall clock, deliberately: spans from different processes must share
    # one timeline.  Sanctioned by the lint nondeterminism allowlist.
    return time.time() * 1e6


def now_us() -> float:
    """Current wall-clock time in span-timestamp microseconds.

    For instrumentation sites outside this module that need timestamps on
    the span timeline (e.g. :meth:`Tracer.emit` callers) — the clock read
    stays confined to this module, which the lint nondeterminism allowlist
    sanctions.
    """
    return _now_us()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of an in-flight span.

    Parameters
    ----------
    trace_id:
        The end-to-end request trace this span belongs to.
    span_id:
        The span itself (children created under this context use it as
        their ``parent_id``).
    """

    trace_id: str
    span_id: str


class Span:
    """One timed operation; records start/end wall-clock microseconds.

    Spans are created via :meth:`Tracer.root`/:meth:`Tracer.span` (as
    context managers) and carry free-form ``attrs`` set at creation or via
    :meth:`set`.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "process",
        "thread",
        "start_us",
        "end_us",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        process: str,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.process = process
        self.thread = threading.current_thread().name
        self.start_us = _now_us()
        self.end_us: Optional[float] = None
        self.attrs = attrs

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def context(self) -> SpanContext:
        """This span's propagatable context."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> Dict[str, object]:
        """JSONL record form (pinned key order)."""
        end_us = self.end_us if self.end_us is not None else self.start_us
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "thread": self.thread,
            "start_us": self.start_us,
            "dur_us": end_us - self.start_us,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
        }


class _NullSpan:
    """Shared no-op span handed out while tracing is off."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None

    def set(self, key: str, value: object) -> None:
        """Discard the attribute (tracing is off)."""

    def context(self) -> None:
        """No context to propagate (tracing is off)."""
        return None


NULL_SPAN = _NullSpan()


class _NullScope:
    """Reusable no-op context manager (the off-path of every scope API)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _SpanScope:
    """Context manager pushing one live span onto the thread-local stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        _stack().append(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._span.end_us = _now_us()
        stack = _stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        self._tracer._record(self._span)
        return False


class _ContextScope:
    """Context manager installing a remote/captured context as the parent."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: SpanContext) -> None:
        self._ctx = ctx

    def __enter__(self) -> SpanContext:
        _stack().append(self._ctx)
        return self._ctx

    def __exit__(self, *exc_info: object) -> bool:
        stack = _stack()
        if stack and stack[-1] is self._ctx:
            stack.pop()
        return False


def _stack() -> List[object]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class Tracer:
    """Per-process span factory, context carrier, and span buffer.

    One instance per process (see :func:`tracer`); every layer of the
    stack calls :meth:`span` with the layer's operation name and lets the
    thread-local context stack wire up parentage.  Usage::

        with tracer().root("request", target="G4", m=64) as root:
            with tracer().span("server.resolve") as child:
                child.set("source", "table")
        tracer().flush("trace.jsonl")

    Parameters
    ----------
    process_tag:
        Short identifier baked into every ID and span record (``main`` in
        the primary process; fleet workers use ``w<id>-i<incarnation>``).
        Defaults to :data:`ENV_TAG` or ``"main"``.
    """

    def __init__(self, process_tag: Optional[str] = None) -> None:
        self.process_tag = (
            process_tag
            if process_tag is not None
            else os.environ.get(ENV_TAG, "main")
        )
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._buffer: List[Dict[str, object]] = []
        self._buffer_lock = threading.Lock()

    # -- ID generation --------------------------------------------------- #
    def _new_trace_id(self) -> str:
        return f"{self.process_tag}-t{next(self._trace_ids):05d}"

    def _new_span_id(self) -> str:
        return f"{self.process_tag}-s{next(self._span_ids):06d}"

    # -- span creation --------------------------------------------------- #
    def root(self, name: str, **attrs: object):
        """Open a span that *starts a new trace* (one per request).

        Parameters
        ----------
        name:
            Operation name (see the span taxonomy in
            ``docs/OBSERVABILITY.md``).
        """
        if not enabled():
            return _NULL_SCOPE
        span = Span(
            name=name,
            trace_id=self._new_trace_id(),
            span_id=self._new_span_id(),
            parent_id=None,
            process=self.process_tag,
            attrs=dict(attrs),
        )
        return _SpanScope(self, span)

    def span(self, name: str, **attrs: object):
        """Open a child span under the ambient context (or a fresh trace).

        Parameters
        ----------
        name:
            Operation name (see the span taxonomy in
            ``docs/OBSERVABILITY.md``).
        """
        if not enabled():
            return _NULL_SCOPE
        parent = self.current()
        span = Span(
            name=name,
            trace_id=(
                parent.trace_id if parent is not None else self._new_trace_id()
            ),
            span_id=self._new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            process=self.process_tag,
            attrs=dict(attrs),
        )
        return _SpanScope(self, span)

    def emit(
        self,
        name: str,
        start_us: float,
        end_us: float,
        parent: Optional[SpanContext] = None,
        **attrs: object,
    ) -> None:
        """Record an already-timed span (e.g. a queue wait) directly.

        Parameters
        ----------
        name:
            Operation name.
        start_us:
            Wall-clock start in microseconds (``time.time() * 1e6`` scale).
        end_us:
            Wall-clock end in microseconds.
        parent:
            Explicit parent context; defaults to the ambient one.
        """
        if not enabled():
            return
        parent = parent if parent is not None else self.current()
        span = Span(
            name=name,
            trace_id=(
                parent.trace_id if parent is not None else self._new_trace_id()
            ),
            span_id=self._new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            process=self.process_tag,
            attrs=dict(attrs),
        )
        span.start_us = start_us
        span.end_us = max(start_us, end_us)
        self._record(span)

    # -- context propagation --------------------------------------------- #
    def current(self) -> Optional[SpanContext]:
        """The ambient span context of the calling thread (or ``None``)."""
        stack = _stack()
        if not stack:
            return None
        top = stack[-1]
        if isinstance(top, SpanContext):
            return top
        return top.context()  # type: ignore[union-attr]

    def capture(self) -> Optional[SpanContext]:
        """Snapshot the ambient context for another thread to activate."""
        if not enabled():
            return None
        return self.current()

    def activate(self, ctx: Optional[SpanContext]):
        """Install a captured context as this thread's ambient parent.

        Parameters
        ----------
        ctx:
            A context from :meth:`capture` (``None`` is a no-op scope, so
            pool workers can activate unconditionally).
        """
        if ctx is None or not enabled():
            return _NULL_SCOPE
        return _ContextScope(ctx)

    def wire_context(self) -> Optional[Tuple[str, str, float]]:
        """The ambient context as a process-boundary wire tuple.

        Returns ``(trace_id, span_id, sent_us)`` — the timestamp lets the
        receiving worker emit a queue-wait span — or ``None`` when tracing
        is off or no context is active (the fleet protocol ships the
        ``None`` and the worker side no-ops).
        """
        if not enabled():
            return None
        ctx = self.current()
        if ctx is None:
            return None
        return (ctx.trace_id, ctx.span_id, _now_us())

    def adopt(self, wire: Optional[Tuple[str, str, float]]):
        """Activate a :meth:`wire_context` tuple received from another process.

        Parameters
        ----------
        wire:
            The wire tuple (or ``None``, yielding a no-op scope).
        """
        if wire is None or not enabled():
            return _NULL_SCOPE
        trace_id, span_id = str(wire[0]), str(wire[1])
        return _ContextScope(SpanContext(trace_id=trace_id, span_id=span_id))

    # -- buffering and export -------------------------------------------- #
    def _record(self, span: Span) -> None:
        with self._buffer_lock:
            self._buffer.append(span.to_dict())

    def spans(self) -> List[Dict[str, object]]:
        """A snapshot of the buffered (finished, unflushed) span records."""
        with self._buffer_lock:
            return list(self._buffer)

    def clear(self) -> None:
        """Drop all buffered spans (test helper)."""
        with self._buffer_lock:
            self._buffer.clear()

    def default_path(self) -> Optional[Path]:
        """Where :meth:`flush` writes when no path is given."""
        directory = os.environ.get(ENV_DIR)
        if not directory:
            return None
        return Path(directory) / f"spans-{self.process_tag}.jsonl"

    def flush(
        self, path: Optional[Union[str, os.PathLike]] = None
    ) -> Optional[Path]:
        """Append buffered spans to a JSONL file and clear the buffer.

        Parameters
        ----------
        path:
            Target file; defaults to ``spans-<tag>.jsonl`` under
            :data:`ENV_DIR`.  With neither, the buffer is kept and ``None``
            is returned.
        """
        target = Path(path) if path is not None else self.default_path()
        if target is None:
            return None
        with self._buffer_lock:
            records = list(self._buffer)
            self._buffer.clear()
        if not records:
            return target
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=False) + "\n")
        return target


_tracer: Optional[Tracer] = None
_tracer_lock = threading.Lock()


def _atexit_flush() -> None:
    if _tracer is not None and enabled():
        _tracer.flush()


def tracer() -> Tracer:
    """The process-wide :class:`Tracer` singleton (created on first use)."""
    global _tracer
    if _tracer is None:
        with _tracer_lock:
            if _tracer is None:
                _tracer = Tracer()
                atexit.register(_atexit_flush)
    return _tracer


def set_process_tag(tag: str) -> None:
    """Re-tag this process's tracer (fleet workers call this at startup).

    Parameters
    ----------
    tag:
        The new process tag (e.g. ``"w0-i1"``); also published to
        :data:`ENV_TAG` so late-created tracers agree.
    """
    os.environ[ENV_TAG] = tag
    tracer().process_tag = tag
