"""Tensor operators.

The operator set covers what the paper's workloads need: GEMM, 2-D
convolution (lowered to GEMM via im2col by :mod:`repro.ir.builders`),
activations (ReLU, SiLU, GELU), elementwise arithmetic (add, multiply)
for residual connections and gated FFNs, and the zero-FLOP data-movement
operators (reshape, transpose) that real model exports sprinkle between
them — the graph rewrite layer (:mod:`repro.graphs.rewrite`) exists to
sink those out of the way of chain extraction.

Every operator knows its input/output tensors, its FLOP count and the number
of bytes it touches, which is all the downstream roofline and baseline models
require.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

from repro.ir.tensor import DType, TensorSpec


class Operator(ABC):
    """Base class for all tensor operators."""

    #: Unique operator name within its graph.
    name: str

    @property
    @abstractmethod
    def inputs(self) -> List[TensorSpec]:
        """Input tensor specs in positional order."""

    @property
    @abstractmethod
    def output(self) -> TensorSpec:
        """Output tensor spec."""

    @abstractmethod
    def flops(self) -> int:
        """Floating-point operations performed (multiply-add counts as 2)."""

    @property
    def is_compute_intensive(self) -> bool:
        """Whether the operator is compute-bound in isolation (GEMM/conv)."""
        return False

    def io_bytes(self) -> int:
        """Bytes read and written if the operator executes unfused."""
        return sum(t.num_bytes for t in self.inputs) + self.output.num_bytes

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of unfused global-memory traffic."""
        io = self.io_bytes()
        return self.flops() / io if io else 0.0


@dataclass(frozen=True)
class Gemm(Operator):
    """General matrix multiplication ``out[M, N] = lhs[M, K] @ rhs[K, N]``.

    Parameters
    ----------
    name:
        Operator name.
    lhs, rhs:
        Input tensor specs.  ``lhs`` has shape (M, K) and ``rhs`` (K, N).
    accum_dtype:
        Accumulator datatype (FP32 by default, as tensor cores do).
    """

    name: str
    lhs: TensorSpec
    rhs: TensorSpec
    accum_dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.lhs.rank != 2 or self.rhs.rank != 2:
            raise ValueError("Gemm operands must be rank-2 tensors")
        if self.lhs.shape[1] != self.rhs.shape[0]:
            raise ValueError(
                f"Gemm dimension mismatch: lhs {self.lhs.shape} x rhs {self.rhs.shape}"
            )

    @property
    def m(self) -> int:
        return self.lhs.shape[0]

    @property
    def k(self) -> int:
        return self.lhs.shape[1]

    @property
    def n(self) -> int:
        return self.rhs.shape[1]

    @property
    def inputs(self) -> List[TensorSpec]:
        return [self.lhs, self.rhs]

    @property
    def output(self) -> TensorSpec:
        return TensorSpec(
            name=f"{self.name}.out", shape=(self.m, self.n), dtype=self.lhs.dtype
        )

    @property
    def is_compute_intensive(self) -> bool:
        return True

    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


class ActivationKind(Enum):
    """Supported activation functions."""

    RELU = "relu"
    SILU = "silu"
    GELU = "gelu"
    IDENTITY = "identity"


@dataclass(frozen=True)
class Activation(Operator):
    """Elementwise activation applied to a single tensor."""

    name: str
    kind: ActivationKind
    input_spec: TensorSpec

    @property
    def inputs(self) -> List[TensorSpec]:
        return [self.input_spec]

    @property
    def output(self) -> TensorSpec:
        return self.input_spec.with_name(f"{self.name}.out")

    def flops(self) -> int:
        # One (RELU) to a handful (SiLU/GELU) of flops per element; use the
        # conventional single-op accounting used by roofline analyses.
        per_element = {
            ActivationKind.RELU: 1,
            ActivationKind.SILU: 4,
            ActivationKind.GELU: 8,
            ActivationKind.IDENTITY: 0,
        }[self.kind]
        return per_element * self.input_spec.num_elements


class ElementwiseKind(Enum):
    """Supported binary elementwise operators."""

    ADD = "add"
    MUL = "mul"


@dataclass(frozen=True)
class Elementwise(Operator):
    """Binary elementwise operator over two same-shaped tensors."""

    name: str
    kind: ElementwiseKind
    lhs: TensorSpec
    rhs: TensorSpec

    def __post_init__(self) -> None:
        if self.lhs.shape != self.rhs.shape:
            raise ValueError(
                f"elementwise operands must share a shape: "
                f"{self.lhs.shape} vs {self.rhs.shape}"
            )

    @property
    def inputs(self) -> List[TensorSpec]:
        return [self.lhs, self.rhs]

    @property
    def output(self) -> TensorSpec:
        return self.lhs.with_name(f"{self.name}.out")

    def flops(self) -> int:
        return self.lhs.num_elements


@dataclass(frozen=True)
class Conv2d(Operator):
    """2-D convolution in NHWC layout with OIHW weights.

    Only what the paper's ResNet-derived chains need is supported: stride 1,
    'same' padding for 3x3 kernels and no padding for 1x1 kernels, so the
    spatial size of the output equals the input.
    """

    name: str
    input_spec: TensorSpec  # (N, H, W, C_in)
    weight: TensorSpec  # (C_out, C_in, kH, kW)

    def __post_init__(self) -> None:
        if self.input_spec.rank != 4:
            raise ValueError("Conv2d input must be NHWC rank-4")
        if self.weight.rank != 4:
            raise ValueError("Conv2d weight must be OIHW rank-4")
        if self.input_spec.shape[3] != self.weight.shape[1]:
            raise ValueError(
                "Conv2d channel mismatch: input C="
                f"{self.input_spec.shape[3]} vs weight I={self.weight.shape[1]}"
            )

    @property
    def batch(self) -> int:
        return self.input_spec.shape[0]

    @property
    def height(self) -> int:
        return self.input_spec.shape[1]

    @property
    def width(self) -> int:
        return self.input_spec.shape[2]

    @property
    def in_channels(self) -> int:
        return self.input_spec.shape[3]

    @property
    def out_channels(self) -> int:
        return self.weight.shape[0]

    @property
    def kernel_size(self) -> Tuple[int, int]:
        return (self.weight.shape[2], self.weight.shape[3])

    @property
    def inputs(self) -> List[TensorSpec]:
        return [self.input_spec, self.weight]

    @property
    def output(self) -> TensorSpec:
        return TensorSpec(
            name=f"{self.name}.out",
            shape=(self.batch, self.height, self.width, self.out_channels),
            dtype=self.input_spec.dtype,
        )

    @property
    def is_compute_intensive(self) -> bool:
        return True

    def flops(self) -> int:
        kh, kw = self.kernel_size
        output_positions = self.batch * self.height * self.width
        return 2 * output_positions * self.out_channels * self.in_channels * kh * kw

    def im2col_gemm_dims(self) -> Tuple[int, int, int]:
        """(M, N, K) of the GEMM this convolution lowers to via im2col.

        M = batch*H*W output positions, N = output channels and
        K = input channels * kernel area.
        """
        kh, kw = self.kernel_size
        return (
            self.batch * self.height * self.width,
            self.out_channels,
            self.in_channels * kh * kw,
        )


@dataclass(frozen=True)
class Reshape(Operator):
    """Element-order-preserving shape change (a pure metadata operator).

    Real model exports routinely interpose flatten/unflatten reshapes between
    the operators the extractor matches; a reshape moves no data and performs
    no arithmetic, so :meth:`flops` is 0 and :meth:`io_bytes` charges nothing
    (frameworks implement it as a view).  The rewrite layer eliminates
    interior reshapes by rewiring consumers straight to the input tensor,
    which :meth:`~repro.ir.graph.OperatorGraph.validate` permits because edge
    consistency is checked on element count and dtype, not on exact shape.
    """

    name: str
    input_spec: TensorSpec
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        count = 1
        for extent in self.shape:
            count *= extent
        if count != self.input_spec.num_elements:
            raise ValueError(
                f"Reshape must preserve the element count: input "
                f"{self.input_spec.shape} has {self.input_spec.num_elements} "
                f"elements, target {self.shape} has {count}"
            )

    @property
    def inputs(self) -> List[TensorSpec]:
        return [self.input_spec]

    @property
    def output(self) -> TensorSpec:
        return TensorSpec(
            name=f"{self.name}.out", shape=self.shape, dtype=self.input_spec.dtype
        )

    def flops(self) -> int:
        return 0

    def io_bytes(self) -> int:
        # A metadata-only view: no element is read or written.
        return 0


@dataclass(frozen=True)
class Transpose(Operator):
    """Rank-2 transpose ``out[j, i] = in[i, j]``.

    Appears when a checkpoint stores a weight in the opposite layout from
    the GEMM that consumes it (``x @ W.T`` spellings).  A transpose of a
    graph-input tensor can be folded away entirely — the rewrite layer
    replaces it with a synthetic pre-transposed graph input so the consuming
    GEMM sees a resident weight again.
    """

    name: str
    input_spec: TensorSpec

    def __post_init__(self) -> None:
        if self.input_spec.rank != 2:
            raise ValueError("Transpose supports rank-2 tensors only")

    @property
    def inputs(self) -> List[TensorSpec]:
        return [self.input_spec]

    @property
    def output(self) -> TensorSpec:
        rows, cols = self.input_spec.shape
        return TensorSpec(
            name=f"{self.name}.out", shape=(cols, rows), dtype=self.input_spec.dtype
        )

    def flops(self) -> int:
        return 0
