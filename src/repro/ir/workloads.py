"""Concrete workload configurations from the paper's evaluation.

Three suites (Tables V, VI, VII) plus the model zoo used by Table I and the
end-to-end experiments (Figures 16-17).

* Table VII — GEMM chains G1-G10 (DLRM, GPT, OPT, BERT, Performer sizes),
  GEMM1 is (m x n x k) and GEMM2 is (m x l x n).
* Table VI — gated FFN chains S1-S8 (LLaMA / Qwen family sizes).
* Table V — convolution chains C1-C8 (ResNet block shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from repro.ir.builders import (
    build_attention_ffn_variant,
    build_conv_chain,
    build_gated_ffn,
    build_moe_layer,
    build_multibranch_residual_block,
    build_standard_ffn,
    build_transformer_layer,
)
from repro.ir.graph import ChainKind, GemmChainSpec, OperatorGraph
from repro.ir.ops import ActivationKind


@dataclass(frozen=True)
class GemmChainConfig:
    """One row of Table VI or VII."""

    workload_id: str
    m: int
    n: int
    k: int
    l: int
    model: str
    gated: bool = False

    def to_spec(self) -> GemmChainSpec:
        """Materialise the canonical chain spec for this configuration."""
        builder = build_gated_ffn if self.gated else build_standard_ffn
        activation = ActivationKind.SILU if self.gated else ActivationKind.RELU
        _, spec = builder(
            self.workload_id, self.m, self.n, self.k, self.l, activation=activation
        )
        return spec

    def to_graph(self) -> OperatorGraph:
        """Materialise the operator graph for this configuration."""
        builder = build_gated_ffn if self.gated else build_standard_ffn
        activation = ActivationKind.SILU if self.gated else ActivationKind.RELU
        graph, _ = builder(
            self.workload_id, self.m, self.n, self.k, self.l, activation=activation
        )
        return graph


@dataclass(frozen=True)
class ConvChainConfig:
    """One row of Table V."""

    workload_id: str
    in_channels: int
    height: int
    width: int
    out_channels1: int
    out_channels2: int
    kernel1: int
    kernel2: int
    batch: int = 1

    def to_spec(self) -> GemmChainSpec:
        """Lower the conv chain to the canonical GEMM chain spec."""
        _, spec = build_conv_chain(
            self.workload_id,
            batch=self.batch,
            in_channels=self.in_channels,
            height=self.height,
            width=self.width,
            out_channels1=self.out_channels1,
            out_channels2=self.out_channels2,
            kernel1=self.kernel1,
            kernel2=self.kernel2,
        )
        return spec

    def to_graph(self) -> OperatorGraph:
        """Materialise the convolution operator graph."""
        graph, _ = build_conv_chain(
            self.workload_id,
            batch=self.batch,
            in_channels=self.in_channels,
            height=self.height,
            width=self.width,
            out_channels1=self.out_channels1,
            out_channels2=self.out_channels2,
            kernel1=self.kernel1,
            kernel2=self.kernel2,
        )
        return graph


# --------------------------------------------------------------------- #
# Table VII: GEMM chains (standard FFN shape).
# --------------------------------------------------------------------- #
GEMM_CHAIN_CONFIGS: Dict[str, GemmChainConfig] = {
    cfg.workload_id: cfg
    for cfg in [
        GemmChainConfig("G1", 128, 512, 32, 256, "DLRM-0"),
        GemmChainConfig("G2", 128, 256, 512, 64, "DLRM-1"),
        GemmChainConfig("G3", 128, 512, 416, 256, "DLRM-2"),
        GemmChainConfig("G4", 128, 3072, 768, 768, "GPT-2-Small"),
        GemmChainConfig("G5", 128, 16384, 4096, 4096, "GPT-6.7B"),
        GemmChainConfig("G6", 128, 4096, 1024, 1024, "GPT2-medium"),
        GemmChainConfig("G7", 128, 768, 768, 768, "nlp_gpt3_base"),
        GemmChainConfig("G8", 128, 8192, 2048, 2048, "OPT-1.3B"),
        GemmChainConfig("G9", 128, 2048, 512, 512, "Performer"),
        GemmChainConfig("G10", 128, 1536, 384, 384, "BERT"),
    ]
}

# --------------------------------------------------------------------- #
# Table VI: gated FFN chains.
# --------------------------------------------------------------------- #
GATED_FFN_CONFIGS: Dict[str, GemmChainConfig] = {
    cfg.workload_id: cfg
    for cfg in [
        GemmChainConfig("S1", 128, 8192, 3072, 3072, "llama-3.2-3B", gated=True),
        GemmChainConfig("S2", 128, 5632, 2048, 2048, "llama-1.1B", gated=True),
        GemmChainConfig("S3", 128, 11008, 4096, 4096, "Llama-2-7b", gated=True),
        GemmChainConfig("S4", 128, 8192, 2048, 2048, "Qwen2.5-2.1B", gated=True),
        GemmChainConfig("S5", 128, 11008, 2048, 2048, "Qwen2.5-3B", gated=True),
        GemmChainConfig("S6", 128, 8960, 1536, 1536, "Qwen2.5-1.5B", gated=True),
        GemmChainConfig("S7", 128, 9728, 2560, 2560, "Qwen3-4B", gated=True),
        GemmChainConfig("S8", 128, 3072, 1024, 1024, "Qwen3-0.6B", gated=True),
    ]
}

# --------------------------------------------------------------------- #
# Table V: convolution chains (ResNet blocks).
# --------------------------------------------------------------------- #
CONV_CHAIN_CONFIGS: Dict[str, ConvChainConfig] = {
    cfg.workload_id: cfg
    for cfg in [
        ConvChainConfig("C1", 64, 56, 56, 256, 64, 1, 1),
        ConvChainConfig("C2", 128, 28, 28, 512, 128, 1, 1),
        ConvChainConfig("C3", 256, 14, 14, 1024, 256, 1, 1),
        ConvChainConfig("C4", 512, 7, 7, 2048, 512, 1, 1),
        ConvChainConfig("C5", 64, 56, 56, 64, 256, 3, 1),
        ConvChainConfig("C6", 128, 28, 28, 128, 512, 3, 1),
        ConvChainConfig("C7", 256, 14, 14, 256, 1024, 3, 1),
        ConvChainConfig("C8", 512, 7, 7, 512, 2048, 3, 1),
    ]
}

WorkloadConfig = Union[GemmChainConfig, ConvChainConfig]

_ALL_SUITES: Dict[str, Dict[str, WorkloadConfig]] = {
    "gemm": dict(GEMM_CHAIN_CONFIGS),
    "gated_ffn": dict(GATED_FFN_CONFIGS),
    "conv": dict(CONV_CHAIN_CONFIGS),
}


def list_workloads(suite: str | None = None) -> List[str]:
    """List workload identifiers, optionally restricted to one suite.

    ``suite`` is one of ``"gemm"`` (G1-G10), ``"gated_ffn"`` (S1-S8) or
    ``"conv"`` (C1-C8); ``None`` lists everything.

    Example
    -------
    >>> list_workloads("gemm")[:3]
    ['G1', 'G2', 'G3']
    >>> len(list_workloads())
    26
    """
    if suite is None:
        ids: List[str] = []
        for table in _ALL_SUITES.values():
            ids.extend(table)
        return ids
    if suite not in _ALL_SUITES:
        raise KeyError(f"unknown workload suite {suite!r}")
    return list(_ALL_SUITES[suite])


def get_workload(workload_id: str) -> WorkloadConfig:
    """Return the configuration for one ``workload_id`` (e.g. ``"G5"``).

    The result is a :class:`GemmChainConfig` or :class:`ConvChainConfig` row
    of Tables V-VII; call ``.to_spec()`` for the canonical chain spec or
    ``.to_graph()`` for the operator-graph form.  Unknown ids raise
    :class:`KeyError`.

    Example
    -------
    >>> get_workload("G4").model
    'GPT-2-Small'
    >>> get_workload("G4").to_spec().n
    3072
    """
    for table in _ALL_SUITES.values():
        if workload_id in table:
            return table[workload_id]
    raise KeyError(f"unknown workload {workload_id!r}")


def get_chain_spec(workload_id: str, m: int | None = None) -> GemmChainSpec:
    """Return the canonical chain spec for a workload, optionally rescaling M."""
    spec = get_workload(workload_id).to_spec()
    if m is not None:
        spec = spec.scaled(m=m)
    return spec


# --------------------------------------------------------------------- #
# Model zoo for Table I and the end-to-end experiments.
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ModelConfig:
    """Transformer model description used by the end-to-end latency model.

    ``ffn_kind`` selects standard vs gated FFN; ``intermediate`` is the FFN
    expansion size (per branch for gated FFNs).
    """

    name: str
    num_layers: int
    hidden: int
    intermediate: int
    num_heads: int
    ffn_kind: ChainKind = ChainKind.STANDARD_FFN

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads

    def ffn_chain(self, seq_len: int, batch: int = 1) -> GemmChainSpec:
        """The FFN GEMM chain of one layer at the given sequence length."""
        m = seq_len * batch
        gated = self.ffn_kind is ChainKind.GATED_FFN
        builder = build_gated_ffn if gated else build_standard_ffn
        activation = ActivationKind.SILU if gated else ActivationKind.RELU
        _, spec = builder(
            f"{self.name}.ffn",
            m=m,
            n=self.intermediate,
            k=self.hidden,
            l=self.hidden,
            activation=activation,
        )
        return spec

    def ffn_graph(self, seq_len: int, batch: int = 1) -> OperatorGraph:
        """The FFN block of one layer as an operator graph.

        The graph compiler's chain extractor recovers exactly
        :meth:`ffn_chain` from this graph (same canonical identity, hence the
        same plan-cache key), which is how the end-to-end models route their
        FFN component through :func:`repro.graphs.compile_graph` instead of
        hand-wiring the chain spec.
        """
        m = seq_len * batch
        gated = self.ffn_kind is ChainKind.GATED_FFN
        builder = build_gated_ffn if gated else build_standard_ffn
        activation = ActivationKind.SILU if gated else ActivationKind.RELU
        graph, _ = builder(
            f"{self.name}.ffn",
            m=m,
            n=self.intermediate,
            k=self.hidden,
            l=self.hidden,
            activation=activation,
        )
        return graph

    def layer_graph(self, seq_len: int, batch: int = 1) -> OperatorGraph:
        """One full decoder layer (attention projection, residuals, FFN)."""
        return build_transformer_layer(
            f"{self.name}.layer",
            m=seq_len * batch,
            hidden=self.hidden,
            intermediate=self.intermediate,
            ffn_kind=self.ffn_kind,
        )


MODEL_ZOO: Dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in [
        ModelConfig("GPT-6.7B", 32, 4096, 16384, 32),
        ModelConfig("LLaMA-1B", 22, 2048, 5632, 32, ChainKind.GATED_FFN),
        ModelConfig("OPT-1.3B", 24, 2048, 8192, 32),
        ModelConfig("BERT", 12, 768, 3072, 12),
        ModelConfig("GPT-2", 12, 768, 3072, 12),
        ModelConfig("GPT-2-Small", 12, 768, 3072, 12),
        ModelConfig("llama-3.2-3B", 28, 3072, 8192, 24, ChainKind.GATED_FFN),
        ModelConfig("Llama-2-7b", 32, 4096, 11008, 32, ChainKind.GATED_FFN),
        ModelConfig("Qwen2.5-1.5B", 28, 1536, 8960, 12, ChainKind.GATED_FFN),
        ModelConfig("Qwen2.5-3B", 36, 2048, 11008, 16, ChainKind.GATED_FFN),
        ModelConfig("Qwen3-4B", 36, 2560, 9728, 32, ChainKind.GATED_FFN),
        ModelConfig("Qwen3-0.6B", 28, 1024, 3072, 16, ChainKind.GATED_FFN),
        ModelConfig("Llama3-70B", 80, 8192, 28672, 64, ChainKind.GATED_FFN),
        ModelConfig("Qwen2.5-14B", 48, 5120, 13824, 40, ChainKind.GATED_FFN),
        ModelConfig("Qwen2.5-32B", 64, 5120, 27648, 40, ChainKind.GATED_FFN),
    ]
}


def get_model(name: str) -> ModelConfig:
    """Return one model configuration from the zoo."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}")
    return MODEL_ZOO[name]


# --------------------------------------------------------------------- #
# Graph zoo: export spellings exercising the rewrite layer.
# --------------------------------------------------------------------- #
def _residual_block_graph(m: int) -> OperatorGraph:
    # m plays the batch role; spatial/channel sizes are a ResNet-ish block.
    return build_multibranch_residual_block(
        "zoo.residual_block",
        batch=max(1, m // 64),
        channels=64,
        height=14,
        width=14,
        mid_channels=128,
    )


def _attention_ffn_graph(m: int) -> OperatorGraph:
    return build_attention_ffn_variant(
        "zoo.attention_ffn", m=m, hidden=768, intermediate=3072
    )


def _moe_layer_graph(m: int) -> OperatorGraph:
    return build_moe_layer(
        "zoo.moe_layer", m=m, hidden=1024, intermediate=2816, experts=2
    )


#: A graph-zoo entry: the problem-size scale ``m`` to an operator graph.
GraphZooFactory = Callable[[int], OperatorGraph]


#: Operator graphs spelled the way real model exports spell them — interior
#: reshapes, transposed weight layouts, mirrored gating operands.  Every
#: entry extracts **zero** fusible chains as written and at least one after
#: :func:`repro.graphs.rewrite.canonicalize`; the rewrite coverage benchmark
#: (``benchmarks/test_rewrite_coverage.py``) sweeps this registry.  Kept
#: separate from the Table V-VII suites (``list_workloads`` does not include
#: these ids) because they are graphs, not chain configurations.
GRAPH_ZOO: Dict[str, GraphZooFactory] = {
    "residual_block": _residual_block_graph,
    "attention_ffn": _attention_ffn_graph,
    "moe_layer": _moe_layer_graph,
}


def list_graph_zoo() -> List[str]:
    """List the graph-zoo entry names.

    Example
    -------
    >>> list_graph_zoo()
    ['residual_block', 'attention_ffn', 'moe_layer']
    """
    return list(GRAPH_ZOO)


def get_zoo_graph(name: str, m: int = 128) -> OperatorGraph:
    """Materialise one graph-zoo entry at problem size ``m``.

    ``m`` is the GEMM-row scale (sequence-length-times-batch for the
    transformer-shaped entries, batch granularity for the conv block).

    Example
    -------
    >>> get_zoo_graph("moe_layer", m=64).name
    'zoo.moe_layer'
    """
    if name not in GRAPH_ZOO:
        raise KeyError(f"unknown graph-zoo entry {name!r}")
    return GRAPH_ZOO[name](m)
