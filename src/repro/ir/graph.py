"""Operator graphs and the canonical GEMM-chain description.

Two representations coexist, mirroring the paper:

* :class:`OperatorGraph` — a general DAG of :class:`~repro.ir.ops.Operator`
  nodes.  End-to-end models and graph-level baselines (TASO-like
  substitution, Relay-like epilogue fusion) operate on this.
* :class:`GemmChainSpec` — the canonical fusible chain of two
  compute-intensive operators with loop dimensions (M, N, K, L) as drawn in
  Figure 2.  The dataflow analyzer and the fusion search engine operate on
  this compact form; convolution chains are lowered to it through im2col.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.errors import FusionError
from repro.ir.ops import ActivationKind, Operator
from repro.ir.tensor import DType, TensorSpec


class ChainKind(Enum):
    """The three fusible chain shapes of Figure 1."""

    STANDARD_FFN = "standard_ffn"
    GATED_FFN = "gated_ffn"
    CONV_CHAIN = "conv_chain"


#: Loop dimension names used throughout the project, in canonical order.
DIMENSIONS = ("m", "n", "k", "l")


@dataclass(frozen=True)
class GemmChainSpec:
    """A two-GEMM fusible chain with loop dimensions (M, N, K, L).

    Following the paper's convention, GEMM0 computes
    ``C[M, N] = A[M, K] @ B[K, N]`` and GEMM1 computes
    ``E[M, L] = C[M, N] @ D[N, L]``; an activation sits between them.  A
    gated FFN runs two parallel GEMM0 branches whose results are combined
    with an elementwise multiply before GEMM1.

    Parameters
    ----------
    name:
        Workload identifier (for example ``"G5"`` or ``"llama-2-7b-ffn"``).
    m, n, k, l:
        The four loop extents.
    kind:
        Chain shape (standard FFN, gated FFN or im2col-lowered conv chain).
    activation:
        Activation applied to the intermediate matrix C.
    dtype:
        Element datatype.

    Example
    -------
    >>> spec = GemmChainSpec("demo", m=128, n=512, k=64, l=64)
    >>> spec.scaled(m=64).m          # rebin the runtime token dimension
    64
    >>> spec.total_flops() == 2 * 128 * 512 * 64 + 2 * 128 * 64 * 512
    True
    >>> sorted(spec.canonical_dict())   # the plan-cache identity fields
    ['activation', 'dtype', 'k', 'kind', 'l', 'm', 'n']
    """

    name: str
    m: int
    n: int
    k: int
    l: int
    kind: ChainKind = ChainKind.STANDARD_FFN
    activation: ActivationKind = ActivationKind.RELU
    dtype: DType = DType.FP16

    def __post_init__(self) -> None:
        for dim_name in DIMENSIONS:
            if getattr(self, dim_name) <= 0:
                raise ValueError(f"dimension {dim_name} must be positive")

    # ------------------------------------------------------------------ #
    # Dimensions and shapes
    # ------------------------------------------------------------------ #
    def dimension_sizes(self) -> Dict[str, int]:
        """Loop extents keyed by dimension name."""
        return {dim: getattr(self, dim) for dim in DIMENSIONS}

    @property
    def num_gemm0_branches(self) -> int:
        """Number of parallel GEMM0 branches (2 for gated FFN, else 1)."""
        return 2 if self.kind is ChainKind.GATED_FFN else 1

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    # Tensor byte sizes ------------------------------------------------- #
    @property
    def a_bytes(self) -> int:
        """Size of input activation A[M, K]."""
        return self.m * self.k * self.itemsize

    @property
    def b_bytes(self) -> int:
        """Size of GEMM0 weights (both branches for a gated FFN)."""
        return self.k * self.n * self.itemsize * self.num_gemm0_branches

    @property
    def c_bytes(self) -> int:
        """Size of the intermediate matrix C[M, N]."""
        return self.m * self.n * self.itemsize

    @property
    def d_bytes(self) -> int:
        """Size of GEMM1 weights D[N, L]."""
        return self.n * self.l * self.itemsize

    @property
    def e_bytes(self) -> int:
        """Size of the output matrix E[M, L]."""
        return self.m * self.l * self.itemsize

    # FLOPs -------------------------------------------------------------- #
    def gemm0_flops(self) -> int:
        """FLOPs of the first GEMM (all branches)."""
        return 2 * self.m * self.n * self.k * self.num_gemm0_branches

    def gemm1_flops(self) -> int:
        """FLOPs of the second GEMM."""
        return 2 * self.m * self.l * self.n

    def total_flops(self) -> int:
        """FLOPs of the whole chain (activations/elementwise excluded)."""
        return self.gemm0_flops() + self.gemm1_flops()

    # Global-memory traffic bounds --------------------------------------- #
    def weight_bytes(self) -> int:
        """Bytes of weights that must be read at least once."""
        return self.b_bytes + self.d_bytes

    def io_bytes_min(self) -> int:
        """Lower bound on global traffic: inputs + weights + final output."""
        return self.a_bytes + self.weight_bytes() + self.e_bytes

    def unfused_global_bytes(self) -> int:
        """Global traffic of the unfused execution.

        Each GEMM reads its operands and writes its result, so the
        intermediate C makes a full round trip (one write, one read), and
        the activation makes another (read + write) when it runs as a
        separate elementwise kernel.
        """
        gemm0 = self.a_bytes + self.b_bytes + self.c_bytes
        activation = 2 * self.c_bytes
        gemm1 = self.c_bytes + self.d_bytes + self.e_bytes
        if self.kind is ChainKind.GATED_FFN:
            # The two branch results are combined by a separate elementwise
            # multiply: read both, write one.
            activation += self.c_bytes
        return gemm0 + activation + gemm1

    def intermediate_bytes(self) -> int:
        """Bytes of intermediate data that fusion must keep on chip."""
        return self.c_bytes * self.num_gemm0_branches

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte at the fused lower bound."""
        return self.total_flops() / self.io_bytes_min()

    # Serialization and canonical identity ------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """Full serialization (including the name) for plan persistence."""
        payload = self.canonical_dict()
        payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GemmChainSpec":
        """Rebuild a chain spec from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            m=int(payload["m"]),
            n=int(payload["n"]),
            k=int(payload["k"]),
            l=int(payload["l"]),
            kind=ChainKind(payload["kind"]),
            activation=ActivationKind(payload["activation"]),
            dtype=DType(payload["dtype"]),
        )

    def canonical_dict(self) -> Dict[str, object]:
        """The chain's canonical identity: everything except the name.

        Two chains with equal canonical dictionaries admit the same fusion
        plans, so the plan cache keys on this form — a workload compiled
        under one name serves requests for an identically shaped chain
        registered under another.
        """
        return {
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "l": self.l,
            "kind": self.kind.value,
            "activation": self.activation.value,
            "dtype": self.dtype.value,
        }

    def canonical_hash(self) -> str:
        """Stable hex digest of the canonical identity."""
        blob = json.dumps(self.canonical_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def same_shape(self, other: "GemmChainSpec") -> bool:
        """Whether ``other`` is canonically identical (names may differ)."""
        return self.canonical_dict() == other.canonical_dict()

    def scaled(self, m: Optional[int] = None, name: Optional[str] = None) -> "GemmChainSpec":
        """Return a copy with a different M (used by the runtime binning)."""
        return GemmChainSpec(
            name=name or self.name,
            m=m if m is not None else self.m,
            n=self.n,
            k=self.k,
            l=self.l,
            kind=self.kind,
            activation=self.activation,
            dtype=self.dtype,
        )


class OperatorGraph:
    """A DAG of operators connected through named tensors.

    Edges are implied by tensor names: an operator that lists tensor ``t``
    among its inputs consumes the output of whichever operator produced
    ``t``.  Graph inputs are tensors no operator produces; passing
    ``inputs=`` declares them explicitly, which lets :meth:`validate` reject
    edges that reference tensors no operator produces and no input declares
    (usually a typo in a tensor name).

    Example
    -------
    >>> from repro.ir.builders import build_standard_ffn
    >>> graph, _ = build_standard_ffn("demo", m=64, n=128, k=32, l=32)
    >>> len(graph)                            # gemm0 -> activation -> gemm1
    3
    >>> [op.name for op in graph.topological_order()]
    ['demo.gemm0', 'demo.act', 'demo.gemm1']
    >>> graph.validate() is graph             # raises FusionError if malformed
    True
    """

    def __init__(
        self,
        name: str,
        operators: Optional[Sequence[Operator]] = None,
        inputs: Optional[Sequence[TensorSpec]] = None,
    ):
        self.name = name
        self._operators: List[Operator] = []
        self._producers: Dict[str, Operator] = {}
        self._declared_inputs: Optional[Dict[str, TensorSpec]] = (
            {tensor.name: tensor for tensor in inputs} if inputs is not None else None
        )
        for op in operators or []:
            self.add(op)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, op: Operator) -> Operator:
        """Add an operator to the graph and return it."""
        if any(existing.name == op.name for existing in self._operators):
            raise ValueError(f"duplicate operator name {op.name!r}")
        out_name = op.output.name
        if out_name in self._producers:
            raise ValueError(f"tensor {out_name!r} already has a producer")
        self._operators.append(op)
        self._producers[out_name] = op
        return op

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def operators(self) -> List[Operator]:
        """Operators in insertion order (a valid topological order)."""
        return list(self._operators)

    def __len__(self) -> int:
        return len(self._operators)

    @property
    def declared_inputs(self) -> Optional[List[TensorSpec]]:
        """The explicitly declared input tensors, or ``None`` when implicit.

        Graph surgery (the rewrite layer) uses this to rebuild a graph with
        the same input declaration discipline as the original: a graph that
        declared its inputs keeps rejecting tensor-name typos after rewriting.
        """
        if self._declared_inputs is None:
            return None
        return list(self._declared_inputs.values())

    def producer_of(self, tensor_name: str) -> Optional[Operator]:
        """The operator producing ``tensor_name``, or ``None`` for inputs."""
        return self._producers.get(tensor_name)

    def consumers_of(self, tensor_name: str) -> List[Operator]:
        """Operators consuming ``tensor_name``."""
        return [
            op
            for op in self._operators
            if any(t.name == tensor_name for t in op.inputs)
        ]

    def input_tensors(self) -> List[TensorSpec]:
        """Tensors read by the graph but produced by no operator."""
        seen: Dict[str, TensorSpec] = {}
        for op in self._operators:
            for tensor in op.inputs:
                if tensor.name not in self._producers and tensor.name not in seen:
                    seen[tensor.name] = tensor
        return list(seen.values())

    def output_tensors(self) -> List[TensorSpec]:
        """Tensors produced by an operator but consumed by none."""
        outputs = []
        for op in self._operators:
            if not self.consumers_of(op.output.name):
                outputs.append(op.output)
        return outputs

    def intermediate_tensors(self) -> List[TensorSpec]:
        """Tensors produced by one operator and consumed by another."""
        intermediates = []
        for op in self._operators:
            if self.consumers_of(op.output.name):
                intermediates.append(op.output)
        return intermediates

    def io_tensors(self) -> List[TensorSpec]:
        """Graph inputs plus graph outputs."""
        return self.input_tensors() + self.output_tensors()

    def total_flops(self) -> int:
        """Sum of operator FLOP counts."""
        return sum(op.flops() for op in self._operators)

    def to_networkx(self) -> nx.DiGraph:
        """Export the graph as a ``networkx.DiGraph`` of operator names."""
        graph = nx.DiGraph()
        for op in self._operators:
            graph.add_node(op.name, operator=op)
        for op in self._operators:
            for tensor in op.inputs:
                producer = self._producers.get(tensor.name)
                if producer is not None:
                    graph.add_edge(producer.name, op.name, tensor=tensor.name)
        return graph

    def topological_order(self) -> List[Operator]:
        """Operators sorted topologically (:class:`FusionError` on cycles)."""
        nx_graph = self.to_networkx()
        try:
            order = list(nx.topological_sort(nx_graph))
        except nx.NetworkXUnfeasible as exc:
            raise FusionError(self._cycle_message(nx_graph)) from exc
        by_name = {op.name: op for op in self._operators}
        return [by_name[name] for name in order]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "OperatorGraph":
        """Check structural well-formedness, raising :class:`FusionError`.

        Three classes of malformed graph are rejected with a message naming
        the offending operators, instead of surfacing later as an obscure
        failure deep inside chain extraction or scheduling:

        * **cycles** — operators whose tensors mutually depend on each other;
        * **inconsistent edges** — a consumed tensor spec whose element count
          or dtype disagrees with what its producer actually emits (pure
          reshapes between producer and consumer are legal);
        * **unknown producers** — when the graph declares its input tensors
          (``inputs=``), a consumed tensor that is neither produced by any
          operator nor declared as an input.

        Returns the graph itself so validation chains into construction:
        ``compile_graph(OperatorGraph(...).validate())``.
        """
        for op in self._operators:
            for tensor in op.inputs:
                producer = self._producers.get(tensor.name)
                if producer is None:
                    if (
                        self._declared_inputs is not None
                        and tensor.name not in self._declared_inputs
                    ):
                        raise FusionError(
                            f"graph {self.name!r}: operator {op.name!r} consumes "
                            f"tensor {tensor.name!r}, which no operator produces "
                            "and the graph does not declare as an input"
                        )
                    continue
                produced = producer.output
                if (
                    produced.num_elements != tensor.num_elements
                    or produced.dtype is not tensor.dtype
                ):
                    raise FusionError(
                        f"graph {self.name!r}: edge {producer.name!r} -> "
                        f"{op.name!r} is inconsistent: produced "
                        f"{produced.shape}/{produced.dtype.value} vs consumed "
                        f"{tensor.shape}/{tensor.dtype.value}"
                    )
        nx_graph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(nx_graph):
            raise FusionError(self._cycle_message(nx_graph))
        return self

    def _cycle_message(self, nx_graph: nx.DiGraph) -> str:
        cycle = nx.find_cycle(nx_graph)
        path = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[-1][1]}"
        return f"graph {self.name!r} contains a cycle: {path}"

    def compute_intensive_operators(self) -> List[Operator]:
        """GEMM/conv operators, the fusion anchors."""
        return [op for op in self._operators if op.is_compute_intensive]
