"""Constructors for the paper's fusible chain shapes.

Figure 1 shows the three chains FlashFuser targets:

* a convolution block (3x3 conv -> ReLU -> 1x1 conv), lowered to a GEMM chain
  through im2col,
* a standard FFN (Linear -> ReLU -> Linear),
* a gated FFN (two parallel Linears, SiLU, elementwise Mul, Linear), e.g.
  SwiGLU.

Each builder returns both the general :class:`~repro.ir.graph.OperatorGraph`
and the compact :class:`~repro.ir.graph.GemmChainSpec` the search engine
consumes.

The ``build_*_variant``-style builders at the bottom of the module
(:func:`build_multibranch_residual_block`, :func:`build_attention_ffn_variant`,
:func:`build_moe_layer`) construct the *export spellings* of those same
shapes — interior reshapes, transposed weight layouts, swapped gating
operands — that real model dumps produce.  They extract **zero** chains as
written and exist to exercise the graph rewrite layer
(:mod:`repro.graphs.rewrite`), which canonicalizes them back to Figure-1
form; they are registered in :data:`repro.ir.workloads.GRAPH_ZOO`.
"""

from __future__ import annotations

from typing import Tuple

from repro.ir.graph import ChainKind, GemmChainSpec, OperatorGraph
from repro.ir.ops import (
    Activation,
    ActivationKind,
    Conv2d,
    Elementwise,
    ElementwiseKind,
    Gemm,
    Reshape,
    Transpose,
)
from repro.ir.tensor import DType, TensorSpec


def build_standard_ffn(
    name: str,
    m: int,
    n: int,
    k: int,
    l: int,
    activation: ActivationKind = ActivationKind.RELU,
    dtype: DType = DType.FP16,
) -> Tuple[OperatorGraph, GemmChainSpec]:
    """Build ``E = act(A @ B) @ D`` with A: (m, k), B: (k, n), D: (n, l)."""
    a = TensorSpec(f"{name}.A", (m, k), dtype)
    b = TensorSpec(f"{name}.B", (k, n), dtype)
    d = TensorSpec(f"{name}.D", (n, l), dtype)

    graph = OperatorGraph(name)
    gemm0 = graph.add(Gemm(f"{name}.gemm0", lhs=a, rhs=b))
    act = graph.add(Activation(f"{name}.act", activation, gemm0.output))
    graph.add(Gemm(f"{name}.gemm1", lhs=act.output.with_shape((m, n)), rhs=d))

    spec = GemmChainSpec(
        name=name,
        m=m,
        n=n,
        k=k,
        l=l,
        kind=ChainKind.STANDARD_FFN,
        activation=activation,
        dtype=dtype,
    )
    return graph, spec


def build_gated_ffn(
    name: str,
    m: int,
    n: int,
    k: int,
    l: int,
    activation: ActivationKind = ActivationKind.SILU,
    dtype: DType = DType.FP16,
) -> Tuple[OperatorGraph, GemmChainSpec]:
    """Build a gated FFN: ``E = (act(A @ B0) * (A @ B1)) @ D``.

    This is the SwiGLU-style block of Figure 1(c); in LLaMA-family models
    ``l == k`` (the down projection returns to the hidden size).
    """
    a = TensorSpec(f"{name}.A", (m, k), dtype)
    b0 = TensorSpec(f"{name}.B0", (k, n), dtype)
    b1 = TensorSpec(f"{name}.B1", (k, n), dtype)
    d = TensorSpec(f"{name}.D", (n, l), dtype)

    graph = OperatorGraph(name)
    gate = graph.add(Gemm(f"{name}.gate", lhs=a, rhs=b0))
    up = graph.add(Gemm(f"{name}.up", lhs=a, rhs=b1))
    act = graph.add(Activation(f"{name}.act", activation, gate.output))
    mul = graph.add(
        Elementwise(
            f"{name}.mul",
            ElementwiseKind.MUL,
            act.output.with_shape((m, n)),
            up.output,
        )
    )
    graph.add(Gemm(f"{name}.down", lhs=mul.output.with_shape((m, n)), rhs=d))

    spec = GemmChainSpec(
        name=name,
        m=m,
        n=n,
        k=k,
        l=l,
        kind=ChainKind.GATED_FFN,
        activation=activation,
        dtype=dtype,
    )
    return graph, spec


def build_conv_chain(
    name: str,
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels1: int,
    out_channels2: int,
    kernel1: int,
    kernel2: int,
    activation: ActivationKind = ActivationKind.RELU,
    dtype: DType = DType.FP16,
) -> Tuple[OperatorGraph, GemmChainSpec]:
    """Build conv -> activation -> conv (Table V configurations).

    Both convolutions preserve the spatial size (stride 1, 'same' padding),
    matching the ResNet bottleneck sub-blocks the paper extracts.
    """
    input_spec = TensorSpec(f"{name}.input", (batch, height, width, in_channels), dtype)
    weight1 = TensorSpec(
        f"{name}.w1", (out_channels1, in_channels, kernel1, kernel1), dtype
    )
    weight2 = TensorSpec(
        f"{name}.w2", (out_channels2, out_channels1, kernel2, kernel2), dtype
    )

    graph = OperatorGraph(name)
    conv1 = graph.add(Conv2d(f"{name}.conv1", input_spec, weight1))
    act = graph.add(Activation(f"{name}.act", activation, conv1.output))
    graph.add(
        Conv2d(
            f"{name}.conv2",
            act.output.with_shape((batch, height, width, out_channels1)),
            weight2,
        )
    )

    spec = conv_chain_to_gemm_chain(
        name=name,
        batch=batch,
        in_channels=in_channels,
        height=height,
        width=width,
        out_channels1=out_channels1,
        out_channels2=out_channels2,
        kernel1=kernel1,
        kernel2=kernel2,
        activation=activation,
        dtype=dtype,
    )
    return graph, spec


def build_transformer_layer(
    name: str,
    m: int,
    hidden: int,
    intermediate: int,
    ffn_kind: ChainKind = ChainKind.STANDARD_FFN,
    dtype: DType = DType.FP16,
) -> OperatorGraph:
    """Build one decoder layer as an operator graph the graph compiler can eat.

    The layer is: an attention output-projection GEMM standing in for the
    attention block (the per-head score/context batched GEMMs live outside
    the rank-2 GEMM IR), a residual add, the FFN chain (standard or gated,
    per ``ffn_kind``), and the closing residual add.  Only the FFN chain is
    fusible — the projection GEMM has no following activation and the
    residual adds are memory-bound glue — so the extractor partitions this
    graph into one fused region plus three residual operators, which is
    exactly the fused/unfused split the end-to-end experiments charge.
    """
    x = TensorSpec(f"{name}.x", (m, hidden), dtype)
    w_attn = TensorSpec(f"{name}.Wo", (hidden, hidden), dtype)

    graph = OperatorGraph(name)
    attn = graph.add(Gemm(f"{name}.attn_proj", lhs=x, rhs=w_attn))
    res1 = graph.add(
        Elementwise(f"{name}.residual1", ElementwiseKind.ADD, attn.output, x)
    )
    h = res1.output.with_shape((m, hidden))

    if ffn_kind is ChainKind.GATED_FFN:
        b0 = TensorSpec(f"{name}.ffn.B0", (hidden, intermediate), dtype)
        b1 = TensorSpec(f"{name}.ffn.B1", (hidden, intermediate), dtype)
        d = TensorSpec(f"{name}.ffn.D", (intermediate, hidden), dtype)
        gate = graph.add(Gemm(f"{name}.ffn.gate", lhs=h, rhs=b0))
        up = graph.add(Gemm(f"{name}.ffn.up", lhs=h, rhs=b1))
        act = graph.add(
            Activation(f"{name}.ffn.act", ActivationKind.SILU, gate.output)
        )
        mul = graph.add(
            Elementwise(
                f"{name}.ffn.mul",
                ElementwiseKind.MUL,
                act.output.with_shape((m, intermediate)),
                up.output,
            )
        )
        ffn_out = graph.add(
            Gemm(f"{name}.ffn.down", lhs=mul.output.with_shape((m, intermediate)), rhs=d)
        )
    elif ffn_kind is ChainKind.STANDARD_FFN:
        b = TensorSpec(f"{name}.ffn.B", (hidden, intermediate), dtype)
        d = TensorSpec(f"{name}.ffn.D", (intermediate, hidden), dtype)
        gemm0 = graph.add(Gemm(f"{name}.ffn.gemm0", lhs=h, rhs=b))
        act = graph.add(
            Activation(f"{name}.ffn.act", ActivationKind.RELU, gemm0.output)
        )
        ffn_out = graph.add(
            Gemm(
                f"{name}.ffn.gemm1",
                lhs=act.output.with_shape((m, intermediate)),
                rhs=d,
            )
        )
    else:
        raise ValueError(f"transformer layers have FFN chains, not {ffn_kind}")

    graph.add(
        Elementwise(
            f"{name}.residual2",
            ElementwiseKind.ADD,
            ffn_out.output,
            res1.output.with_shape((m, hidden)),
        )
    )
    return graph


def build_multibranch_residual_block(
    name: str,
    batch: int,
    channels: int,
    height: int,
    width: int,
    mid_channels: int,
    kernel: int = 3,
    activation: ActivationKind = ActivationKind.RELU,
    dtype: DType = DType.FP16,
) -> OperatorGraph:
    """Build a residual conv block as a real exporter spells it.

    The main branch is the Figure-1 conv chain (conv -> act -> conv) with a
    batch-flattening reshape interposed between the activation and the second
    convolution — the layout normalization ONNX exporters emit when they fold
    the batch dimension into the spatial extent.  The skip branch adds the
    block input back onto the main branch's output (``out_channels ==
    channels`` so the shapes agree).

    As written the reshape hides the second convolution from the extractor,
    so the graph extracts **zero** chains; the rewrite layer's
    reshape-elimination rewires ``conv2`` straight to the activation and the
    conv chain reappears.
    """
    x = TensorSpec(f"{name}.input", (batch, height, width, channels), dtype)
    weight1 = TensorSpec(
        f"{name}.w1", (mid_channels, channels, kernel, kernel), dtype
    )
    weight2 = TensorSpec(
        f"{name}.w2", (channels, mid_channels, kernel, kernel), dtype
    )

    graph = OperatorGraph(name)
    conv1 = graph.add(Conv2d(f"{name}.conv1", x, weight1))
    act = graph.add(Activation(f"{name}.act", activation, conv1.output))
    flat = graph.add(
        Reshape(
            f"{name}.flatten",
            act.output,
            (1, batch * height, width, mid_channels),
        )
    )
    conv2 = graph.add(Conv2d(f"{name}.conv2", flat.output, weight2))
    graph.add(
        Elementwise(
            f"{name}.residual",
            ElementwiseKind.ADD,
            conv2.output.with_shape((batch, height, width, channels)),
            x,
        )
    )
    return graph


def build_attention_ffn_variant(
    name: str,
    m: int,
    hidden: int,
    intermediate: int,
    activation: ActivationKind = ActivationKind.RELU,
    dtype: DType = DType.FP16,
) -> OperatorGraph:
    """Build a decoder layer whose FFN weights arrive transposed.

    Structurally :func:`build_transformer_layer` with a standard FFN, except
    the checkpoint stores both FFN weights in the opposite layout (the
    ``x @ W.T`` spelling), so each GEMM consumes its weight through an
    explicit :class:`~repro.ir.ops.Transpose`.  A transposed weight is a
    *produced* tensor, which fails the extractor's resident-weight check —
    the graph extracts **zero** chains as written.  The rewrite layer folds
    each input transpose into a synthetic pre-transposed graph input and the
    standard-FFN chain reappears.
    """
    x = TensorSpec(f"{name}.x", (m, hidden), dtype)
    w_attn = TensorSpec(f"{name}.Wo", (hidden, hidden), dtype)
    # Stored layouts are the transpose of what the GEMMs need.
    b_t = TensorSpec(f"{name}.ffn.B_t", (intermediate, hidden), dtype)
    d_t = TensorSpec(f"{name}.ffn.D_t", (hidden, intermediate), dtype)

    graph = OperatorGraph(name)
    attn = graph.add(Gemm(f"{name}.attn_proj", lhs=x, rhs=w_attn))
    res1 = graph.add(
        Elementwise(f"{name}.residual1", ElementwiseKind.ADD, attn.output, x)
    )
    h = res1.output.with_shape((m, hidden))
    t_b = graph.add(Transpose(f"{name}.ffn.B.T", b_t))
    gemm0 = graph.add(Gemm(f"{name}.ffn.gemm0", lhs=h, rhs=t_b.output))
    act = graph.add(Activation(f"{name}.ffn.act", activation, gemm0.output))
    t_d = graph.add(Transpose(f"{name}.ffn.D.T", d_t))
    ffn_out = graph.add(
        Gemm(
            f"{name}.ffn.gemm1",
            lhs=act.output.with_shape((m, intermediate)),
            rhs=t_d.output,
        )
    )
    graph.add(
        Elementwise(
            f"{name}.residual2",
            ElementwiseKind.ADD,
            ffn_out.output,
            res1.output.with_shape((m, hidden)),
        )
    )
    return graph


def build_moe_layer(
    name: str,
    m: int,
    hidden: int,
    intermediate: int,
    experts: int = 2,
    activation: ActivationKind = ActivationKind.SILU,
    dtype: DType = DType.FP16,
) -> OperatorGraph:
    """Build a small mixture-of-experts layer in its export spelling.

    A router GEMM (plus its gating activation — residual operators, since
    routing logits are a graph output) and ``experts`` parallel gated-FFN
    experts over the shared input, combined by elementwise adds.  Each expert
    carries two exporter artifacts: the gating multiply is spelled with the
    operands mirrored (``up * act(gate)``) and a flattening reshape sits
    between the multiply and the down projection.  The reshape hides the
    down GEMM from the extractor, so the graph extracts **zero** chains as
    written; after operand reordering and reshape elimination every expert
    is a canonical gated-FFN chain.
    """
    if experts < 1:
        raise ValueError("experts must be >= 1")
    x = TensorSpec(f"{name}.x", (m, hidden), dtype)
    w_router = TensorSpec(f"{name}.Wr", (hidden, experts), dtype)

    graph = OperatorGraph(name)
    router = graph.add(Gemm(f"{name}.router", lhs=x, rhs=w_router))
    graph.add(Activation(f"{name}.route", ActivationKind.SILU, router.output))

    outputs = []
    for index in range(experts):
        prefix = f"{name}.e{index}"
        b0 = TensorSpec(f"{prefix}.B0", (hidden, intermediate), dtype)
        b1 = TensorSpec(f"{prefix}.B1", (hidden, intermediate), dtype)
        d = TensorSpec(f"{prefix}.D", (intermediate, hidden), dtype)
        gate = graph.add(Gemm(f"{prefix}.gate", lhs=x, rhs=b0))
        up = graph.add(Gemm(f"{prefix}.up", lhs=x, rhs=b1))
        act = graph.add(Activation(f"{prefix}.act", activation, gate.output))
        mul = graph.add(
            Elementwise(
                f"{prefix}.mul",
                ElementwiseKind.MUL,
                up.output,  # mirrored spelling: up * act(gate)
                act.output.with_shape((m, intermediate)),
            )
        )
        flat = graph.add(
            Reshape(f"{prefix}.flatten", mul.output, (m * intermediate,))
        )
        down = graph.add(
            Gemm(
                f"{prefix}.down",
                lhs=flat.output.with_shape((m, intermediate)),
                rhs=d,
            )
        )
        outputs.append(down.output)

    combined = outputs[0]
    for index in range(1, experts):
        combine = graph.add(
            Elementwise(
                f"{name}.combine{index}",
                ElementwiseKind.ADD,
                combined.with_shape((m, hidden)),
                outputs[index],
            )
        )
        combined = combine.output
    return graph


def conv_chain_to_gemm_chain(
    name: str,
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels1: int,
    out_channels2: int,
    kernel1: int,
    kernel2: int,
    activation: ActivationKind = ActivationKind.RELU,
    dtype: DType = DType.FP16,
) -> GemmChainSpec:
    """Lower a two-convolution chain to the canonical (M, N, K, L) GEMM chain.

    With im2col, conv1 becomes a GEMM with M = batch*H*W output positions,
    K = in_channels * k1^2 and N = out_channels1; conv2 then consumes the
    (M, N) intermediate with L = out_channels2 output channels.  For 1x1
    second convolutions (the Table V cases C1-C4 and the second operator of
    C5-C8) this lowering is exact; for a 3x3 second convolution the
    intermediate would additionally need a halo exchange, which the
    chain-level model conservatively ignores (matching the paper's GEMM-chain
    treatment).
    """
    m = batch * height * width
    k = in_channels * kernel1 * kernel1
    n = out_channels1
    l = out_channels2 * kernel2 * kernel2
    return GemmChainSpec(
        name=name,
        m=m,
        n=n,
        k=k,
        l=l,
        kind=ChainKind.CONV_CHAIN,
        activation=activation,
        dtype=dtype,
    )
