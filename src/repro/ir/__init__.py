"""Operator-graph intermediate representation.

The IR describes the workloads FlashFuser fuses:

* :mod:`repro.ir.tensor` — tensor metadata (shape, dtype, byte size),
* :mod:`repro.ir.ops` — tensor operators (GEMM, Conv2d, activations,
  elementwise arithmetic, reshape/transpose movement ops),
* :mod:`repro.ir.graph` — operator graphs and the canonical fusible
  *GEMM-chain* description with dimensions (M, N, K, L),
* :mod:`repro.ir.builders` — constructors for the paper's three chain shapes
  (standard FFN, gated FFN, convolution chain via im2col),
* :mod:`repro.ir.workloads` — the concrete configurations of Tables V, VI and
  VII plus the model zoo used by Table I and Figures 16-17.
"""

from repro.ir.graph import ChainKind, GemmChainSpec, OperatorGraph
from repro.ir.builders import (
    build_attention_ffn_variant,
    build_conv_chain,
    build_gated_ffn,
    build_moe_layer,
    build_multibranch_residual_block,
    build_standard_ffn,
    build_transformer_layer,
    conv_chain_to_gemm_chain,
)
from repro.ir.ops import (
    Activation,
    ActivationKind,
    Conv2d,
    Elementwise,
    ElementwiseKind,
    Gemm,
    Operator,
    Reshape,
    Transpose,
)
from repro.ir.tensor import DType, TensorSpec
from repro.ir.workloads import (
    CONV_CHAIN_CONFIGS,
    GATED_FFN_CONFIGS,
    GEMM_CHAIN_CONFIGS,
    GRAPH_ZOO,
    ConvChainConfig,
    GemmChainConfig,
    get_workload,
    get_zoo_graph,
    list_graph_zoo,
    list_workloads,
)

__all__ = [
    "ChainKind",
    "GemmChainSpec",
    "OperatorGraph",
    "build_attention_ffn_variant",
    "build_conv_chain",
    "build_gated_ffn",
    "build_moe_layer",
    "build_multibranch_residual_block",
    "build_standard_ffn",
    "build_transformer_layer",
    "conv_chain_to_gemm_chain",
    "Activation",
    "ActivationKind",
    "Conv2d",
    "Elementwise",
    "ElementwiseKind",
    "Gemm",
    "Operator",
    "Reshape",
    "Transpose",
    "DType",
    "TensorSpec",
    "CONV_CHAIN_CONFIGS",
    "GATED_FFN_CONFIGS",
    "GEMM_CHAIN_CONFIGS",
    "GRAPH_ZOO",
    "ConvChainConfig",
    "GemmChainConfig",
    "get_workload",
    "get_zoo_graph",
    "list_graph_zoo",
    "list_workloads",
]
