"""Tensor metadata.

FlashFuser never materialises model weights during search — it only reasons
about shapes and byte sizes — so :class:`TensorSpec` carries exactly that
metadata.  The functional executor in :mod:`repro.sim.executor` attaches real
NumPy arrays separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Tuple


class DType(Enum):
    """Element datatypes understood by the compiler."""

    FP16 = "fp16"
    BF16 = "bf16"
    FP32 = "fp32"
    INT8 = "int8"

    @property
    def itemsize(self) -> int:
        """Width of one element in bytes."""
        return _ITEMSIZE[self]

    @property
    def numpy_name(self) -> str:
        """NumPy dtype string used by the functional executor."""
        return _NUMPY_NAME[self]


_ITEMSIZE = {
    DType.FP16: 2,
    DType.BF16: 2,
    DType.FP32: 4,
    DType.INT8: 1,
}

_NUMPY_NAME = {
    DType.FP16: "float16",
    DType.BF16: "float32",  # NumPy has no bf16; emulate with fp32
    DType.FP32: "float32",
    DType.INT8: "int8",
}


@dataclass(frozen=True)
class TensorSpec:
    """Shape-and-dtype description of one tensor.

    Parameters
    ----------
    name:
        Unique tensor name within its graph.
    shape:
        Tensor shape as a tuple of positive integers.
    dtype:
        Element datatype (defaults to FP16, the paper's evaluation precision).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.FP16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if not self.shape:
            raise ValueError("tensor shape must have at least one dimension")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"tensor dimensions must be positive: {self.shape}")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total element count."""
        return math.prod(self.shape)

    @property
    def num_bytes(self) -> int:
        """Total size in bytes."""
        return self.num_elements * self.dtype.itemsize

    def with_name(self, name: str) -> "TensorSpec":
        """Return a copy of this spec under a different name."""
        return TensorSpec(name=name, shape=self.shape, dtype=self.dtype)

    def with_shape(self, shape: Tuple[int, ...]) -> "TensorSpec":
        """Return a copy of this spec with a different shape."""
        return TensorSpec(name=self.name, shape=shape, dtype=self.dtype)
