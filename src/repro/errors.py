"""Shared exception types.

:class:`FusionError` lives here (rather than in :mod:`repro.api`, which
re-exports it) so the low-level layers — the operator-graph IR, the graph
compiler — can raise it without importing the compiler facade they sit
below.
"""

from __future__ import annotations


class FusionError(RuntimeError):
    """Raised when fusion cannot proceed.

    Two situations produce it: the search finds no feasible fused plan for a
    chain (its intermediate exceeds every on-chip placement), or a malformed
    operator graph — a cycle, an inconsistent edge, a reference to an
    undeclared input — reaches the graph compiler.  It subclasses
    :class:`RuntimeError`, so pre-existing ``except RuntimeError`` handlers
    keep working.

    Example
    -------
    >>> try:
    ...     raise FusionError("no feasible fused plan for C4")
    ... except FusionError as exc:
    ...     print(exc)
    no feasible fused plan for C4
    """


class CacheEntryError(ValueError):
    """Base class for unloadable plan-cache entry payloads.

    :meth:`repro.runtime.cache.PlanCacheEntry.parse` raises a subclass so
    the cache can count *why* a disk entry was unusable — a stale format
    version and a corrupt payload are different operational signals (a
    fleet seeing ``corrupt_entries`` climb is looking at disk trouble or
    tampering; ``stale_entries`` climb after a deploy is expected churn).

    Example
    -------
    >>> from repro.runtime.cache import PlanCacheEntry
    >>> try:
    ...     PlanCacheEntry.parse("not json at all")
    ... except CacheEntryError as exc:
    ...     print(type(exc).__name__)
    CorruptCacheEntry
    """


class StaleCacheEntry(CacheEntryError):
    """A disk cache entry written under a different format version."""


class CorruptCacheEntry(CacheEntryError):
    """A disk cache entry that does not parse into a well-formed payload."""
