"""Shared exception types.

:class:`FusionError` lives here (rather than in :mod:`repro.api`, which
re-exports it) so the low-level layers — the operator-graph IR, the graph
compiler — can raise it without importing the compiler facade they sit
below.
"""

from __future__ import annotations


class FusionError(RuntimeError):
    """Raised when fusion cannot proceed.

    Two situations produce it: the search finds no feasible fused plan for a
    chain (its intermediate exceeds every on-chip placement), or a malformed
    operator graph — a cycle, an inconsistent edge, a reference to an
    undeclared input — reaches the graph compiler.  It subclasses
    :class:`RuntimeError`, so pre-existing ``except RuntimeError`` handlers
    keep working.

    Example
    -------
    >>> try:
    ...     raise FusionError("no feasible fused plan for C4")
    ... except FusionError as exc:
    ...     print(exc)
    no feasible fused plan for C4
    """
