"""Kernel-serving frontend for dynamic-shape requests.

:class:`KernelServer` implements the paper's Section IV-C3 runtime strategy
as a long-lived service: requests name a workload (or carry an arbitrary
chain via :class:`~repro.api.CompileRequest`) and a *runtime* M (the
token/batch dimension that varies per request); the server resolves them
through a chain of progressively more expensive sources:

1. the per-workload **kernel table** (in-process dict hit),
2. the **plan cache** (memory tier, then the disk store shared across
   processes), and
3. an **on-demand compile** fallback that runs the full fusion search and
   back-fills both the cache and the table.

Every request records its resolution source and latency into a
:class:`~repro.runtime.stats.ServingStats` sink, so hit rates and tail
behaviour are observable.  :meth:`KernelServer.warmup` precompiles the
paper's workload suites so steady-state traffic never leaves source 1.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis.locks import make_lock
from repro.api import CompiledKernel, CompileRequest, FlashFuser, KernelTable
from repro.config import FuserConfig, warn_deprecated
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_chain_spec
from repro.obs.trace import tracer
from repro.runtime.batch import BatchCompiler
from repro.runtime.cache import TIER_MEMORY
from repro.runtime.stats import ServingStats
from repro.runtime.warmup import WarmupReport, warmup_workloads

#: Resolution sources recorded per request.
SOURCE_TABLE = "table"
SOURCE_CACHE_MEMORY = "cache:memory"
SOURCE_CACHE_DISK = "cache:disk"
SOURCE_COMPILED = ServingStats.COMPILED
#: On-demand compile resolved by a warm-started transfer search (still a
#: miss, but typically orders of magnitude cheaper than full enumeration).
SOURCE_TRANSFER = ServingStats.TRANSFER

#: Default M bins: powers of two covering decode batches through prefill
#: chunks (requests above the largest bin reuse its kernel across waves).
DEFAULT_M_BINS: Tuple[int, ...] = (16, 32, 64, 128, 256, 512)


@dataclass
class ServeResponse:
    """One served kernel request."""

    workload: str
    m: int
    bin_m: int
    kernel: CompiledKernel
    source: str
    latency_us: float
    #: Search-effort counters (candidates enumerated/analyzed/skipped) when
    #: this request ran a fusion search; ``None`` for table/cache hits.
    search_counters: Optional[Dict[str, int]] = None
    #: Per-phase search wall clock in microseconds (enumerate_prune /
    #: analyze / rank / profile, or transfer) when this request ran a
    #: fusion search; ``None`` for table/cache hits.
    phase_times_us: Optional[Dict[str, float]] = None


def _search_counters(
    kernel: CompiledKernel, source: str
) -> Optional[Dict[str, int]]:
    """Deterministic search-effort counters for a compile-sourced response."""
    if not ServingStats.is_compile_source(source):
        return None
    search = kernel.search
    return {
        "candidates_enumerated": int(
            getattr(search, "candidates_enumerated", 0)
        ),
        "candidates_analyzed": int(getattr(search, "candidates_analyzed", 0)),
        "candidates_skipped": int(getattr(search, "candidates_skipped", 0)),
    }


def _phase_times(
    kernel: CompiledKernel, source: str
) -> Optional[Dict[str, float]]:
    """Per-phase search-time attribution for a compile-sourced response."""
    if not ServingStats.is_compile_source(source):
        return None
    phases = getattr(kernel.search, "phase_times_us", None)
    return dict(phases) if phases else None


class KernelServer:
    """Resolve dynamic-shape requests to compiled kernels.

    Parameters
    ----------
    compiler:
        The compiler backing cache misses.  When omitted, one is built from
        ``config`` and the constructor overrides.
    cache:
        Plan cache attached to the compiler when it has none (pass a
        :class:`~repro.runtime.cache.PlanCache` or a directory path).
        Without any cache the server still memoizes kernels in its tables,
        but nothing survives a restart.
    m_bins:
        The M bins requests are quantised to (ascending after dedup).
    stats:
        Metrics sink (a fresh :class:`ServingStats` when omitted).
    max_workers:
        Worker-pool width used by :meth:`warmup`.
    config:
        A :class:`~repro.config.FuserConfig` for the internally constructed
        compiler when ``compiler`` is omitted; any additional keyword
        arguments are applied as config overrides
        (``KernelServer(config=FuserConfig(parallelism=4), top_k=5)``).
    parallelism:
        Deprecated: set :attr:`FuserConfig.parallelism` instead.

    Example
    -------
    ::

        from repro import KernelServer

        with KernelServer(cache="~/.cache/ff", m_bins=(64, 128, 256)) as server:
            server.warmup(["G4", "S3"])              # precompile the tables
            response = server.request("G4", m=100)   # binned to 128
            print(response.source, response.kernel.time_us)
            print(server.snapshot()["serving"]["hit_rate"])
    """

    def __init__(
        self,
        compiler: Optional[FlashFuser] = None,
        cache=None,
        m_bins: Optional[Sequence[int]] = None,
        stats: Optional[ServingStats] = None,
        max_workers: Optional[int] = None,
        parallelism: Optional[int] = None,
        config: Optional[FuserConfig] = None,
        **overrides: object,
    ) -> None:
        self._overrides: Dict[str, object] = {}
        if parallelism is not None:
            warn_deprecated(
                "server-parallelism-kwarg",
                "KernelServer(parallelism=...) is deprecated; set "
                "FuserConfig.parallelism (e.g. "
                "KernelServer(config=FuserConfig(parallelism=N)))",
            )
            self._overrides["parallelism"] = parallelism
        if compiler is None:
            base = (config or FuserConfig()).replace(**overrides)
            if cache is not None and base.cache is None:
                base = base.replace(cache=cache)
            compiler = FlashFuser(base)
        else:
            if config is not None or overrides:
                raise ValueError(
                    "pass either compiler= or config=/overrides, not both"
                )
            if cache is not None and compiler.cache is None:
                compiler.cache = cache
        self.compiler = compiler
        self.cache = compiler.cache
        bins = tuple(sorted(set(m_bins if m_bins is not None else DEFAULT_M_BINS)))
        if not bins:
            raise ValueError("m_bins must be non-empty")
        if any(m <= 0 for m in bins):
            raise ValueError("m_bins must be positive")
        self.m_bins = bins
        self.stats = stats or ServingStats()
        self.batch = BatchCompiler(
            compiler, max_workers=max_workers, overrides=self._overrides
        )
        self._tables: Dict[str, KernelTable] = {}
        self._chains: Dict[str, GemmChainSpec] = {}
        self._lock = make_lock("kernel-server", reentrant=True)
        # One lock per (workload, bin) so concurrent first requests for the
        # same kernel run a single search instead of racing duplicates.
        self._inflight: Dict[Tuple[str, int], threading.Lock] = {}

    @property
    def parallelism(self) -> Optional[int]:
        """The effective cold-compile fan-out for this server's misses."""
        override = self._overrides.get("parallelism")
        if override is not None:
            return int(override)
        return self.compiler.config.parallelism

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def bin_for(self, m: int) -> int:
        """Quantise a runtime M to the smallest covering bin (or largest)."""
        if m <= 0:
            raise ValueError("m must be positive")
        index = bisect.bisect_left(self.m_bins, m)
        return self.m_bins[min(index, len(self.m_bins) - 1)]

    def request(
        self,
        request: Union[str, CompileRequest],
        m: Optional[int] = None,
    ) -> ServeResponse:
        """Serve one dynamic-shape request.

        Accepts the classic form — ``request("G4", m)`` with a workload id
        and a runtime M — or a :class:`~repro.api.CompileRequest`, which may
        carry an arbitrary chain instead of a workload id (keyed in the
        server's tables by the chain's M-independent canonical shape) and
        per-request config overrides for the cold-compile path.

        Raises :class:`~repro.api.FusionError` when the request falls
        through to an on-demand compile and no feasible fused plan exists.
        """
        start = time.perf_counter()
        key, base, runtime_m, overrides = self._parse_request(request, m)
        bin_m = self.bin_for(runtime_m)
        # The shared kernel tables are keyed by (workload/shape, bin) only,
        # so they may serve and store solely kernels compiled under the
        # server's own config.  parallelism, incremental and trace cannot
        # change the selected plan; any other override reshapes it, so such
        # requests bypass the table (they still resolve through the plan
        # cache and compile path).
        plan_neutral = set(overrides) <= {"parallelism", "incremental", "trace"}
        with tracer().span(
            "server.request", workload=key, m=runtime_m, bin=bin_m
        ) as span:
            if not plan_neutral:
                binned = base.scaled(m=bin_m, name=f"{base.name}_m{bin_m}")
                kernel, source = self._resolve_miss(binned, overrides)
                latency_us = (time.perf_counter() - start) * 1e6
                self.stats.record_request(key, source, latency_us)
                span.set("source", source)
                return ServeResponse(
                    workload=key,
                    m=runtime_m,
                    bin_m=bin_m,
                    kernel=kernel,
                    source=source,
                    latency_us=latency_us,
                    search_counters=_search_counters(kernel, source),
                    phase_times_us=_phase_times(kernel, source),
                )
            with self._lock:
                table = self._tables.setdefault(key, KernelTable(chain=base))
                kernel = table.kernels.get(bin_m)
            source = SOURCE_TABLE
            if kernel is None:
                with self._lock:
                    inflight = self._inflight.setdefault(
                        (key, bin_m),
                        make_lock(f"kernel-server.inflight[{key}:{bin_m}]"),
                    )
                with inflight:
                    # Another request may have resolved this bin while we
                    # waited.
                    with self._lock:
                        kernel = table.kernels.get(bin_m)
                    if kernel is None:
                        binned = base.scaled(
                            m=bin_m, name=f"{base.name}_m{bin_m}"
                        )
                        kernel, source = self._resolve_miss(binned, overrides)
                        with self._lock:
                            table.kernels[bin_m] = kernel
            latency_us = (time.perf_counter() - start) * 1e6
            self.stats.record_request(key, source, latency_us)
            span.set("source", source)
            return ServeResponse(
                workload=key,
                m=runtime_m,
                bin_m=bin_m,
                kernel=kernel,
                source=source,
                latency_us=latency_us,
                search_counters=_search_counters(kernel, source),
                phase_times_us=_phase_times(kernel, source),
            )

    # ------------------------------------------------------------------ #
    # Warmup and introspection
    # ------------------------------------------------------------------ #
    def warmup(
        self,
        workload_ids: Optional[Sequence[str]] = None,
        m_bins: Optional[Sequence[int]] = None,
    ) -> WarmupReport:
        """Precompile workloads into the cache and this server's tables."""
        report = warmup_workloads(
            self.batch,
            workload_ids=workload_ids,
            m_bins=m_bins if m_bins is not None else self.m_bins,
        )
        with self._lock:
            for workload_id, table in report.tables.items():
                existing = self._tables.setdefault(
                    workload_id, KernelTable(chain=table.chain)
                )
                existing.kernels.update(table.kernels)
        return report

    def warm_from_cache(
        self,
        request: Union[str, CompileRequest],
        m: Optional[int] = None,
    ) -> Optional[str]:
        """Warm one table entry from the plan cache *without* compiling.

        Resolves ``request`` (same forms as :meth:`request`) through the
        plan cache only: when the binned chain's entry exists in either
        cache tier, the rehydrated kernel is inserted into the kernel table
        and the serving tier it came from (``cache:memory``/``cache:disk``)
        is returned; otherwise ``None`` — no fusion search ever runs and no
        request is recorded in :attr:`stats`.

        This is the fleet's warm-plan broadcast primitive: after one worker
        cold-compiles a shape into the shared disk cache, every replica
        calls this to adopt the plan without paying the compile cliff.

        Example
        -------
        ::

            server_b.warm_from_cache("G4", 128)   # after A compiled G4/128
            server_b.request("G4", 100).source    # 'table'
        """
        key, base, runtime_m, overrides = self._parse_request(request, m)
        bin_m = self.bin_for(runtime_m)
        config = self.compiler.config.replace(**overrides)
        cache = self.compiler._cache_for(config)
        if cache is None:
            return None
        binned = base.scaled(m=bin_m, name=f"{base.name}_m{bin_m}")
        cache_key = cache.key_for(
            binned, self.compiler._device_for(config), config.cache_key_fields()
        )
        tier = cache.tier_of(cache_key)
        kernel = cache.load_kernel(cache_key, chain=binned)
        if kernel is None:
            return None
        with self._lock:
            table = self._tables.setdefault(key, KernelTable(chain=base))
            table.kernels.setdefault(bin_m, kernel)
        return SOURCE_CACHE_MEMORY if tier == TIER_MEMORY else SOURCE_CACHE_DISK

    def close(self) -> None:
        """Release compiler-held worker pools (idempotent).

        Long-lived deployments using parallel search should close the server
        (or use it as a context manager) when retiring it, so the process
        pool behind cold compiles does not outlive the serving loop.
        """
        self.compiler.close()

    def __enter__(self) -> "KernelServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def table_for(self, workload_id: str) -> Optional[KernelTable]:
        """The kernel table currently held for ``workload_id`` (or ``None``)."""
        with self._lock:
            return self._tables.get(workload_id)

    def snapshot(self) -> Dict[str, object]:
        """Combined serving and cache metrics."""
        payload: Dict[str, object] = {"serving": self.stats.snapshot()}
        if self.cache is not None:
            payload["cache"] = self.cache.stats.snapshot()
        with self._lock:
            payload["tables"] = {
                workload_id: table.bins()
                for workload_id, table in self._tables.items()
            }
        return payload

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _parse_request(
        self, request: Union[str, CompileRequest], m: Optional[int]
    ) -> Tuple[str, GemmChainSpec, int, Dict[str, object]]:
        """Normalize a request to (table key, base chain, runtime M, overrides)."""
        if isinstance(request, CompileRequest):
            if m is not None:
                raise TypeError(
                    "pass the runtime M inside the CompileRequest (m=...), "
                    "not as a second argument"
                )
            overrides = {**self._overrides, **request.overrides}
            if request.workload is not None:
                key = request.workload
                base = self._base_chain(key)
            else:
                base = request.chain
                key = self._chain_key(base)
                with self._lock:
                    self._chains.setdefault(key, base)
            runtime_m = request.m if request.m is not None else base.m
            return key, base, runtime_m, overrides
        if m is None:
            raise TypeError("request(workload_id, m) requires a runtime M")
        return request, self._base_chain(request), m, dict(self._overrides)

    @staticmethod
    def _chain_key(chain: GemmChainSpec) -> str:
        """Table key for an explicit chain: its M-independent shape.

        The runtime M is what requests vary, so it is excluded — requests
        for the same N/K/L family share one table regardless of the M their
        chain object happened to carry.
        """
        identity = {
            k: v for k, v in chain.canonical_dict().items() if k != "m"
        }
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return "chain:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def _base_chain(self, workload_id: str) -> GemmChainSpec:
        with self._lock:
            chain = self._chains.get(workload_id)
            if chain is None:
                chain = get_chain_spec(workload_id)
                self._chains[workload_id] = chain
            return chain

    def _resolve_miss(
        self, chain: GemmChainSpec, overrides: Dict[str, object]
    ):
        """Resolve a table miss through the cache, then on-demand compile.

        The cache is consulted directly (rather than inferring the source
        afterwards) so the recorded source is what actually happened — an
        unreadable disk entry, for example, is reported as a compile.
        """
        config = self.compiler.config.replace(**overrides)
        # Resolve the cache and device exactly as compile_request will, so
        # the key consulted here is the key a fresh compile stores under
        # even when the overrides redirect the device or the cache.
        cache = self.compiler._cache_for(config)
        if cache is not None:
            with tracer().span("server.cache", chain=chain.name) as span:
                key = cache.key_for(
                    chain,
                    self.compiler._device_for(config),
                    config.cache_key_fields(),
                )
                tier = cache.tier_of(key)
                kernel = cache.load_kernel(key, chain=chain)
                span.set("hit", kernel is not None)
            if kernel is not None:
                source = (
                    SOURCE_CACHE_MEMORY if tier == TIER_MEMORY else SOURCE_CACHE_DISK
                )
                return kernel, source
        with tracer().span("server.compile", chain=chain.name):
            response = self.compiler.compile_request(
                CompileRequest(chain=chain, overrides=overrides)
            )
        if getattr(response.kernel.search, "mode", "exact") == "transfer":
            return response.kernel, SOURCE_TRANSFER
        return response.kernel, SOURCE_COMPILED
