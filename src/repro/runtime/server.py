"""Kernel-serving frontend for dynamic-shape requests.

:class:`KernelServer` implements the paper's Section IV-C3 runtime strategy
as a long-lived service: requests name a workload and a *runtime* M (the
token/batch dimension that varies per request); the server resolves them
through a chain of progressively more expensive sources:

1. the per-workload **kernel table** (in-process dict hit),
2. the **plan cache** (memory tier, then the disk store shared across
   processes), and
3. an **on-demand compile** fallback that runs the full fusion search and
   back-fills both the cache and the table.

Every request records its resolution source and latency into a
:class:`~repro.runtime.stats.ServingStats` sink, so hit rates and tail
behaviour are observable.  :meth:`KernelServer.warmup` precompiles the
paper's workload suites so steady-state traffic never leaves source 1.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.api import CompiledKernel, FlashFuser, KernelTable
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_chain_spec
from repro.runtime.batch import BatchCompiler
from repro.runtime.cache import TIER_MEMORY, PlanCache
from repro.runtime.stats import ServingStats
from repro.runtime.warmup import WarmupReport, warmup_workloads

#: Resolution sources recorded per request.
SOURCE_TABLE = "table"
SOURCE_CACHE_MEMORY = "cache:memory"
SOURCE_CACHE_DISK = "cache:disk"
SOURCE_COMPILED = ServingStats.COMPILED

#: Default M bins: powers of two covering decode batches through prefill
#: chunks (requests above the largest bin reuse its kernel across waves).
DEFAULT_M_BINS: Tuple[int, ...] = (16, 32, 64, 128, 256, 512)


@dataclass
class ServeResponse:
    """One served kernel request."""

    workload: str
    m: int
    bin_m: int
    kernel: CompiledKernel
    source: str
    latency_us: float


class KernelServer:
    """Resolve (workload, runtime M) requests to compiled kernels.

    Parameters
    ----------
    compiler:
        The compiler backing cache misses (a default H100
        :class:`FlashFuser` when omitted).
    cache:
        Plan cache attached to the compiler when it has none (pass a
        :class:`~repro.runtime.cache.PlanCache` or rely on the compiler's
        own).  Without any cache the server still memoizes kernels in its
        tables, but nothing survives a restart.
    m_bins:
        The M bins requests are quantised to (ascending after dedup).
    stats:
        Metrics sink (a fresh :class:`ServingStats` when omitted).
    max_workers:
        Worker-pool width used by :meth:`warmup`.
    parallelism:
        When set (> 1), cold searches — warmup sweeps and on-demand compile
        misses alike — run on the sharded process-parallel search engine.
        Serving results are identical; only cold latency changes.
    """

    def __init__(
        self,
        compiler: Optional[FlashFuser] = None,
        cache=None,
        m_bins: Optional[Sequence[int]] = None,
        stats: Optional[ServingStats] = None,
        max_workers: Optional[int] = None,
        parallelism: Optional[int] = None,
    ) -> None:
        if cache is not None and not isinstance(cache, PlanCache):
            cache = PlanCache(directory=cache)
        if compiler is None:
            compiler = FlashFuser(cache=cache)
        elif cache is not None and compiler.cache is None:
            compiler.cache = cache
        self.compiler = compiler
        self.cache = compiler.cache
        bins = tuple(sorted(set(m_bins if m_bins is not None else DEFAULT_M_BINS)))
        if not bins:
            raise ValueError("m_bins must be non-empty")
        if any(m <= 0 for m in bins):
            raise ValueError("m_bins must be positive")
        self.m_bins = bins
        self.stats = stats or ServingStats()
        self.parallelism = parallelism
        self.batch = BatchCompiler(
            compiler, max_workers=max_workers, parallelism=parallelism
        )
        self._tables: Dict[str, KernelTable] = {}
        self._chains: Dict[str, GemmChainSpec] = {}
        self._lock = threading.RLock()
        # One lock per (workload, bin) so concurrent first requests for the
        # same kernel run a single search instead of racing duplicates.
        self._inflight: Dict[Tuple[str, int], threading.Lock] = {}

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def bin_for(self, m: int) -> int:
        """Quantise a runtime M to the smallest covering bin (or largest)."""
        if m <= 0:
            raise ValueError("m must be positive")
        index = bisect.bisect_left(self.m_bins, m)
        return self.m_bins[min(index, len(self.m_bins) - 1)]

    def request(self, workload_id: str, m: int) -> ServeResponse:
        """Serve one dynamic-shape request.

        Raises :class:`~repro.api.FusionError` when the request falls
        through to an on-demand compile and no feasible fused plan exists.
        """
        start = time.perf_counter()
        bin_m = self.bin_for(m)
        base = self._base_chain(workload_id)
        with self._lock:
            table = self._tables.setdefault(
                workload_id, KernelTable(chain=base)
            )
            kernel = table.kernels.get(bin_m)
        source = SOURCE_TABLE
        if kernel is None:
            with self._lock:
                inflight = self._inflight.setdefault(
                    (workload_id, bin_m), threading.Lock()
                )
            with inflight:
                # Another request may have resolved this bin while we waited.
                with self._lock:
                    kernel = table.kernels.get(bin_m)
                if kernel is None:
                    binned = base.scaled(m=bin_m, name=f"{base.name}_m{bin_m}")
                    kernel, source = self._resolve_miss(binned)
                    with self._lock:
                        table.kernels[bin_m] = kernel
        latency_us = (time.perf_counter() - start) * 1e6
        self.stats.record_request(workload_id, source, latency_us)
        return ServeResponse(
            workload=workload_id,
            m=m,
            bin_m=bin_m,
            kernel=kernel,
            source=source,
            latency_us=latency_us,
        )

    # ------------------------------------------------------------------ #
    # Warmup and introspection
    # ------------------------------------------------------------------ #
    def warmup(
        self,
        workload_ids: Optional[Sequence[str]] = None,
        m_bins: Optional[Sequence[int]] = None,
    ) -> WarmupReport:
        """Precompile workloads into the cache and this server's tables."""
        report = warmup_workloads(
            self.batch,
            workload_ids=workload_ids,
            m_bins=m_bins if m_bins is not None else self.m_bins,
        )
        with self._lock:
            for workload_id, table in report.tables.items():
                existing = self._tables.setdefault(
                    workload_id, KernelTable(chain=table.chain)
                )
                existing.kernels.update(table.kernels)
        return report

    def close(self) -> None:
        """Release compiler-held worker pools (idempotent).

        Long-lived deployments using ``parallelism`` should close the server
        (or use it as a context manager) when retiring it, so the process
        pool behind cold compiles does not outlive the serving loop.
        """
        self.compiler.close()

    def __enter__(self) -> "KernelServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def table_for(self, workload_id: str) -> Optional[KernelTable]:
        """The kernel table currently held for ``workload_id`` (or ``None``)."""
        with self._lock:
            return self._tables.get(workload_id)

    def snapshot(self) -> Dict[str, object]:
        """Combined serving and cache metrics."""
        payload: Dict[str, object] = {"serving": self.stats.snapshot()}
        if self.cache is not None:
            payload["cache"] = self.cache.stats.snapshot()
        with self._lock:
            payload["tables"] = {
                workload_id: table.bins()
                for workload_id, table in self._tables.items()
            }
        return payload

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _base_chain(self, workload_id: str) -> GemmChainSpec:
        with self._lock:
            chain = self._chains.get(workload_id)
            if chain is None:
                chain = get_chain_spec(workload_id)
                self._chains[workload_id] = chain
            return chain

    def _resolve_miss(self, chain: GemmChainSpec):
        """Resolve a table miss through the cache, then on-demand compile.

        The cache is consulted directly (rather than inferring the source
        afterwards) so the recorded source is what actually happened — an
        unreadable disk entry, for example, is reported as a compile.
        """
        if self.cache is not None:
            key = self.compiler.cache_key(chain)
            tier = self.cache.tier_of(key)
            kernel = self.cache.load_kernel(key, chain=chain)
            if kernel is not None:
                source = (
                    SOURCE_CACHE_MEMORY if tier == TIER_MEMORY else SOURCE_CACHE_DISK
                )
                return kernel, source
        kernel = self.compiler.compile(chain, parallelism=self.parallelism)
        return kernel, SOURCE_COMPILED
