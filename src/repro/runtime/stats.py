"""Serving metrics: per-request counters and latency aggregation.

:class:`ServingStats` is the metrics sink shared by the runtime layer — the
:class:`~repro.runtime.server.KernelServer` records every request's
resolution source (kernel table, plan cache tier, or on-demand compile) and
its wall-clock resolution latency.  Snapshots are plain dictionaries so they
can be logged, asserted on in tests, or exported to any metrics backend.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.analysis.locks import make_lock
from repro.obs.metrics import bucket_index, histogram_quantile


@dataclass
class LatencySummary:
    """Streaming aggregate of one latency series (microseconds).

    Beyond count/mean/min/max, every observation lands in one of the fixed
    log-spaced buckets of :func:`repro.obs.metrics.bucket_index`, so
    :meth:`merge` composes *exactly* — two workers' summaries add bucket
    counts, and the merged p50/p95 equal the percentiles of the union —
    which is what lets fleet-wide snapshots report honest percentiles.
    """

    count: int = 0
    total_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0
    #: Sparse log-bucket counts ({bucket index -> observations}).
    buckets: Dict[int, int] = field(default_factory=dict)

    def record(self, latency_us: float) -> None:
        """Fold one observation into the aggregate."""
        if latency_us < 0:
            raise ValueError("latency_us must be non-negative")
        self.count += 1
        self.total_us += latency_us
        self.min_us = min(self.min_us, latency_us)
        self.max_us = max(self.max_us, latency_us)
        index = bucket_index(latency_us)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean_us(self) -> float:
        """Average latency, 0.0 before any observation."""
        return self.total_us / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-estimated percentile, clamped to the observed extremes.

        Exact under :meth:`merge`: the estimate depends only on the summed
        bucket counts and the true min/max, all of which compose losslessly.
        """
        if not self.count:
            return 0.0
        return histogram_quantile(
            self.buckets, q, min_value=self.min_us, max_value=self.max_us
        )

    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """Fold ``other``'s observations into this aggregate (returns self)."""
        if other.count:
            self.count += other.count
            self.total_us += other.total_us
            self.min_us = min(self.min_us, other.min_us)
            self.max_us = max(self.max_us, other.max_us)
            for index, observations in other.buckets.items():
                self.buckets[index] = self.buckets.get(index, 0) + observations
        return self

    def snapshot(self) -> Dict[str, float]:
        """Plain-dictionary view of the aggregate (pinned key order)."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "min_us": self.min_us if self.count else 0.0,
            "max_us": self.max_us,
            "p50_us": self.quantile(50),
            "p95_us": self.quantile(95),
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, float]) -> "LatencySummary":
        """Rebuild an aggregate from its :meth:`snapshot` form.

        Tolerates payloads written before the histogram fields existed
        (their percentiles degrade to the min/max clamp of an empty bucket
        set).
        """
        count = int(payload["count"])
        mean_us = float(payload["mean_us"])
        raw_buckets = payload.get("buckets") or {}
        return cls(
            count=count,
            total_us=mean_us * count,
            min_us=float(payload["min_us"]) if count else float("inf"),
            max_us=float(payload["max_us"]),
            buckets={
                int(index): int(observations)
                for index, observations in dict(raw_buckets).items()
            },
        )


class ServingStats:
    """Thread-safe request metrics for the kernel-serving frontend.

    Tracks total requests, per-source and per-workload counts, and a
    :class:`LatencySummary` per resolution source.  A request is a *hit*
    when it was satisfied without running a fusion search (table or cache
    sources); every compile source — the on-demand exact ``"compiled"``
    search and its warm-started ``"compiled:transfer"`` variant — is a
    miss.

    Example
    -------
    >>> stats = ServingStats()
    >>> stats.record_request("G4", "compiled", 1500.0)
    >>> stats.record_request("G4", "compiled:transfer", 200.0)
    >>> stats.record_request("G4", "table", 40.0)
    >>> stats.hits, stats.misses, stats.hit_rate()
    (1, 2, 0.3333333333333333)
    >>> stats.to_dict()["by_source"]
    {'compiled': 1, 'compiled:transfer': 1, 'table': 1}
    """

    #: The resolution source recorded for on-demand exact compiles.
    COMPILED = "compiled"
    #: On-demand compiles resolved by a warm-started transfer search seeded
    #: from the nearest previously compiled shape (still a miss — a search
    #: ran — but a far cheaper one).
    TRANSFER = "compiled:transfer"

    @classmethod
    def is_compile_source(cls, source: str) -> bool:
        """Whether ``source`` denotes an on-demand compile (a miss).

        Compile-source variants share the ``"compiled"`` prefix with a
        ``:qualifier`` suffix, so aggregation layers can classify sources
        without enumerating every variant.

        >>> ServingStats.is_compile_source("compiled")
        True
        >>> ServingStats.is_compile_source("compiled:transfer")
        True
        >>> ServingStats.is_compile_source("table")
        False
        """
        return source == cls.COMPILED or source.startswith(cls.COMPILED + ":")

    def __init__(self) -> None:
        self._lock = make_lock("serving-stats")
        self.requests = 0
        self.by_source: Counter = Counter()
        self.by_workload: Counter = Counter()
        self.latency: Dict[str, LatencySummary] = {}
        self.overall_latency = LatencySummary()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_request(self, workload: str, source: str, latency_us: float) -> None:
        """Record one served request."""
        with self._lock:
            self.requests += 1
            self.by_source[source] += 1
            self.by_workload[workload] += 1
            self.latency.setdefault(source, LatencySummary()).record(latency_us)
            self.overall_latency.record(latency_us)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def misses(self) -> int:
        """Requests that fell through to an on-demand fusion search."""
        return sum(
            count
            for source, count in self.by_source.items()
            if self.is_compile_source(source)
        )

    @property
    def hits(self) -> int:
        """Requests satisfied without running the fusion search."""
        return self.requests - self.misses

    def hit_rate(self) -> float:
        """Fraction of requests served without a search (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    def merge(self, other: "ServingStats") -> "ServingStats":
        """Fold ``other``'s counters into this sink (returns self).

        This is how fleet-level aggregation works: each worker process keeps
        its own :class:`ServingStats` and the fleet merges the per-worker
        sinks into one view instead of doing ad-hoc dictionary math.  Counts
        add, per-source/per-workload histograms union, and latency summaries
        combine exactly (count/total/min/max compose losslessly).  ``other``
        is read under its own lock, so merging a live sink is safe.

        Example
        -------
        >>> a, b = ServingStats(), ServingStats()
        >>> a.record_request("G4", "compiled", 900.0)
        >>> b.record_request("G4", "table", 30.0)
        >>> merged = a.merge(b)
        >>> merged.requests, merged.hit_rate()
        (2, 0.5)
        """
        if other is self:
            raise ValueError("cannot merge a ServingStats into itself")
        with other._lock:
            other_requests = other.requests
            other_by_source = Counter(other.by_source)
            other_by_workload = Counter(other.by_workload)
            other_latency = {
                source: LatencySummary(
                    count=summary.count,
                    total_us=summary.total_us,
                    min_us=summary.min_us,
                    max_us=summary.max_us,
                    buckets=dict(summary.buckets),
                )
                for source, summary in other.latency.items()
            }
            other_overall = LatencySummary(
                count=other.overall_latency.count,
                total_us=other.overall_latency.total_us,
                min_us=other.overall_latency.min_us,
                max_us=other.overall_latency.max_us,
                buckets=dict(other.overall_latency.buckets),
            )
        with self._lock:
            self.requests += other_requests
            self.by_source.update(other_by_source)
            self.by_workload.update(other_by_workload)
            for source, summary in other_latency.items():
                self.latency.setdefault(source, LatencySummary()).merge(summary)
            self.overall_latency.merge(other_overall)
        return self

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ServingStats":
        """Rebuild a sink from its :meth:`to_dict` form.

        The round trip is exact — ``ServingStats.from_dict(s.to_dict())``
        serializes identically to ``s`` — which is what lets worker
        processes ship their stats across a process boundary as plain JSON
        and still :meth:`merge` them like live objects.

        Example
        -------
        >>> stats = ServingStats()
        >>> stats.record_request("G4", "table", 42.0)
        >>> ServingStats.from_dict(stats.to_dict()).to_dict() == stats.to_dict()
        True
        """
        stats = cls()
        stats.requests = int(payload["requests"])
        stats.by_source = Counter(
            {str(k): int(v) for k, v in dict(payload["by_source"]).items()}
        )
        stats.by_workload = Counter(
            {str(k): int(v) for k, v in dict(payload["by_workload"]).items()}
        )
        stats.latency = {
            str(source): LatencySummary.from_snapshot(summary)
            for source, summary in dict(payload["latency_us"]).items()
        }
        stats.overall_latency = LatencySummary.from_snapshot(
            payload["overall_latency_us"]
        )
        return stats

    def to_dict(self) -> Dict[str, object]:
        """Every counter and latency aggregate, with a stable key order.

        Top-level keys appear in a fixed order and map-valued sections
        (``by_source``, ``by_workload``, ``latency_us``) are key-sorted, so
        two snapshots of equal state serialize to byte-identical JSON and
        CI artifacts diff cleanly across runs.

        Example
        -------
        >>> stats = ServingStats()
        >>> stats.record_request("G4", "table", 42.0)
        >>> payload = stats.to_dict()
        >>> payload["requests"], payload["hit_rate"]
        (1, 1.0)
        >>> list(payload["by_source"])
        ['table']
        """
        with self._lock:
            return {
                "requests": self.requests,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate(),
                "by_source": {
                    source: self.by_source[source]
                    for source in sorted(self.by_source)
                },
                "by_workload": {
                    workload: self.by_workload[workload]
                    for workload in sorted(self.by_workload)
                },
                "latency_us": {
                    source: self.latency[source].snapshot()
                    for source in sorted(self.latency)
                },
                "overall_latency_us": self.overall_latency.snapshot(),
            }

    def snapshot(self) -> Dict[str, object]:
        """Alias for :meth:`to_dict` (the runtime layer's historical name)."""
        return self.to_dict()

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self.requests = 0
            self.by_source.clear()
            self.by_workload.clear()
            self.latency.clear()
            self.overall_latency = LatencySummary()
