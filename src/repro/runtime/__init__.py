"""Runtime serving subsystem.

The compiler layers below this package answer "what is the best fused kernel
for this chain?"; this package answers "how do we serve that answer to heavy
traffic without re-paying the fusion search?".  It provides:

* :mod:`repro.runtime.cache` — a two-tier (in-process LRU + disk JSON)
  persistent plan cache keyed by canonical chain/device/search identity;
* :mod:`repro.runtime.batch` — a parallel batch compiler with cache
  deduplication for kernel-table and multi-workload compile jobs;
* :mod:`repro.runtime.server` — the :class:`KernelServer` frontend that
  resolves dynamic-shape requests through table → cache → compile;
* :mod:`repro.runtime.warmup` — suite precompilation ahead of traffic;
* :mod:`repro.runtime.stats` — request/latency metrics aggregation.
"""

from repro.runtime.batch import BatchCompiler, BatchItem, BatchReport
from repro.runtime.cache import (
    CacheStats,
    PlanCache,
    PlanCacheEntry,
    plan_cache_key,
)
from repro.runtime.server import (
    DEFAULT_M_BINS,
    KernelServer,
    ServeResponse,
)
from repro.runtime.stats import LatencySummary, ServingStats
from repro.runtime.warmup import (
    WarmupReport,
    default_warmup_workloads,
    warmup_workloads,
)

__all__ = [
    "BatchCompiler",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "PlanCache",
    "PlanCacheEntry",
    "plan_cache_key",
    "DEFAULT_M_BINS",
    "KernelServer",
    "ServeResponse",
    "LatencySummary",
    "ServingStats",
    "WarmupReport",
    "default_warmup_workloads",
    "warmup_workloads",
]
