"""Two-tier persistent plan cache.

The fusion search dominates FlashFuser's compile cost (Table VIII); its
*output* — the selected execution plan — is tiny.  The cache exploits that
asymmetry with two tiers:

* an **in-process LRU** of deserialized entries plus rehydrated
  :class:`~repro.api.CompiledKernel` objects (sub-microsecond hits), and
* a **disk-backed JSON store** (one file per key) that survives process
  restarts and is shared by every process pointing at the same directory.

Keys are stable SHA-256 digests of the chain's canonical identity
(:meth:`~repro.ir.graph.GemmChainSpec.canonical_dict` — the name is
excluded, so equally shaped chains share entries), the device fingerprint
(:meth:`~repro.hardware.spec.HardwareSpec.fingerprint`) and the search
configuration.  Entries store the serialized plan, simulation report, search
summary and traffic report; the kernel IR and CUDA source are regenerated
deterministically from the plan on load.

Disk entries are never trusted blindly: every load runs the typed parser
(stale format versions and corrupt payloads are counted separately in
:class:`CacheStats`) and then the semantic
:class:`~repro.analysis.verify.PlanVerifier` — capacity, legality,
consistency and key-agreement checks — before an entry may serve.  Since
fleet warm-plan broadcasts adopt entries through this same path, replicas
cannot be poisoned by a tampered or torn file either.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.locks import make_lock, require_held
from repro.analysis.verify import PlanVerifier
from repro.api import CompiledKernel
from repro.codegen.cuda_emitter import emit_cuda
from repro.codegen.kernel_ir import lower_plan
from repro.codegen.plan import ExecutionPlan
from repro.errors import CacheEntryError, CorruptCacheEntry, StaleCacheEntry
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec
from repro.obs.logging import get_logger, log_event
from repro.obs.trace import tracer
from repro.search.engine import SearchSummary
from repro.search.incremental import (
    ShapeIndex,
    TransferSeed,
    seed_from_plan_dict,
    shape_family_key,
)
from repro.sim.engine import SimulationReport
from repro.sim.profiler import TrafficReport

_logger = get_logger(__name__)

#: Bumped whenever the serialized entry layout changes; old-format disk
#: entries are treated as misses instead of raising.
CACHE_FORMAT_VERSION = 1

#: Resolution tiers reported by :meth:`PlanCache.tier_of`.
TIER_MEMORY = "memory"
TIER_DISK = "disk"


def plan_cache_key(
    chain: GemmChainSpec,
    device: HardwareSpec,
    search_config: Optional[Dict[str, object]] = None,
) -> str:
    """Stable cache key for one (chain shape, device, search config) triple."""
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "chain": chain.canonical_dict(),
        "device": device.fingerprint(),
        "search": dict(sorted((search_config or {}).items())),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class PlanCacheEntry:
    """One cached compilation: serialized plan, report, search and traffic.

    Entries written by this codebase also embed the device fingerprint and
    search config they were compiled under, so the verifier can recompute
    the cache key from the payload alone and re-check the plan against the
    fingerprinted device's capacities; both fields are optional on read so
    externally produced entries remain loadable (their device checks are
    simply skipped).
    """

    key: str
    plan: Dict[str, object]
    report: Dict[str, object]
    search: Dict[str, object]
    traffic: Dict[str, object]
    created_at: float = field(default_factory=time.time)
    device: Optional[Dict[str, object]] = None
    search_config: Optional[Dict[str, object]] = None

    @classmethod
    def from_kernel(
        cls,
        key: str,
        kernel: CompiledKernel,
        device: Optional[HardwareSpec] = None,
        search_config: Optional[Dict[str, object]] = None,
    ) -> "PlanCacheEntry":
        """Serialize a freshly compiled kernel into a cache entry."""
        search = kernel.search
        summary = search if isinstance(search, SearchSummary) else search.summary()
        return cls(
            key=key,
            plan=kernel.plan.to_dict(),
            report=kernel.report.to_dict(),
            search=summary.to_dict(),
            traffic={
                "strategy": kernel.traffic.strategy,
                "read_bytes": kernel.traffic.read_bytes,
                "write_bytes": kernel.traffic.write_bytes,
            },
            device=device.fingerprint() if device is not None else None,
            search_config=dict(search_config) if search_config else None,
        )

    def rehydrate(self, chain: Optional[GemmChainSpec] = None) -> CompiledKernel:
        """Rebuild a :class:`CompiledKernel` from the stored plan.

        ``chain`` substitutes an equally shaped chain for the stored one, so
        an entry compiled under workload A serves a request phrased as
        workload B.  The kernel IR and source are regenerated from the plan.
        """
        plan = ExecutionPlan.from_dict(self.plan, chain=chain)
        return CompiledKernel(
            plan=plan,
            kernel_ir=lower_plan(plan),
            source=emit_cuda(plan),
            report=SimulationReport.from_dict(self.report),
            search=SearchSummary.from_dict(self.search, from_cache=True),
            traffic=TrafficReport(
                strategy=str(self.traffic["strategy"]),
                read_bytes=float(self.traffic["read_bytes"]),
                write_bytes=float(self.traffic["write_bytes"]),
            ),
        )

    # JSON round trip ---------------------------------------------------- #
    def to_json(self) -> str:
        """Serialize the entry to a JSON document."""
        payload: Dict[str, object] = {
            "version": CACHE_FORMAT_VERSION,
            "key": self.key,
            "created_at": self.created_at,
            "plan": self.plan,
            "report": self.report,
            "search": self.search,
            "traffic": self.traffic,
        }
        if self.device is not None:
            payload["device"] = self.device
        if self.search_config is not None:
            payload["search_config"] = self.search_config
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def parse(cls, blob: str) -> "PlanCacheEntry":
        """Parse a JSON document, classifying failures.

        Raises :class:`~repro.errors.StaleCacheEntry` for a payload written
        under a different :data:`CACHE_FORMAT_VERSION` (expected churn after
        a format bump) and :class:`~repro.errors.CorruptCacheEntry` for
        anything that does not decode into a well-formed entry (torn
        writes, disk corruption, tampering).  The distinction feeds the
        ``stale_entries`` / ``corrupt_entries`` counters of
        :class:`CacheStats`.
        """
        try:
            payload = json.loads(blob)
        except (ValueError, TypeError) as exc:
            raise CorruptCacheEntry(f"entry is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise CorruptCacheEntry(
                f"entry payload is a {type(payload).__name__}, not an object"
            )
        version = payload.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise StaleCacheEntry(
                f"entry format version {version!r} != {CACHE_FORMAT_VERSION}"
            )
        try:
            entry = cls(
                key=str(payload["key"]),
                plan=payload["plan"],
                report=payload["report"],
                search=payload["search"],
                traffic=payload["traffic"],
                created_at=float(payload.get("created_at", 0.0)),
                device=payload.get("device"),
                search_config=payload.get("search_config"),
            )
        except KeyError as exc:
            raise CorruptCacheEntry(f"entry is missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise CorruptCacheEntry(f"entry field has a bad type: {exc}") from exc
        for name in ("plan", "report", "search", "traffic"):
            if not isinstance(getattr(entry, name), dict):
                raise CorruptCacheEntry(f"entry field {name!r} is not an object")
        return entry

    @classmethod
    def from_json(cls, blob: str) -> Optional["PlanCacheEntry"]:
        """Parse a JSON document; returns ``None`` for unreadable/old data.

        Kept for callers that do not care *why* an entry is unusable; the
        cache itself uses :meth:`parse` so it can count stale and corrupt
        entries separately.
        """
        try:
            return cls.parse(blob)
        except CacheEntryError:
            return None


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`PlanCache`.

    Beyond the classic hit/miss/store counters, the cache counts every way
    a disk entry can fail to serve: ``stale_entries`` (old format version),
    ``corrupt_entries`` (unparseable payload), ``rejected_entries``
    (parsed, but failed semantic verification — capacity, legality or key
    agreement) and ``io_errors`` (disk reads/writes that raised
    ``OSError``).  Each failed load also counts as a miss, so serving
    sources stay truthful; fleet operators watch the failure counters to
    spot cache poisoning or disk trouble.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    stale_entries: int = 0
    corrupt_entries: int = 0
    rejected_entries: int = 0
    io_errors: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups that hit either tier."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary view of the counters (pinned key order)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "stale_entries": self.stale_entries,
            "corrupt_entries": self.corrupt_entries,
            "rejected_entries": self.rejected_entries,
            "io_errors": self.io_errors,
            "hit_rate": self.hit_rate(),
        }

    def snapshot(self) -> Dict[str, object]:
        """Alias of :meth:`to_dict` (symmetry with ``ServingStats``)."""
        return self.to_dict()


class PlanCache:
    """Two-tier (in-process LRU + disk JSON) execution-plan cache.

    Parameters
    ----------
    directory:
        Disk-store location.  ``None`` keeps the cache memory-only; the
        directory (with a leading ``~`` expanded) is created on first
        write otherwise.
    max_memory_entries:
        LRU capacity of the in-process tier.  Evicted entries remain
        loadable from disk when a directory is configured.
    verify:
        Semantically verify disk entries at load time (default on).  A
        corrupt, stale or invariant-violating entry — including one whose
        tile footprint overflows the fingerprinted device — is treated as
        a miss and counted in :class:`CacheStats`, so the request falls
        through to a cold compile instead of serving a bad plan.  Fleet
        broadcast adoption flows through the same read path, so replicas
        verify plans before adopting them.

    All operations are thread-safe; the
    :class:`~repro.runtime.batch.BatchCompiler` relies on this to fan
    compile jobs across a worker pool with a shared cache.

    Example
    -------
    ::

        from repro import FlashFuser, PlanCache

        cache = PlanCache(directory="~/.cache/flashfuser")
        with FlashFuser(cache=cache) as compiler:
            compiler.compile_workload("G4")     # cold: search + store
            compiler.compile_workload("G4")     # warm: memory-tier hit
        print(cache.stats.snapshot())           # hits, misses, tiers
        # A new process pointing at the same directory starts warm (disk tier).
    """

    def __init__(
        self,
        directory: Optional[Union[str, os.PathLike]] = None,
        max_memory_entries: int = 128,
        verify: bool = True,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.directory = (
            Path(directory).expanduser() if directory is not None else None
        )
        if self.directory is not None and self.directory.exists() and not self.directory.is_dir():
            raise ValueError(f"cache directory {self.directory} is not a directory")
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        self._verifier = PlanVerifier() if verify else None
        self._lock = make_lock("plan-cache", reentrant=True)
        self._entries: "OrderedDict[str, PlanCacheEntry]" = OrderedDict()
        # Rehydrated kernels memoized per (key, served chain name) so hot
        # requests skip re-lowering; bounded by the same LRU capacity.
        self._kernels: "OrderedDict[tuple, CompiledKernel]" = OrderedDict()
        # Nearest-shape registry: family -> (m, n, k, l) -> entry key, used
        # to seed warm-start transfer searches (see repro.search.incremental).
        self._shapes = ShapeIndex()

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def key_for(
        self,
        chain: GemmChainSpec,
        device: HardwareSpec,
        search_config: Optional[Dict[str, object]] = None,
    ) -> str:
        """Compute the cache key for one compilation request."""
        return plan_cache_key(chain, device, search_config)

    # ------------------------------------------------------------------ #
    # Entry-level interface
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[PlanCacheEntry]:
        """Look an entry up, promoting disk hits into the memory tier.

        The disk read happens outside the lock so concurrent warm lookups
        of different keys do not serialize on file I/O; a racing promotion
        of the same key is harmless (both threads read identical content).
        """
        with tracer().span("cache.get", key=key[:16]) as span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.memory_hits += 1
                    span.set("tier", TIER_MEMORY)
                    return entry
            entry = self._read_disk(key)
            with self._lock:
                if entry is not None:
                    self.stats.disk_hits += 1
                    self._remember(key, entry)
                    span.set("tier", TIER_DISK)
                    return entry
                promoted = self._entries.get(key)
                if promoted is not None:
                    self._entries.move_to_end(key)
                    self.stats.memory_hits += 1
                    span.set("tier", TIER_MEMORY)
                    return promoted
                self.stats.misses += 1
                span.set("tier", None)
                return None

    def put(self, key: str, entry: PlanCacheEntry, write_disk: bool = True) -> None:
        """Insert an entry into the memory tier and (optionally) to disk.

        A failed disk write (full disk, permissions, dying volume) is
        counted in :attr:`CacheStats.io_errors` rather than raised: the
        memory tier still holds the entry, so serving degrades to
        per-process caching instead of failing the request that compiled
        the kernel.
        """
        with self._lock:
            self._remember(key, entry)
            self.stats.stores += 1
            if write_disk and self.directory is not None:
                try:
                    self._write_disk(key, entry)
                except OSError:
                    self.stats.io_errors += 1

    def tier_of(self, key: str) -> Optional[str]:
        """Which tier currently holds ``key`` (without counting a lookup)."""
        with self._lock:
            if key in self._entries:
                return TIER_MEMORY
            if self.directory is not None and self._disk_path(key).exists():
                return TIER_DISK
            return None

    def contains(self, key: str) -> bool:
        """Whether either tier holds ``key``."""
        return self.tier_of(key) is not None

    # ------------------------------------------------------------------ #
    # Nearest-shape transfer seeds
    # ------------------------------------------------------------------ #
    def register_shape(
        self,
        chain: GemmChainSpec,
        device: HardwareSpec,
        search_config: Optional[Dict[str, object]],
        key: str,
    ) -> None:
        """Index ``key`` as the plan compiled for ``chain``'s shape.

        Shapes are grouped into families (same chain kind/activation/dtype,
        device and search config — everything but M/N/K/L); within a family
        :meth:`nearest_seed` ranks entries by log-scale dimension distance.
        """
        family = shape_family_key(chain, device, search_config or {})
        self._shapes.register(
            family, (chain.m, chain.n, chain.k, chain.l), key
        )

    def nearest_seed(
        self,
        chain: GemmChainSpec,
        device: HardwareSpec,
        search_config: Optional[Dict[str, object]] = None,
    ) -> Optional[TransferSeed]:
        """The plan skeleton of the nearest previously compiled shape.

        A peek, not a lookup: neither tier's hit/miss counters move, so
        transfer seeding never distorts the cache statistics the serving
        layer reports.  Returns ``None`` when no same-family shape has been
        registered or its entry has been evicted from both tiers.
        """
        family = shape_family_key(chain, device, search_config or {})
        key = self._shapes.nearest(family, (chain.m, chain.n, chain.k, chain.l))
        if key is None:
            return None
        entry = self._peek(str(key))
        if entry is None:
            return None
        return seed_from_plan_dict(entry.plan)

    def _peek(self, key: str) -> Optional[PlanCacheEntry]:
        """Entry for ``key`` without touching stats or LRU order."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            return entry
        return self._read_disk(key)

    # ------------------------------------------------------------------ #
    # Kernel-level interface (what FlashFuser calls)
    # ------------------------------------------------------------------ #
    def load_kernel(
        self, key: str, chain: Optional[GemmChainSpec] = None
    ) -> Optional[CompiledKernel]:
        """Return the cached kernel for ``key``, rehydrating as needed.

        Rehydration (plan deserialization, IR lowering, source emission)
        runs outside the lock so parallel workers sharing this cache do not
        serialize on it; racing threads may rehydrate the same entry twice,
        which costs a few milliseconds and yields equivalent kernels.
        """
        memo_key = (key, chain.name if chain is not None else None)
        with self._lock:
            kernel = self._kernels.get(memo_key)
            if kernel is not None:
                self._kernels.move_to_end(memo_key)
                self.stats.memory_hits += 1
                return kernel
        entry = self.get(key)
        if entry is None:
            return None
        with tracer().span(
            "cache.rehydrate", chain=chain.name if chain is not None else None
        ):
            kernel = entry.rehydrate(chain=chain)
        with self._lock:
            existing = self._kernels.get(memo_key)
            if existing is not None:
                return existing
            self._kernels[memo_key] = kernel
            while len(self._kernels) > self.max_memory_entries:
                self._kernels.popitem(last=False)
        return kernel

    def store_kernel(
        self,
        key: str,
        kernel: CompiledKernel,
        device: Optional[HardwareSpec] = None,
        search_config: Optional[Dict[str, object]] = None,
    ) -> PlanCacheEntry:
        """Serialize and store a freshly compiled kernel.

        ``device`` and ``search_config`` (when the caller knows them, as
        :meth:`repro.api.FlashFuser.compile_request` does) are embedded in
        the entry so loads can recompute the key from the payload and
        re-check the plan against the fingerprinted device.
        """
        entry = PlanCacheEntry.from_kernel(
            key, kernel, device=device, search_config=search_config
        )
        with self._lock:
            self.put(key, entry)
            memo_key = (key, kernel.plan.chain.name)
            self._kernels[memo_key] = kernel
            while len(self._kernels) > self.max_memory_entries:
                self._kernels.popitem(last=False)
        return entry

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def memory_keys(self) -> List[str]:
        """Keys currently resident in the memory tier (LRU order)."""
        with self._lock:
            return list(self._entries)

    def disk_keys(self) -> List[str]:
        """Keys currently present in the disk store."""
        if self.directory is None or not self.directory.exists():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` also delete disk entries."""
        with self._lock:
            self._entries.clear()
            self._kernels.clear()
            if disk and self.directory is not None and self.directory.exists():
                for path in self.directory.glob("*.json"):
                    path.unlink(missing_ok=True)
                # Also sweep staging leftovers from writers that died mid-write.
                for path in self.directory.glob("*.tmp.*"):
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _remember(self, key: str, entry: PlanCacheEntry) -> None:
        # Callers must hold the cache lock; checked when the lock-order
        # detector is active (see repro.analysis.locks).
        require_held(self._lock)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_memory_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            # Drop rehydrated kernels belonging to the evicted entry too.
            for memo_key in [k for k in self._kernels if k[0] == evicted_key]:
                del self._kernels[memo_key]

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _read_disk(self, key: str) -> Optional[PlanCacheEntry]:
        """Load, classify and verify one disk entry (``None`` on failure).

        Every failure mode is counted separately in :attr:`stats`: read
        I/O errors, stale format versions, corrupt payloads, and entries
        that parse but fail semantic verification (capacity overflow,
        illegal schedule, key disagreement).  All of them surface to the
        caller as a plain miss, so the serve path transparently recompiles
        — and the recompile back-fills this same key with a good entry.
        """
        if self.directory is None:
            return None
        path = self._disk_path(key)
        try:
            blob = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            with self._lock:
                self.stats.io_errors += 1
            return None
        try:
            entry = PlanCacheEntry.parse(blob)
        except StaleCacheEntry:
            with self._lock:
                self.stats.stale_entries += 1
            return None
        except CorruptCacheEntry:
            with self._lock:
                self.stats.corrupt_entries += 1
            return None
        if self._verifier is not None:
            violations = self._verifier.verify_entry(entry, expected_key=key)
            if violations:
                with self._lock:
                    self.stats.rejected_entries += 1
                log_event(
                    _logger,
                    "cache-entry-rejected",
                    level=logging.WARNING,
                    key=key[:16],
                    violations=len(violations),
                )
                return None
        return entry

    def _write_disk(self, key: str, entry: PlanCacheEntry) -> None:
        """Atomically publish one entry to the shared disk store.

        Fleet workers point several *processes* at one directory, so the
        write path must guarantee that a reader never observes a torn file
        and that concurrent same-key writers cannot corrupt each other:

        * each writer stages into its own temp file (unique per process and
          thread), flushed and fsynced before publication;
        * publication is a single atomic ``os.replace`` — racing same-key
          writers simply take turns being the visible version, and both
          versions deserialize to equivalent plans;
        * a writer that fails mid-stage removes its temp file and leaves the
          previously published version untouched.
        """
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._disk_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(entry.to_json())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise
