"""Batch compilation with cache deduplication and a worker pool.

:class:`BatchCompiler` fans independent compile jobs — the M bins of a
kernel table, or a multi-workload warmup sweep — across a
``concurrent.futures`` thread pool.  Before anything is submitted the job
list is deduplicated by canonical plan-cache key, so a batch containing the
same chain shape twice (or a shape already sitting in the attached
:class:`~repro.runtime.cache.PlanCache`) runs the fusion search at most
once.  Failures (:class:`~repro.api.FusionError`) are captured per job
instead of aborting the batch.

A note on parallelism: the fusion search in this reproduction is pure
Python, so under the GIL the thread pool alone overlaps cache/disk I/O but
does not multiply search throughput across cores.  The ``parallelism``
knob closes that gap: cold compiles are routed through the sharded
:class:`~repro.search.parallel.ParallelSearchEngine`, whose worker
*processes* sidestep the GIL (and whose single-worker mode is itself
faster than the serial engine thanks to memoized pruning and batched
scoring).  Warm hits keep resolving through the thread pool — they never
pay a fork.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import CompiledKernel, FlashFuser, FusionError, KernelTable
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_chain_spec

#: Job statuses reported in :class:`BatchItem`.
STATUS_COMPILED = "compiled"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


@dataclass
class BatchItem:
    """Outcome of one compile job in a batch."""

    chain: GemmChainSpec
    status: str
    kernel: Optional[CompiledKernel] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a kernel."""
        return self.kernel is not None


@dataclass
class BatchReport:
    """Aggregate view of one batch run."""

    items: List[BatchItem] = field(default_factory=list)
    elapsed_s: float = 0.0
    deduplicated: int = 0

    @property
    def compiled(self) -> int:
        """Jobs that ran a fresh fusion search."""
        return sum(1 for item in self.items if item.status == STATUS_COMPILED)

    @property
    def cached(self) -> int:
        """Jobs served from the plan cache (or deduplicated in-batch)."""
        return sum(1 for item in self.items if item.status == STATUS_CACHED)

    @property
    def failed(self) -> int:
        """Jobs for which no feasible fused plan exists."""
        return sum(1 for item in self.items if item.status == STATUS_FAILED)

    def kernels(self) -> List[CompiledKernel]:
        """The successfully produced kernels, in job order."""
        return [item.kernel for item in self.items if item.kernel is not None]


class BatchCompiler:
    """Compile many chains concurrently through one :class:`FlashFuser`.

    Parameters
    ----------
    compiler:
        The compiler the jobs run through.  Attaching a cache to it makes
        batches idempotent across calls and processes.
    max_workers:
        Worker-pool width (defaults to ``min(8, cpu_count)``).
    executor:
        Optional externally managed executor; when provided it is *not*
        shut down by this class and ``max_workers`` is ignored.
    parallelism:
        Process-pool mode: when set (> 1), cold compiles are routed through
        the sharded parallel search engine with that many worker processes.
        Cached and deduplicated jobs are unaffected, and the compiled plans
        are identical to serial compilation — only cold wall-clock changes.
    """

    def __init__(
        self,
        compiler: Optional[FlashFuser] = None,
        max_workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        parallelism: Optional[int] = None,
    ) -> None:
        self.compiler = compiler or FlashFuser()
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.parallelism = parallelism
        self._executor = executor

    # ------------------------------------------------------------------ #
    # Batch entry points
    # ------------------------------------------------------------------ #
    def compile_chains(self, chains: Sequence[GemmChainSpec]) -> BatchReport:
        """Compile every chain, deduplicating canonically identical ones.

        Jobs whose shape is already present in the compiler's plan cache are
        resolved without entering the pool; duplicate shapes within the
        batch are compiled once and fanned back out to every requesting job.
        """
        start = time.perf_counter()
        report = BatchReport()
        report.items = [
            BatchItem(chain=chain, status=STATUS_FAILED) for chain in chains
        ]

        # Group job indices by canonical identity (shape + device + config).
        groups: Dict[str, List[int]] = {}
        for index, chain in enumerate(chains):
            key = self._dedup_key(chain)
            groups.setdefault(key, []).append(index)
        report.deduplicated = len(chains) - len(groups)

        def run_group(indices: List[int]) -> None:
            leader = chains[indices[0]]
            # Classify before compiling: a memoized hit hands back the
            # originally compiled kernel object, so the entry's presence in
            # the cache is the reliable signal that no search will run.
            key = self.compiler.cache_key(leader)
            cache = self.compiler.cache
            was_cached = (
                key is not None and cache is not None and cache.contains(key)
            )
            job_start = time.perf_counter()
            try:
                kernel = self.compiler.compile(leader, parallelism=self.parallelism)
                status = (
                    STATUS_CACHED
                    if was_cached or getattr(kernel.search, "from_cache", False)
                    else STATUS_COMPILED
                )
                error = None
            except FusionError as exc:
                kernel, status, error = None, STATUS_FAILED, str(exc)
            elapsed = time.perf_counter() - job_start
            for position, index in enumerate(indices):
                chain = chains[index]
                item = report.items[index]
                item.elapsed_s = elapsed if position == 0 else 0.0
                item.error = error
                if kernel is None:
                    item.status = STATUS_FAILED
                    continue
                # Followers share the leader's plan; they count as cached
                # because no additional search ran for them.
                item.status = status if position == 0 else STATUS_CACHED
                item.kernel = (
                    kernel
                    if position == 0
                    else self._renamed(kernel, chain)
                )
            # After the leader, identical shapes are served from the cache.

        owns_executor = self._executor is None
        executor = self._executor or ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            futures = [
                executor.submit(run_group, indices) for indices in groups.values()
            ]
            for future in futures:
                future.result()
        finally:
            if owns_executor:
                executor.shutdown(wait=True)

        report.elapsed_s = time.perf_counter() - start
        return report

    def compile_table(
        self, chain: GemmChainSpec, m_bins: Sequence[int]
    ) -> KernelTable:
        """Parallel counterpart of :meth:`FlashFuser.compile_table`.

        The bins are compiled concurrently (deduplicating repeated bins) and
        assembled into a :class:`~repro.api.KernelTable`.  Bins that admit
        no feasible fused plan are omitted from the table.
        """
        unique_bins = sorted(set(m_bins))
        scaled = [
            chain.scaled(m=m, name=f"{chain.name}_m{m}") for m in unique_bins
        ]
        report = self.compile_chains(scaled)
        kernels = {
            m: item.kernel
            for m, item in zip(unique_bins, report.items)
            if item.kernel is not None
        }
        return KernelTable(chain=chain, kernels=kernels)

    def compile_workloads(
        self,
        workload_ids: Sequence[str],
        m: Optional[int] = None,
    ) -> Dict[str, BatchItem]:
        """Compile a set of paper workloads (optionally at an overridden M)."""
        chains = [get_chain_spec(workload_id, m=m) for workload_id in workload_ids]
        report = self.compile_chains(chains)
        return dict(zip(workload_ids, report.items))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _dedup_key(self, chain: GemmChainSpec) -> str:
        key = self.compiler.cache_key(chain)
        return key if key is not None else chain.canonical_hash()

    def _renamed(self, kernel: CompiledKernel, chain: GemmChainSpec) -> CompiledKernel:
        """Serve a duplicate job under its own chain name."""
        if kernel.plan.chain.name == chain.name:
            return kernel
        from repro.runtime.cache import PlanCacheEntry

        return PlanCacheEntry.from_kernel("", kernel).rehydrate(chain=chain)
