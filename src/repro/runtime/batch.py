"""Batch compilation with cache deduplication and a worker pool.

:class:`BatchCompiler` fans independent compile jobs — the M bins of a
kernel table, or a multi-workload warmup sweep — across a
``concurrent.futures`` thread pool.  It is a thin fan-out over
:meth:`~repro.api.FlashFuser.submit`: each deduplicated job becomes one
:class:`~repro.api.CompileRequest`, and the resulting
:class:`~repro.api.CompileResponse` provenance (cache hit/miss, wall clock)
feeds the batch report directly.  Before anything is submitted the job list
is deduplicated by canonical plan-cache key, so a batch containing the same
chain shape twice (or a shape already sitting in the attached
:class:`~repro.runtime.cache.PlanCache`) runs the fusion search at most
once.  Failures (:class:`~repro.api.FusionError`) are captured per job
instead of aborting the batch.

A note on parallelism: the fusion search in this reproduction is pure
Python, so under the GIL the thread pool alone overlaps cache/disk I/O but
does not multiply search throughput across cores.
:attr:`~repro.config.FuserConfig.parallelism` closes that gap: cold
compiles are routed through the sharded
:class:`~repro.search.parallel.ParallelSearchEngine`, whose worker
*processes* sidestep the GIL (and whose single-worker mode is itself
faster than the serial engine thanks to memoized pruning and batched
scoring).  Warm hits keep resolving through the thread pool — they never
pay a fork.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.api import (
    CompiledKernel,
    CompileRequest,
    FlashFuser,
    FusionError,
    KernelTable,
)
from repro.config import FuserConfig, warn_deprecated
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_chain_spec

#: Job statuses reported in :class:`BatchItem`.
STATUS_COMPILED = "compiled"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


@dataclass
class BatchItem:
    """Outcome of one compile job in a batch."""

    chain: GemmChainSpec
    status: str
    kernel: Optional[CompiledKernel] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a kernel."""
        return self.kernel is not None


@dataclass
class BatchReport:
    """Aggregate view of one batch run."""

    items: List[BatchItem] = field(default_factory=list)
    elapsed_s: float = 0.0
    deduplicated: int = 0

    @property
    def compiled(self) -> int:
        """Jobs that ran a fresh fusion search."""
        return sum(1 for item in self.items if item.status == STATUS_COMPILED)

    @property
    def cached(self) -> int:
        """Jobs served from the plan cache (or deduplicated in-batch)."""
        return sum(1 for item in self.items if item.status == STATUS_CACHED)

    @property
    def failed(self) -> int:
        """Jobs for which no feasible fused plan exists."""
        return sum(1 for item in self.items if item.status == STATUS_FAILED)

    def kernels(self) -> List[CompiledKernel]:
        """The successfully produced kernels, in job order."""
        return [item.kernel for item in self.items if item.kernel is not None]


class BatchCompiler:
    """Compile many chains concurrently through one :class:`FlashFuser`.

    Parameters
    ----------
    compiler:
        The compiler the jobs run through.  Attaching a cache to it makes
        batches idempotent across calls and processes.  When omitted, a
        compiler is built from ``config``.
    max_workers:
        Worker-pool width (defaults to ``min(8, cpu_count)``).
    executor:
        Optional externally managed executor; when provided it is *not*
        shut down by this class and ``max_workers`` is ignored.
    overrides:
        Per-request :class:`~repro.config.FuserConfig` overrides applied to
        every job in every batch (e.g. ``{"parallelism": 8}`` to route cold
        compiles through the sharded process-parallel engine).  Cached and
        deduplicated jobs are unaffected, and compiled plans are identical
        either way — only cold wall-clock changes.
    config:
        Configuration for the internally constructed compiler when
        ``compiler`` is omitted.
    parallelism:
        Deprecated: use ``overrides={"parallelism": N}`` or set
        :attr:`FuserConfig.parallelism` on the compiler.

    Example
    -------
    ::

        from repro import BatchCompiler, FlashFuser, PlanCache
        from repro.ir.workloads import get_chain_spec

        compiler = FlashFuser(cache=PlanCache(directory="~/.cache/ff"))
        batch = BatchCompiler(compiler)
        items = batch.compile_workloads(["G4", "G5", "S3"])
        print({wid: item.status for wid, item in items.items()})
        table = batch.compile_table(get_chain_spec("G4"), m_bins=(64, 128, 256))
        print(table.bins())
    """

    def __init__(
        self,
        compiler: Optional[FlashFuser] = None,
        max_workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        parallelism: Optional[int] = None,
        config: Optional[FuserConfig] = None,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> None:
        owns_compiler = compiler is None
        if compiler is None:
            compiler = FlashFuser(config)
        elif config is not None:
            raise ValueError("pass either compiler= or config=, not both")
        self.compiler = compiler
        self._owns_compiler = owns_compiler
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.overrides: Dict[str, object] = dict(overrides or {})
        if parallelism is not None:
            warn_deprecated(
                "batch-parallelism-kwarg",
                "BatchCompiler(parallelism=...) is deprecated; set "
                "FuserConfig.parallelism on the compiler, or pass "
                "overrides={'parallelism': ...}",
            )
            self.overrides.setdefault("parallelism", parallelism)
        self._executor = executor

    @property
    def parallelism(self) -> Optional[int]:
        """The effective cold-compile fan-out for this batch's jobs."""
        override = self.overrides.get("parallelism")
        if override is not None:
            return int(override)
        return self.compiler.config.parallelism

    def close(self) -> None:
        """Release an internally constructed compiler's worker pools.

        A compiler passed in by the caller is the caller's to close; one
        built from ``config`` is owned (and closed) here.
        """
        if self._owns_compiler:
            self.compiler.close()

    def __enter__(self) -> "BatchCompiler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Batch entry points
    # ------------------------------------------------------------------ #
    def compile_chains(self, chains: Sequence[GemmChainSpec]) -> BatchReport:
        """Compile every chain, deduplicating canonically identical ones.

        Jobs whose shape is already present in the compiler's plan cache are
        resolved without a search; duplicate shapes within the batch are
        compiled once and fanned back out to every requesting job.
        """
        start = time.perf_counter()
        report = BatchReport()
        report.items = [
            BatchItem(chain=chain, status=STATUS_FAILED) for chain in chains
        ]

        # Group job indices by canonical identity (shape + device + config).
        groups: Dict[str, List[int]] = {}
        for index, chain in enumerate(chains):
            key = self._dedup_key(chain)
            groups.setdefault(key, []).append(index)
        report.deduplicated = len(chains) - len(groups)

        owns_executor = self._executor is None
        executor = self._executor or ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            futures = [
                (
                    indices,
                    self.compiler.submit(
                        CompileRequest(
                            chain=chains[indices[0]], overrides=self.overrides
                        ),
                        executor=executor,
                    ),
                )
                for indices in groups.values()
            ]
            for indices, future in futures:
                self._record_group(report, chains, indices, future)
        finally:
            if owns_executor:
                executor.shutdown(wait=True)

        report.elapsed_s = time.perf_counter() - start
        return report

    def compile_table(
        self, chain: GemmChainSpec, m_bins: Sequence[int]
    ) -> KernelTable:
        """Parallel counterpart of :meth:`FlashFuser.compile_table`.

        The bins are compiled concurrently (deduplicating repeated bins) and
        assembled into a :class:`~repro.api.KernelTable`.  Bins that admit
        no feasible fused plan are omitted from the table.
        """
        unique_bins = sorted(set(m_bins))
        scaled = [
            chain.scaled(m=m, name=f"{chain.name}_m{m}") for m in unique_bins
        ]
        report = self.compile_chains(scaled)
        kernels = {
            m: item.kernel
            for m, item in zip(unique_bins, report.items)
            if item.kernel is not None
        }
        return KernelTable(chain=chain, kernels=kernels)

    def compile_workloads(
        self,
        workload_ids: Sequence[str],
        m: Optional[int] = None,
    ) -> Dict[str, BatchItem]:
        """Compile a set of paper workloads (optionally at an overridden M)."""
        chains = [get_chain_spec(workload_id, m=m) for workload_id in workload_ids]
        report = self.compile_chains(chains)
        return dict(zip(workload_ids, report.items))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _record_group(
        self,
        report: BatchReport,
        chains: Sequence[GemmChainSpec],
        indices: List[int],
        future: "Future",
    ) -> None:
        """Fan one group's response (or failure) out to its job items."""
        try:
            response = future.result()
            kernel = response.kernel
            status = STATUS_CACHED if response.cache_hit else STATUS_COMPILED
            error = None
            elapsed = response.elapsed_s
        except FusionError as exc:
            kernel, status, error, elapsed = None, STATUS_FAILED, str(exc), 0.0
        for position, index in enumerate(indices):
            chain = chains[index]
            item = report.items[index]
            item.elapsed_s = elapsed if position == 0 else 0.0
            item.error = error
            if kernel is None:
                item.status = STATUS_FAILED
                continue
            # Followers share the leader's plan; they count as cached
            # because no additional search ran for them.
            item.status = status if position == 0 else STATUS_CACHED
            item.kernel = (
                kernel if position == 0 else self._renamed(kernel, chain)
            )

    def _dedup_key(self, chain: GemmChainSpec) -> str:
        key = self.compiler.cache_key(chain)
        return key if key is not None else chain.canonical_hash()

    def _renamed(self, kernel: CompiledKernel, chain: GemmChainSpec) -> CompiledKernel:
        """Serve a duplicate job under its own chain name."""
        if kernel.plan.chain.name == chain.name:
            return kernel
        from repro.runtime.cache import PlanCacheEntry

        return PlanCacheEntry.from_kernel("", kernel).rehydrate(chain=chain)
