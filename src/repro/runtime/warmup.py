"""Warmup: precompile the paper's workload suites ahead of traffic.

Serving latency is dominated by cold fusion searches, so a deployment warms
the cache before accepting requests: every (workload, M-bin) pair of the
anticipated traffic is compiled once — in parallel, deduplicated against the
plan cache — and assembled into per-workload kernel tables.  A warmed
:class:`~repro.runtime.server.KernelServer` then serves the paper's suites
entirely from table lookups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api import FlashFuser, KernelTable
from repro.config import FuserConfig, warn_deprecated
from repro.ir.workloads import get_chain_spec, list_workloads
from repro.runtime.batch import STATUS_CACHED, STATUS_COMPILED, BatchCompiler

#: The suites warmed by default: the paper's GEMM chains (Table VII) and
#: gated FFN chains (Table VI).  Conv chains are opt-in — their im2col
#: M extents rarely appear in dynamic-shape serving.
DEFAULT_WARMUP_SUITES: Tuple[str, ...] = ("gemm", "gated_ffn")

#: Default M bins warmed per workload (the paper evaluates at M=128).
DEFAULT_WARMUP_M_BINS: Tuple[int, ...] = (128,)


@dataclass
class WarmupReport:
    """Outcome of one warmup sweep."""

    jobs: int = 0
    compiled: int = 0
    cached: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    #: Failure reasons keyed by ``"<workload>@m<bin>"``.
    failures: Dict[str, str] = field(default_factory=dict)
    #: One kernel table per warmed workload (failed bins omitted).
    tables: Dict[str, KernelTable] = field(default_factory=dict)

    @property
    def succeeded(self) -> int:
        """Jobs that produced a kernel (fresh or cached)."""
        return self.compiled + self.cached

    def snapshot(self) -> Dict[str, object]:
        """Plain-dictionary view for logs and tests."""
        return {
            "jobs": self.jobs,
            "compiled": self.compiled,
            "cached": self.cached,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "failures": dict(self.failures),
            "workloads": sorted(self.tables),
        }


def default_warmup_workloads() -> List[str]:
    """The workload ids warmed when none are specified."""
    ids: List[str] = []
    for suite in DEFAULT_WARMUP_SUITES:
        ids.extend(list_workloads(suite))
    return ids


def warmup_workloads(
    compiler: Optional[Union[FlashFuser, BatchCompiler, FuserConfig]] = None,
    workload_ids: Optional[Sequence[str]] = None,
    m_bins: Sequence[int] = DEFAULT_WARMUP_M_BINS,
    max_workers: Optional[int] = None,
    parallelism: Optional[int] = None,
    config: Optional[FuserConfig] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> WarmupReport:
    """Precompile every (workload, M-bin) pair through the batch compiler.

    Parameters
    ----------
    compiler:
        A :class:`FlashFuser` (wrapped in a fresh :class:`BatchCompiler`),
        an existing :class:`BatchCompiler`, or a
        :class:`~repro.config.FuserConfig` from which a compiler is built.
        Omitted entirely, ``config`` (or the defaults) apply.
    workload_ids:
        Workloads to warm; defaults to the paper's GEMM and gated-FFN suites.
    m_bins:
        M bins compiled per workload.
    max_workers:
        Pool width when the batch compiler is constructed here.
    config:
        Configuration for an internally constructed compiler.
    overrides:
        Per-request config overrides forwarded to the batch compiler (e.g.
        ``{"parallelism": 8}`` — the fastest way to warm an empty cache,
        since a cold suite is exactly a pile of independent cold compiles).
        Ignored when an existing :class:`BatchCompiler` is passed (configure
        it directly instead).
    parallelism:
        Deprecated: use ``overrides={"parallelism": N}`` or set
        :attr:`FuserConfig.parallelism`.

    Returns a :class:`WarmupReport`: per-workload kernel tables plus
    compiled/cached/failed counts and the elapsed wall clock.

    Example
    -------
    ::

        from repro import FuserConfig, warmup_workloads

        config = FuserConfig(cache="~/.cache/ff", parallelism=8)
        report = warmup_workloads(config, workload_ids=["G4", "G5"],
                                  m_bins=(64, 128, 256))
        print(report.succeeded, report.snapshot())
    """
    start = time.perf_counter()
    if parallelism is not None:
        warn_deprecated(
            "warmup-parallelism-kwarg",
            "warmup_workloads(parallelism=...) is deprecated; set "
            "FuserConfig.parallelism or pass overrides={'parallelism': ...}",
        )
        overrides = dict(overrides or {})
        overrides.setdefault("parallelism", parallelism)
    owned: Optional[FlashFuser] = None
    if isinstance(compiler, BatchCompiler):
        batch = compiler
    else:
        if isinstance(compiler, FuserConfig):
            if config is not None:
                raise ValueError("pass either a FuserConfig or config=, not both")
            fuser = owned = FlashFuser(compiler)
        elif compiler is None:
            fuser = owned = FlashFuser(config)
        else:
            fuser = compiler
        batch = BatchCompiler(fuser, max_workers=max_workers, overrides=overrides)
    try:
        ids = (
            list(workload_ids)
            if workload_ids is not None
            else default_warmup_workloads()
        )
        bins = sorted(set(m_bins))
        if not bins:
            raise ValueError("m_bins must be non-empty")
        if any(m <= 0 for m in bins):
            raise ValueError("m_bins must be positive")

        jobs: List[Tuple[str, int]] = [(wid, m) for wid in ids for m in bins]
        chains = [
            get_chain_spec(wid).scaled(m=m, name=f"{wid}_m{m}") for wid, m in jobs
        ]
        batch_report = batch.compile_chains(chains)

        report = WarmupReport(jobs=len(jobs))
        for (wid, m), item in zip(jobs, batch_report.items):
            if item.status == STATUS_COMPILED:
                report.compiled += 1
            elif item.status == STATUS_CACHED:
                report.cached += 1
            else:
                report.failed += 1
                report.failures[f"{wid}@m{m}"] = item.error or "fusion failed"
                continue
            table = report.tables.setdefault(
                wid, KernelTable(chain=get_chain_spec(wid))
            )
            table.kernels[m] = item.kernel
        report.elapsed_s = time.perf_counter() - start
        return report
    finally:
        # A compiler constructed here is owned here: release its pools so a
        # one-shot warmup cannot leak search-engine worker processes.
        if owned is not None:
            owned.close()
