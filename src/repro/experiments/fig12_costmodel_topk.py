"""Figure 12: cost-model validation and top-K selection accuracy.

Part (a) checks that the configuration the cost model ranks first is at (or
near) the best simulated performance among all analysed candidates.  Part (b)
sweeps the top-K size and reports the accuracy metric the paper uses: the
ratio of the performance of the best candidate *within the top-K list* to the
true optimum over all candidates, averaged over workloads — approaching 100 %
as K grows, with K=11 the paper's operating point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import chain_for, format_table
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.search.cost_model import CostModel
from repro.search.engine import SearchEngine
from repro.search.space import SearchSpace
from repro.sim.engine import PerformanceSimulator

#: Workloads of Figure 12a.
COST_MODEL_WORKLOADS = ("C3", "C4", "G4")
#: Workloads averaged for the top-K accuracy curve (subset of Tables V/VII).
TOPK_WORKLOADS = ("G1", "G4", "G6", "C1", "C3", "C5")


def _ranked_candidates(workload_id: str, device: HardwareSpec, max_rank: int = 64):
    """All analysed candidates of one workload, ranked by predicted cost."""
    simulator = PerformanceSimulator(device)
    engine = SearchEngine(
        device,
        top_k=max_rank,
        include_dsm=True,
        profiler=None,  # rank purely by the cost model first
        space=SearchSpace(device),
        cost_model=CostModel(device),
    )
    result = engine.search(chain_for(workload_id))
    plans = result.top_k
    for plan in plans:
        plan.profiled_time_us = simulator.simulate_plan(plan.result).time_us
    return plans


def run_cost_model_validation(
    workloads: Sequence[str] = COST_MODEL_WORKLOADS,
    device: Optional[HardwareSpec] = None,
    candidates_per_workload: int = 48,
) -> List[Dict[str, object]]:
    """Figure 12a: predicted-best vs simulated-best TFLOPS per workload."""
    device = device or h100_spec()
    rows: List[Dict[str, object]] = []
    for workload_id in workloads:
        plans = _ranked_candidates(workload_id, device, max_rank=candidates_per_workload)
        if not plans:
            continue
        chain = chain_for(workload_id)
        flops = chain.total_flops()
        predicted_best = plans[0]
        simulated_best = min(plans, key=lambda p: p.profiled_time_us)
        to_tflops = lambda plan: flops / plan.profiled_time_us / 1e6
        rows.append(
            {
                "workload": workload_id,
                "candidates": len(plans),
                "predicted_choice_tflops": round(to_tflops(predicted_best), 1),
                "best_tflops": round(to_tflops(simulated_best), 1),
                "accuracy_percent": round(
                    100.0 * simulated_best.profiled_time_us / predicted_best.profiled_time_us, 1
                ),
            }
        )
    return rows


def run_topk_accuracy(
    k_values: Sequence[int] = tuple(range(1, 16)),
    workloads: Sequence[str] = TOPK_WORKLOADS,
    device: Optional[HardwareSpec] = None,
    candidates_per_workload: int = 64,
) -> List[Dict[str, object]]:
    """Figure 12b: accuracy of top-K selection as K grows."""
    device = device or h100_spec()
    per_workload = {
        wid: _ranked_candidates(wid, device, max_rank=candidates_per_workload)
        for wid in workloads
    }
    rows: List[Dict[str, object]] = []
    for k in k_values:
        accuracies = []
        for plans in per_workload.values():
            if not plans:
                continue
            best_overall = min(p.profiled_time_us for p in plans)
            best_in_topk = min(p.profiled_time_us for p in plans[:k])
            accuracies.append(best_overall / best_in_topk)
        accuracy = sum(accuracies) / len(accuracies) if accuracies else 0.0
        rows.append({"top_k": k, "accuracy_percent": round(accuracy * 100.0, 2)})
    return rows


def run(device: Optional[HardwareSpec] = None) -> Dict[str, List[Dict[str, object]]]:
    """Both panels of Figure 12."""
    return {
        "cost_model_validation": run_cost_model_validation(device=device),
        "topk_accuracy": run_topk_accuracy(device=device),
    }


def main() -> None:
    """Print Figure 12's data."""
    results = run()
    print("Figure 12a: cost-model validation")
    print(format_table(results["cost_model_validation"]))
    print()
    print("Figure 12b: top-K selection accuracy")
    print(format_table(results["topk_accuracy"]))


if __name__ == "__main__":
    main()
