"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning a list of row
dictionaries (so tests and benchmarks can assert on them) and a ``main()``
that prints the table the paper reports.  The mapping from paper artefact to
module is recorded in DESIGN.md's per-experiment index and EXPERIMENTS.md.
"""

from repro.experiments import (
    fig4_dsm_bandwidth,
    fig5_chimera_failure,
    fig10_subgraph_perf,
    fig11_memory_access,
    fig12_costmodel_topk,
    fig13_primitive_bandwidth,
    fig14_mirage_pipethreader,
    fig15_ablation,
    fig16_large_llm,
    fig17_e2e_sglang,
    table1_ffn_time,
    table3_pruning,
    table4_partitions,
    table8_search_time,
)

__all__ = [
    "fig4_dsm_bandwidth",
    "fig5_chimera_failure",
    "fig10_subgraph_perf",
    "fig11_memory_access",
    "fig12_costmodel_topk",
    "fig13_primitive_bandwidth",
    "fig14_mirage_pipethreader",
    "fig15_ablation",
    "fig16_large_llm",
    "fig17_e2e_sglang",
    "table1_ffn_time",
    "table3_pruning",
    "table4_partitions",
    "table8_search_time",
]
