"""Figure 5: SMEM-only fusion (Chimera) against the 227 KB capacity wall.

For two-GEMM chains of increasing size, the experiment reports the SMEM an
SMEM-only fuser needs for the intermediate of a (128, N) tile, whether that
fits under the 227 KB per-SM limit, Chimera's relative performance against
PyTorch, and whether FlashFuser (with DSM) still fuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.smem_fusion import ChimeraBaseline
from repro.baselines.unfused import PyTorchBaseline
from repro.experiments.common import format_table
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.builders import build_standard_ffn
from repro.ir.graph import GemmChainSpec
from repro.search.engine import SearchEngine


@dataclass(frozen=True)
class Fig5Workload:
    """One bar of Figure 5: a two-GEMM chain with T=K and the given N."""

    name: str
    t: int
    n: int

    def chain(self, m: int = 128) -> GemmChainSpec:
        _, spec = build_standard_ffn(self.name, m=m, n=self.n, k=self.t, l=self.t)
        return spec


#: The five workloads of Figure 5.
WORKLOADS = (
    Fig5Workload("ViT-Base/14", t=64, n=256),
    Fig5Workload("Mixer-Small", t=64, n=256),
    Fig5Workload("Bert-Small", t=64, n=512),
    Fig5Workload("OPT1_3B", t=2048, n=8192),
    Fig5Workload("GPT6_7B", t=4096, n=16384),
)

#: Per-SM shared memory limit highlighted in the figure.
SMEM_LIMIT_KB = 227


def run(
    workloads: Optional[Sequence[Fig5Workload]] = None,
    m: int = 128,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """Chimera feasibility and relative performance per workload."""
    device = device or h100_spec()
    chimera = ChimeraBaseline(device=device, fallback=True)
    pytorch = PyTorchBaseline(device=device)
    dsm_engine = SearchEngine(device, top_k=3, include_dsm=True)

    rows: List[Dict[str, object]] = []
    for workload in workloads or WORKLOADS:
        chain = workload.chain(m)
        required_kb = chimera.required_smem_bytes(chain) / 1024
        fits = required_kb <= SMEM_LIMIT_KB
        chimera_result = chimera.run(chain)
        torch_result = pytorch.run(chain)
        dsm_feasible = dsm_engine.search(chain).succeeded
        rows.append(
            {
                "workload": workload.name,
                "T=K": workload.t,
                "N": workload.n,
                "intermediate_kb": round(required_kb, 1),
                "fits_smem_227kb": fits,
                "chimera_fused": chimera_result.fused,
                "chimera_vs_torch": round(torch_result.time_us / chimera_result.time_us, 2),
                "flashfuser_fuses": dsm_feasible,
            }
        )
    return rows


def main() -> None:
    """Print Figure 5's data."""
    print("Figure 5: Chimera vs the SMEM capacity wall (M=128)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
