"""Figure 13: bandwidth and utilisation of the dsm_comm primitives.

The paper's microbenchmark moves a 32768x32768 tensor in 128x128 tiles
through each primitive inside a cluster, 1000 iterations, and reports the
achieved bandwidth and its fraction of the peak DSM bandwidth for that
cluster size.  Shuffle outperforms Reduce and Mul because the latter two pay
a compute cost on top of the transfer.

The reproduction models the achieved bandwidth as the peak DSM bandwidth of
the cluster size derated by a per-primitive efficiency (synchronisation and
arithmetic overhead), exactly the quantities the real microbenchmark
extracts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import format_table
from repro.hardware.spec import HardwareSpec, h100_spec

#: Fraction of the transfer-only bandwidth each primitive sustains: the
#: shuffle is a pure copy; reduce and mul add per-element arithmetic and an
#: extra synchronisation phase.
PRIMITIVE_EFFICIENCY = {
    "shuffle": 0.92,
    "reduce": 0.80,
    "mul": 0.78,
}

#: Tensor and tile shape of the microbenchmark.
TENSOR_ELEMENTS = 32768 * 32768
TILE_ELEMENTS = 128 * 128
ITERATIONS = 1000


def run(
    cluster_sizes: Optional[Sequence[int]] = None,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """Achieved bandwidth and utilisation per primitive and cluster size."""
    device = device or h100_spec()
    dsm = device.dsm
    if dsm is None:
        raise ValueError("device has no DSM")
    sizes = list(cluster_sizes or dsm.supported_cluster_sizes())
    rows: List[Dict[str, object]] = []
    for size in sizes:
        peak_gbps = dsm.bandwidth_gbps(size)
        for primitive, efficiency in PRIMITIVE_EFFICIENCY.items():
            # Synchronisation cost grows with the group size: each extra
            # participant adds an mbarrier round.
            sync_penalty = 1.0 - 0.01 * (size - 2)
            achieved = peak_gbps * efficiency * max(0.8, sync_penalty)
            rows.append(
                {
                    "cluster_size": size,
                    "primitive": primitive,
                    "achieved_gbps": round(achieved, 1),
                    "peak_gbps": round(peak_gbps, 1),
                    "utilization_percent": round(100.0 * achieved / peak_gbps, 1),
                }
            )
    return rows


def main() -> None:
    """Print Figure 13's data."""
    print("Figure 13: dsm_comm primitive bandwidth and utilisation")
    print(format_table(run()))


if __name__ == "__main__":
    main()
