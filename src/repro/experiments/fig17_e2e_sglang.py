"""Figure 17: end-to-end inference speedup over an SGLang-style baseline.

For the models behind the S1-S8 and G1-G10 workloads, the serving framework's
FFN kernels are replaced with FlashFuser's fused kernels and the end-to-end
latency compared; the paper reports an average improvement of ~1.32x for the
subgraph-suite models and ~1.24x over all scenarios.

The fused kernels come from the graph compiler: each model's FFN block is an
operator graph whose chains are extracted and compiled by
:func:`repro.graphs.compile_graph` (see
:class:`~repro.models.inference.InferenceLatencyModel`), and every row
reports how many chains were extracted and how the compile resolved
(fresh search vs plan cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import format_table, geometric_mean
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.models.inference import E2EConfig, InferenceLatencyModel

#: (workload id, model name) pairs evaluated end to end.
WORKLOAD_MODELS: Tuple[Tuple[str, str], ...] = (
    ("S1", "llama-3.2-3B"),
    ("S2", "LLaMA-1B"),
    ("S3", "Llama-2-7b"),
    ("S4", "Qwen2.5-3B"),
    ("S5", "Qwen2.5-3B"),
    ("S6", "Qwen2.5-1.5B"),
    ("S7", "Qwen3-4B"),
    ("S8", "Qwen3-0.6B"),
    ("G4", "GPT-2-Small"),
    ("G5", "GPT-6.7B"),
    ("G8", "OPT-1.3B"),
    ("G10", "BERT"),
)


def run(
    workload_models: Sequence[Tuple[str, str]] = WORKLOAD_MODELS,
    seq_len: int = 512,
    batch: int = 1,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """End-to-end speedup per workload/model pair."""
    device = device or h100_spec()
    rows: List[Dict[str, object]] = []
    with InferenceLatencyModel(device=device) as latency_model:
        for workload_id, model_name in workload_models:
            result = latency_model.evaluate(
                E2EConfig(model_name=model_name, seq_len=seq_len, batch=batch)
            )
            plan = result.ffn_plan
            rows.append(
                {
                    "workload": workload_id,
                    "model": model_name,
                    "baseline_ms": round(result.baseline_ms, 2),
                    "flashfuser_ms": round(result.flashfuser_ms, 2),
                    "ffn_fraction_percent": round(result.ffn_time_fraction * 100, 1),
                    "e2e_speedup": round(result.e2e_speedup, 3),
                    "fused_chains": result.fused_chains,
                    "ffn_compile": (
                        "cache" if plan is not None and plan.cache_hits else "search"
                    ),
                }
            )
    return rows


def summarize(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Average end-to-end speedup."""
    return {
        "mean_e2e_speedup": round(
            geometric_mean([float(r["e2e_speedup"]) for r in rows]), 3
        )
    }


def main() -> None:
    """Print Figure 17's data."""
    rows = run()
    print("Figure 17: end-to-end speedup over the SGLang-style baseline")
    print(format_table(rows))
    print()
    print(summarize(rows))


if __name__ == "__main__":
    main()
