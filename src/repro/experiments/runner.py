"""Run every experiment and print the full evaluation.

``python -m repro.experiments.runner`` regenerates every table and figure of
the paper's evaluation section in one go (this takes several minutes because
Figure 10 searches all 26 workloads); ``--quick`` restricts the sweeps to a
representative subset.
"""

from __future__ import annotations

import argparse
import inspect
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    fig4_dsm_bandwidth,
    fig5_chimera_failure,
    fig10_subgraph_perf,
    fig11_memory_access,
    fig12_costmodel_topk,
    fig13_primitive_bandwidth,
    fig14_mirage_pipethreader,
    fig15_ablation,
    fig16_large_llm,
    fig17_e2e_sglang,
    table1_ffn_time,
    table3_pruning,
    table4_partitions,
    table8_search_time,
)

#: Experiments in the order the paper presents them.
ALL_EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": table1_ffn_time.main,
    "fig4": fig4_dsm_bandwidth.main,
    "fig5": fig5_chimera_failure.main,
    "table3": table3_pruning.main,
    "table4": table4_partitions.main,
    "fig10": fig10_subgraph_perf.main,
    "fig11": fig11_memory_access.main,
    "fig12": fig12_costmodel_topk.main,
    "table8": table8_search_time.main,
    "fig13": fig13_primitive_bandwidth.main,
    "fig14": fig14_mirage_pipethreader.main,
    "fig15": fig15_ablation.main,
    "fig16": fig16_large_llm.main,
    "fig17": fig17_e2e_sglang.main,
}

#: Fast subset used by --quick.
QUICK_EXPERIMENTS = ("table1", "fig4", "table4", "fig13", "fig11", "fig17")


def run_all(names: List[str], device: Optional[str] = None) -> None:
    """Run the named experiments, timing each.

    ``device`` is a registered device name (``h100``, ``a100``, ...) passed
    to every experiment whose driver accepts one; hardware-agnostic drivers
    (and those pinned to the paper's platform) run unchanged.
    """
    for name in names:
        if name not in ALL_EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {list(ALL_EXPERIMENTS)}")
        experiment = ALL_EXPERIMENTS[name]
        kwargs = {}
        if device is not None and "device" in inspect.signature(experiment).parameters:
            kwargs["device"] = device
        print("=" * 78)
        start = time.perf_counter()
        experiment(**kwargs)
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]")
        print()


def main() -> None:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="FlashFuser reproduction experiments")
    parser.add_argument("experiments", nargs="*", help="experiment names (default: all)")
    parser.add_argument("--quick", action="store_true", help="run the fast subset only")
    parser.add_argument(
        "--device",
        default=None,
        help="registered device name to compile for (e.g. h100, a100)",
    )
    args = parser.parse_args()
    if args.experiments:
        names = args.experiments
    elif args.quick:
        names = list(QUICK_EXPERIMENTS)
    else:
        names = list(ALL_EXPERIMENTS)
    run_all(names, device=args.device)


if __name__ == "__main__":
    main()
