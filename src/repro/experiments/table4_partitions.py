"""Table IV: spatial/temporal partitions of the four loop dimensions.

With ``s`` of the four dimensions spatial there are ``C(4, s) * (4-s)!``
schedules (spatial set unordered, temporal nest ordered), 41 in total.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.loop_schedule import (
    count_schedules,
    enumerate_schedules,
    iter_schedule_table,
)
from repro.experiments.common import format_table


def run() -> List[Dict[str, object]]:
    """Schedule counts per number of spatial dimensions."""
    enumerated = enumerate_schedules()
    rows: List[Dict[str, object]] = []
    for num_spatial, count in iter_schedule_table():
        actual = sum(1 for s in enumerated if s.num_spatial == num_spatial)
        rows.append(
            {
                "num_spatial_dims": num_spatial,
                "num_schedules": count,
                "enumerated": actual,
            }
        )
    rows.append(
        {
            "num_spatial_dims": "total",
            "num_schedules": count_schedules(),
            "enumerated": len(enumerated),
        }
    )
    return rows


def main() -> None:
    """Print Table IV."""
    print("Table IV: spatial/temporal partition counts")
    print(format_table(run()))


if __name__ == "__main__":
    main()
