"""Figure 10: subgraph performance against libraries and compilers.

For each workload of the GEMM (G1-G10), convolution (C1-C8) and gated-FFN
(S1-S8) suites, the experiment runs every baseline and FlashFuser and reports
latencies plus speedups normalised the way the paper normalises (to PyTorch),
together with the FlashFuser-vs-baseline speedups the abstract quotes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import make_baseline
from repro.experiments.common import (
    CONV_SUITE,
    GATED_SUITE,
    GEMM_SUITE,
    CompilerCache,
    DeviceLike,
    chain_for,
    format_table,
    geometric_mean,
)

#: Baselines shown in Figure 10.
FIGURE10_BASELINES = ("bolt", "chimera", "relay", "taso", "tensorrt", "pytorch")


def run(
    workloads: Optional[Sequence[str]] = None,
    baselines: Sequence[str] = FIGURE10_BASELINES,
    device: DeviceLike = None,
    compiler_cache: Optional[CompilerCache] = None,
) -> List[Dict[str, object]]:
    """Latency of FlashFuser and each baseline per workload."""
    workloads = list(workloads or (*GEMM_SUITE, *CONV_SUITE, *GATED_SUITE))
    cache = compiler_cache or CompilerCache(device=device)
    baseline_objects = {name: make_baseline(name, device=cache.device) for name in baselines}

    rows: List[Dict[str, object]] = []
    for workload_id in workloads:
        chain = chain_for(workload_id)
        compiled = cache.get(workload_id)
        row: Dict[str, object] = {
            "workload": workload_id,
            "flashfuser_us": round(compiled.time_us, 2),
        }
        for name, baseline in baseline_objects.items():
            result = baseline.run(chain)
            row[f"{name}_us"] = round(result.time_us, 2)
            row[f"speedup_vs_{name}"] = round(result.time_us / compiled.time_us, 2)
        rows.append(row)
    return rows


def summarize(rows: List[Dict[str, object]], baselines: Sequence[str] = FIGURE10_BASELINES) -> Dict[str, float]:
    """Geometric-mean FlashFuser speedup over each baseline."""
    summary: Dict[str, float] = {}
    for name in baselines:
        key = f"speedup_vs_{name}"
        summary[name] = round(
            geometric_mean([float(row[key]) for row in rows if key in row]), 2
        )
    return summary


def main(device: DeviceLike = None) -> None:
    """Print Figure 10's data and the average speedups."""
    rows = run(device=device)
    print("Figure 10: subgraph performance (latencies in us)")
    print(format_table(rows))
    print()
    print("Average (geomean) FlashFuser speedups:")
    for name, value in summarize(rows).items():
        print(f"  vs {name:<10} {value:.2f}x")


if __name__ == "__main__":
    main()
