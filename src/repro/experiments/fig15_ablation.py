"""Figure 15: ablation of the three components.

Four configurations relative to a no-fusion baseline:

* ``All`` — the full system (dsm_comm + dataflow analyzer + search engine),
* ``DC+DA`` — DSM fusion with a *random* legal configuration instead of the
  cost-model-selected one (search engine removed),
* ``DA`` — fusion restricted to SMEM/global memory (dsm_comm removed),
* ``No Fusion`` — the unfused baseline itself (speedup 1.0 by definition).

The paper reports average speedups of roughly 3.3x / 2.1x / 1.5x for the
first three.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.baselines.unfused import PyTorchBaseline
from repro.dataflow.analyzer import DataflowAnalyzer
from repro.experiments.common import (
    CONV_SUITE,
    GEMM_SUITE,
    CompilerCache,
    DeviceLike,
    chain_for,
    format_table,
    geometric_mean,
)
from repro.hardware.registry import get_device
from repro.search.engine import SearchEngine
from repro.search.pruning import Pruner
from repro.search.space import SearchSpace
from repro.sim.engine import PerformanceSimulator


def _random_dsm_plan_time(
    chain, device, simulator, seed: int = 0, max_feasible: int = 1500
) -> Optional[float]:
    """Time of a randomly chosen legal DSM-fusion candidate (DC+DA).

    The candidate is drawn by reservoir sampling over the feasible stream so
    the choice is representative of the whole legal space rather than of the
    enumeration order; only the analysis of at most ``max_feasible`` feasible
    candidates is paid.
    """
    space = SearchSpace(device)
    pruner = Pruner(device, include_dsm=True)
    analyzer = DataflowAnalyzer(device, include_dsm=True)
    rng = random.Random(seed)
    chosen = None
    seen = 0
    for candidate in space.candidates(chain):
        if not pruner.passes(candidate):
            continue
        result = analyzer.analyze(
            chain, candidate.schedule, candidate.tile, candidate.geometry,
            gated_sequential=candidate.gated_sequential,
        )
        if not result.feasible:
            continue
        seen += 1
        if rng.random() < 1.0 / seen:
            chosen = result
        if seen >= max_feasible:
            break
    if chosen is None:
        return None
    return simulator.simulate_plan(chosen).time_us


def _smem_only_time(chain, device, simulator) -> Optional[float]:
    """Time of the best SMEM/global-only fusion (DA, no dsm_comm)."""
    engine = SearchEngine(
        device,
        top_k=5,
        include_dsm=False,
        profiler=simulator.profile,
        space=SearchSpace(device, include_clusters=False),
        require_feasible=False,
    )
    result = engine.search(chain)
    if result.best is None:
        return None
    return result.best.best_known_time_us


def run(
    workloads: Optional[Sequence[str]] = None,
    device: DeviceLike = None,
    compiler_cache: Optional[CompilerCache] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Speedup over no-fusion for All / DC+DA / DA per workload."""
    workloads = list(workloads or (*CONV_SUITE, *GEMM_SUITE))
    cache = compiler_cache or CompilerCache(device=device)
    device = cache.device if device is None else get_device(device)
    simulator = PerformanceSimulator(device)
    no_fusion = PyTorchBaseline(device=device)

    rows: List[Dict[str, object]] = []
    for workload_id in workloads:
        chain = chain_for(workload_id)
        baseline_us = no_fusion.run(chain).time_us
        all_us = cache.get(workload_id).time_us
        dcda_us = _random_dsm_plan_time(chain, device, simulator, seed=seed)
        da_us = _smem_only_time(chain, device, simulator)
        rows.append(
            {
                "workload": workload_id,
                "no_fusion_us": round(baseline_us, 2),
                "speedup_all": round(baseline_us / all_us, 2),
                "speedup_dc_da": round(baseline_us / dcda_us, 2) if dcda_us else None,
                "speedup_da": round(baseline_us / da_us, 2) if da_us else None,
            }
        )
    return rows


def summarize(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geometric-mean speedups of the three ablation configurations."""
    def collect(key: str) -> List[float]:
        return [float(r[key]) for r in rows if r.get(key)]

    return {
        "all": round(geometric_mean(collect("speedup_all")), 2),
        "dc_da": round(geometric_mean(collect("speedup_dc_da")), 2),
        "da": round(geometric_mean(collect("speedup_da")), 2),
    }


def main(device: DeviceLike = None) -> None:
    """Print Figure 15's data."""
    rows = run(device=device)
    print("Figure 15: ablation study (speedup over no-fusion)")
    print(format_table(rows))
    print()
    print(summarize(rows))


if __name__ == "__main__":
    main()
