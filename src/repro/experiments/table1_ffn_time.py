"""Table I: percentage of execution time spent in FFN layers.

The paper profiles several models at sequence length 512 and finds the FFN
consuming roughly 40-60 % of the execution time; this driver reproduces the
table with the transformer timing model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import format_table
from repro.hardware.spec import HardwareSpec
from repro.ir.workloads import get_model
from repro.models.transformer import TransformerTimingModel

#: Models and the FFN share the paper reports (percent).
PAPER_FFN_SHARE = {
    "GPT-6.7B": 61.28,
    "LLaMA-1B": 57.44,
    "OPT-1.3B": 53.08,
    "BERT": 47.03,
    "GPT-2": 41.64,
}


def run(
    models: Optional[Sequence[str]] = None,
    seq_len: int = 512,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """Compute the FFN time share for each model."""
    rows: List[Dict[str, object]] = []
    for name in models or PAPER_FFN_SHARE:
        model = get_model(name)
        timing = TransformerTimingModel(model, device=device)
        measured = timing.ffn_time_percentage(seq_len)
        rows.append(
            {
                "model": name,
                "ffn_time_percent": round(measured, 2),
                "paper_percent": PAPER_FFN_SHARE.get(name),
            }
        )
    return rows


def main() -> None:
    """Print Table I."""
    print("Table I: FFN share of execution time (seq_len=512)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
