"""Table III: how the pruning cascade shrinks the search space.

The paper counts candidates for a GPT-6.7B-sized problem
(M=256, N=16384, K=L=4096): the unpruned space holds ~2.75e13 points, Rule 1
(divisible tiles) removes >99.99 %, and Rules 2-5 cut the remainder to ~1e6.

Enumerating 1e13 candidates is obviously impossible, so the counts are
computed with the same factorisation the paper uses: schedules x cluster
shapes are enumerated exactly, and the tile dimensions that a rule does not
constrain contribute a closed-form factor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dataflow.footprint import reused_tensor_footprint
from repro.dataflow.loop_schedule import count_schedules, enumerate_schedules
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.experiments.common import format_table
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.builders import build_standard_ffn
from repro.ir.graph import GemmChainSpec
from repro.search.pruning import Pruner, PruningRule
from repro.search.space import FusionCandidate, initial_space_size

#: Paper's candidate counts for reference.
PAPER_COUNTS = {
    "original": 2.75e13,
    "rule1": 1.14e8,
    "rule2": 2.47e7,
    "rule3": 1.44e7,
    "rule4": 9.62e6,
    "rule5": 1.15e6,
}


def gpt_6_7b_chain(m: int = 256) -> GemmChainSpec:
    """The GPT-6.7B FFN problem used for the pruning analysis."""
    _, spec = build_standard_ffn("GPT-6.7B-prune", m=m, n=16384, k=4096, l=4096)
    return spec


def _divisor_tiles(extent: int, mma: int = 16) -> List[int]:
    """MMA-granular tile sizes that divide ``extent`` exactly."""
    return [t for t in range(mma, extent + 1, mma) if extent % t == 0]


def run(
    chain: Optional[GemmChainSpec] = None,
    device: Optional[HardwareSpec] = None,
    mma: int = 16,
) -> List[Dict[str, object]]:
    """Candidate counts after each pruning rule."""
    device = device or h100_spec()
    chain = chain or gpt_6_7b_chain()
    pruner = Pruner(device)
    sizes = chain.dimension_sizes()
    tile_options = {dim: _divisor_tiles(extent, mma) for dim, extent in sizes.items()}
    raw_cluster_count = len(device.cluster_limits.allowed_dim_sizes) ** 4

    schedules = enumerate_schedules()
    geometries = list(ClusterGeometry.enumerate(device.cluster_limits, validate=False))

    counts = {
        "original": initial_space_size(chain, device, mma=mma),
        # Rule 1 constrains only the tile sizes; schedules and raw cluster
        # shapes are unaffected.
        "rule1": float(count_schedules())
        * raw_cluster_count
        * _product(len(tile_options[d]) for d in sizes),
    }

    # Rules 2-5 are counted by enumerating (schedule, geometry) pairs exactly
    # and multiplying by the number of tile choices each pair admits.  Rules
    # 3-5 constrain at most the (m, n, k, l) tile dimensions individually, so
    # the per-pair tile count factorises.
    rule_totals = {PruningRule.CLUSTER_SIZE: 0.0, PruningRule.ACTIVATION: 0.0,
                   PruningRule.DEPENDENCY: 0.0, PruningRule.MEMORY_CAPACITY: 0.0}
    for schedule in schedules:
        for geometry in geometries:
            base_tiles = _product(len(tile_options[d]) for d in sizes)
            if not pruner.rule2_cluster_size(_candidate(chain, schedule, geometry)):
                continue
            rule_totals[PruningRule.CLUSTER_SIZE] += base_tiles

            k_tiles = _passing_tiles(
                chain, schedule, geometry, pruner, tile_options, rule="rule3"
            )
            if k_tiles == 0:
                continue
            rule_totals[PruningRule.ACTIVATION] += k_tiles

            l_tiles = _passing_tiles(
                chain, schedule, geometry, pruner, tile_options, rule="rule4"
            )
            if l_tiles == 0:
                continue
            rule_totals[PruningRule.DEPENDENCY] += l_tiles

            cap_tiles = _passing_tiles(
                chain, schedule, geometry, pruner, tile_options, rule="rule5"
            )
            rule_totals[PruningRule.MEMORY_CAPACITY] += cap_tiles

    counts["rule2"] = rule_totals[PruningRule.CLUSTER_SIZE]
    counts["rule3"] = rule_totals[PruningRule.ACTIVATION]
    counts["rule4"] = rule_totals[PruningRule.DEPENDENCY]
    counts["rule5"] = rule_totals[PruningRule.MEMORY_CAPACITY]

    rows: List[Dict[str, object]] = []
    previous = None
    for step, key in [
        ("Original Space", "original"),
        ("+ Rule 1 (divisible tiles)", "rule1"),
        ("+ Rule 2 (cluster size)", "rule2"),
        ("+ Rule 3 (activation)", "rule3"),
        ("+ Rule 4 (dependency)", "rule4"),
        ("+ Rule 5 (memory capacity)", "rule5"),
    ]:
        count = counts[key]
        reduction = 0.0 if previous in (None, 0) else (1.0 - count / previous) * 100.0
        rows.append(
            {
                "pruning_step": step,
                "candidates": f"{count:.3g}",
                "reduction_percent": round(reduction, 2),
                "paper_candidates": f"{PAPER_COUNTS[key]:.3g}",
            }
        )
        previous = count
    return rows


# ------------------------------------------------------------------------- #
# Helpers
# ------------------------------------------------------------------------- #
def _product(values) -> float:
    result = 1.0
    for value in values:
        result *= value
    return result


def _candidate(chain, schedule, geometry, tile: Optional[TileConfig] = None):
    tile = tile or TileConfig(16, 16, 16, 16)
    return FusionCandidate(chain=chain, schedule=schedule, tile=tile, geometry=geometry)


def _passing_tiles(chain, schedule, geometry, pruner, tile_options, rule: str) -> float:
    """Tile combinations surviving up to and including ``rule``.

    Rule 3 constrains only the k tile, Rule 4 only the l tile, and Rule 5
    only the tiles entering the reused-tensor footprint (m, and n or l);
    the untouched dimensions contribute their full option counts.
    """
    sizes = chain.dimension_sizes()
    if rule == "rule3":
        if schedule.is_temporal("k"):
            passing_k = len(tile_options["k"]) if schedule.innermost() == "k" else 0
        else:
            passing_k = sum(
                1 for t in tile_options["k"] if t * geometry.cls_k >= sizes["k"]
            )
        return passing_k * _product(len(tile_options[d]) for d in ("m", "n", "l"))

    # Rules 4 and 5 build on rule 3's k filtering.
    if schedule.is_temporal("k"):
        k_count = len(tile_options["k"]) if schedule.innermost() == "k" else 0
    else:
        k_count = sum(1 for t in tile_options["k"] if t * geometry.cls_k >= sizes["k"])
    if k_count == 0:
        return 0.0

    if schedule.is_spatial("l"):
        l_options = [t for t in tile_options["l"] if t * geometry.cls_l >= sizes["l"]]
    else:
        l_options = list(tile_options["l"])
    if rule == "rule4":
        return k_count * len(l_options) * _product(len(tile_options[d]) for d in ("m", "n"))

    # Rule 5: enumerate the (m, n, l) tiles that keep the reused tensor under
    # the on-chip budget; the footprint never depends on the k tile.
    on_chip = pruner._on_chip_capacity(
        geometry.blocks_per_cluster if pruner.include_dsm else 1,
        pruner.include_dsm and geometry.uses_dsm,
    )
    count = 0
    for m_tile in tile_options["m"]:
        for n_tile in tile_options["n"]:
            for l_tile in l_options:
                tile = TileConfig(m_tile, n_tile, 16, l_tile)
                reused = reused_tensor_footprint(chain, schedule, tile, geometry)
                if reused.footprint_bytes <= on_chip:
                    count += 1
    return count * k_count


def main() -> None:
    """Print Table III."""
    print("Table III: pruning cascade for GPT-6.7B (M=256, N=16384, K=L=4096)")
    print(format_table(run()))


if __name__ == "__main__":
    main()
