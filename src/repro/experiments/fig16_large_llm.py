"""Figure 16: roofline analysis and end-to-end speedup for larger LLMs.

Part (a) places the FFN kernels of Llama3-70B and Qwen2.5-14B/32B on the
roofline as the batched token count (M) grows from 256 to 8k: arithmetic
intensity rises with M, pushing the kernels into the compute-bound regime
where kernel-level fusion has less headroom.  Part (b) sweeps batch size 1-32
at sequence length 256 and reports the end-to-end speedup, which the paper
finds averaging ~1.16x for these large models (1.24x across all scenarios).
The fused FFN kernels of part (b) are produced by the graph compiler
(:func:`repro.graphs.compile_graph`) via the inference latency model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import format_table, geometric_mean
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.workloads import get_model
from repro.models.inference import E2EConfig, InferenceLatencyModel
from repro.models.roofline import ridge_point, roofline_analysis

#: Models of Figure 16.
LARGE_MODELS = ("Llama3-70B", "Qwen2.5-32B", "Qwen2.5-14B")
#: Token counts (M) of the roofline sweep.
ROOFLINE_TOKENS = (256, 512, 1024, 2048, 4096, 8192)
#: Batch sizes of the end-to-end sweep at sequence length 256.
BATCH_SIZES = (1, 2, 4, 8, 16, 32)


def run_roofline(
    models: Sequence[str] = LARGE_MODELS,
    token_counts: Sequence[int] = ROOFLINE_TOKENS,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """Figure 16a: FFN arithmetic intensity and attainable TFLOPS vs M."""
    device = device or h100_spec()
    ridge = ridge_point(device)
    rows: List[Dict[str, object]] = []
    for model_name in models:
        model = get_model(model_name)
        chains = [model.ffn_chain(seq_len=tokens) for tokens in token_counts]
        for tokens, point in zip(token_counts, roofline_analysis(chains, device)):
            rows.append(
                {
                    "model": model_name,
                    "tokens_m": tokens,
                    "arithmetic_intensity": round(point.arithmetic_intensity, 1),
                    "attainable_tflops": round(point.attainable_tflops, 1),
                    "compute_bound": point.compute_bound,
                    "ridge_point": round(ridge, 1),
                }
            )
    return rows


def run_e2e(
    models: Sequence[str] = LARGE_MODELS,
    batch_sizes: Sequence[int] = BATCH_SIZES,
    seq_len: int = 256,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """Figure 16b: end-to-end speedup vs batch size."""
    device = device or h100_spec()
    rows: List[Dict[str, object]] = []
    with InferenceLatencyModel(device=device) as latency_model:
        for model_name in models:
            for batch in batch_sizes:
                result = latency_model.evaluate(
                    E2EConfig(model_name=model_name, seq_len=seq_len, batch=batch)
                )
                rows.append(
                    {
                        "model": model_name,
                        "batch": batch,
                        "baseline_ms": round(result.baseline_ms, 2),
                        "flashfuser_ms": round(result.flashfuser_ms, 2),
                        "ffn_kernel_speedup": round(result.ffn_kernel_speedup, 2),
                        "e2e_speedup": round(result.e2e_speedup, 3),
                        "fused_chains": result.fused_chains,
                    }
                )
    return rows


def run(device: Optional[HardwareSpec] = None) -> Dict[str, List[Dict[str, object]]]:
    """Both panels of Figure 16."""
    return {"roofline": run_roofline(device=device), "e2e": run_e2e(device=device)}


def summarize(e2e_rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Average kernel and end-to-end speedups for the large models."""
    return {
        "mean_kernel_speedup": round(
            geometric_mean([float(r["ffn_kernel_speedup"]) for r in e2e_rows]), 2
        ),
        "mean_e2e_speedup": round(
            geometric_mean([float(r["e2e_speedup"]) for r in e2e_rows]), 3
        ),
    }


def main() -> None:
    """Print Figure 16's data."""
    results = run()
    print("Figure 16a: roofline analysis of large-model FFNs")
    print(format_table(results["roofline"]))
    print()
    print("Figure 16b: end-to-end speedup (seq 256, batch 1-32)")
    print(format_table(results["e2e"]))
    print()
    print(summarize(results["e2e"]))


if __name__ == "__main__":
    main()
