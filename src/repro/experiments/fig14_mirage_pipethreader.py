"""Figure 14: FlashFuser versus Mirage and PipeThreader on gated FFNs.

Mirage stands for hand-written cluster kernels with fixed geometry;
PipeThreader for tile-granular inter-kernel pipelining without fusion.  The
paper finds FlashFuser ahead of both on the S1-S8 gated-FFN suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import make_baseline
from repro.experiments.common import (
    GATED_SUITE,
    CompilerCache,
    DeviceLike,
    chain_for,
    format_table,
    geometric_mean,
)


def run(
    workloads: Optional[Sequence[str]] = None,
    device: DeviceLike = None,
    compiler_cache: Optional[CompilerCache] = None,
) -> List[Dict[str, object]]:
    """FlashFuser speedup over Mirage and PipeThreader per workload."""
    workloads = list(workloads or GATED_SUITE)
    cache = compiler_cache or CompilerCache(device=device)
    mirage = make_baseline("mirage", device=cache.device)
    pipethreader = make_baseline("pipethreader", device=cache.device)

    rows: List[Dict[str, object]] = []
    for workload_id in workloads:
        chain = chain_for(workload_id)
        compiled = cache.get(workload_id)
        mirage_result = mirage.run(chain)
        pipe_result = pipethreader.run(chain)
        rows.append(
            {
                "workload": workload_id,
                "flashfuser_us": round(compiled.time_us, 2),
                "mirage_us": round(mirage_result.time_us, 2),
                "pipethreader_us": round(pipe_result.time_us, 2),
                "speedup_vs_mirage": round(mirage_result.time_us / compiled.time_us, 2),
                "speedup_vs_pipethreader": round(pipe_result.time_us / compiled.time_us, 2),
            }
        )
    return rows


def summarize(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geometric-mean speedups over the two systems."""
    return {
        "vs_mirage": round(
            geometric_mean([float(r["speedup_vs_mirage"]) for r in rows]), 2
        ),
        "vs_pipethreader": round(
            geometric_mean([float(r["speedup_vs_pipethreader"]) for r in rows]), 2
        ),
    }


def main(device: DeviceLike = None) -> None:
    """Print Figure 14's data."""
    rows = run(device=device)
    print("Figure 14: FlashFuser vs Mirage and PipeThreader (gated FFNs)")
    print(format_table(rows))
    print()
    print(summarize(rows))


if __name__ == "__main__":
    main()
