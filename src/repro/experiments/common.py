"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.api import CompiledKernel, FlashFuser
from repro.config import FuserConfig
from repro.hardware.spec import HardwareSpec
from repro.ir.graph import GemmChainSpec
from repro.ir.workloads import get_workload

#: Default workload suites of Figure 10.
GEMM_SUITE = tuple(f"G{i}" for i in range(1, 11))
CONV_SUITE = tuple(f"C{i}" for i in range(1, 9))
GATED_SUITE = tuple(f"S{i}" for i in range(1, 9))

#: A device argument anywhere in the experiment layer: a spec, a registered
#: name (``"h100"``, ``"a100"``, or anything added via ``register_device``),
#: or ``None`` for the config default.
DeviceLike = Union[str, HardwareSpec, None]


def fuser_from_config(
    config: Optional[FuserConfig] = None, **overrides
) -> FlashFuser:
    """The one place experiment drivers construct a :class:`FlashFuser`.

    Drivers and the shared :class:`CompilerCache` route through this helper
    so every figure/table honours the same :class:`FuserConfig` (including
    registry device names from a ``--device`` flag) instead of re-assembling
    compilers ad hoc.
    """
    return FlashFuser(config, **overrides)


class CompilerCache:
    """Compile each workload at most once across experiments."""

    def __init__(
        self,
        device: DeviceLike = None,
        config: Optional[FuserConfig] = None,
        **kwargs,
    ) -> None:
        base = config or FuserConfig()
        if device is not None:
            base = base.replace(device=device)
        self.compiler = fuser_from_config(base, **kwargs)
        self.config = self.compiler.config
        self.device = self.compiler.device
        self._cache: Dict[str, CompiledKernel] = {}

    def get(self, workload_id: str) -> CompiledKernel:
        """Compiled kernel for one workload id (cached)."""
        if workload_id not in self._cache:
            self._cache[workload_id] = self.compiler.compile(chain_for(workload_id))
        return self._cache[workload_id]

    def get_chain(self, chain: GemmChainSpec) -> CompiledKernel:
        """Compiled kernel for an explicit chain spec (cached by name+M)."""
        key = f"{chain.name}:{chain.m}"
        if key not in self._cache:
            self._cache[key] = self.compiler.compile(chain)
        return self._cache[key]


def chain_for(workload_id: str) -> GemmChainSpec:
    """The canonical chain spec of one workload id."""
    return get_workload(workload_id).to_spec()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, tolerating the empty sequence."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def format_table(rows: List[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
