"""Table VIII: search-engine compilation time versus brute force.

The brute-force strategy profiles every legal candidate; the search engine
analyses candidates with the cost model and profiles only the top-K, which
the paper measures as 12-68x faster compilation for G3-G5.  In the
reproduction "profiling" is a simulator call plus a configurable per-kernel
compile-and-measure overhead representing the nvcc + on-device measurement
cost that dominates real brute-force search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import chain_for, format_table
from repro.hardware.spec import HardwareSpec, h100_spec
from repro.search.brute_force import BruteForceSearch
from repro.search.engine import SearchEngine
from repro.search.space import SearchSpace
from repro.sim.engine import PerformanceSimulator

#: Workloads of Table VIII.
WORKLOADS = ("G3", "G4", "G5")

#: Seconds of compile + on-device measurement charged per profiled candidate.
#: The paper's brute force takes hours because every candidate is compiled
#: with nvcc and measured; the search engine only pays this for the top-K.
PROFILING_OVERHEAD_S = 2.0


def run(
    workloads: Sequence[str] = WORKLOADS,
    device: Optional[HardwareSpec] = None,
    top_k: int = 11,
    profiling_overhead_s: float = PROFILING_OVERHEAD_S,
    max_brute_force_candidates: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Search time of brute force vs the search engine per workload."""
    device = device or h100_spec()
    simulator = PerformanceSimulator(device)
    rows: List[Dict[str, object]] = []
    for workload_id in workloads:
        chain = chain_for(workload_id)

        engine = SearchEngine(
            device, top_k=top_k, profiler=simulator.profile, space=SearchSpace(device)
        )
        engine_result = engine.search(chain)
        engine_time = engine_result.search_time_s + top_k * profiling_overhead_s

        brute = BruteForceSearch(
            device,
            profiler=simulator.profile,
            space=SearchSpace(device),
            profiling_overhead_s=profiling_overhead_s,
            max_candidates=max_brute_force_candidates,
        )
        brute_result = brute.search(chain)

        rows.append(
            {
                "workload": workload_id,
                "brute_force_s": round(brute_result.search_time_s, 1),
                "brute_force_candidates": brute_result.candidates_profiled,
                "search_engine_s": round(engine_time, 1),
                "speedup": round(brute_result.search_time_s / engine_time, 2)
                if engine_time > 0
                else float("inf"),
                "same_plan_quality": _same_quality(engine_result, brute_result),
            }
        )
    return rows


def _same_quality(engine_result, brute_result) -> bool:
    """Whether the engine's plan is within 10 % of the brute-force optimum."""
    if engine_result.best is None or brute_result.best is None:
        return False
    engine_time = engine_result.best.best_known_time_us
    brute_time = brute_result.best.best_known_time_us
    return engine_time <= 1.10 * brute_time


def main() -> None:
    """Print Table VIII."""
    print("Table VIII: search time, brute force vs search engine")
    print(format_table(run()))


if __name__ == "__main__":
    main()
