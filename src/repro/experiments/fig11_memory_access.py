"""Figure 11: global memory access of FlashFuser versus PyTorch.

The paper profiles both systems with Nsight Compute and finds PyTorch moving
about 2.4x more global-memory data on average, a ~58 % reduction.  The
reproduction derives the same quantities from the analytical traffic models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    CONV_SUITE,
    GEMM_SUITE,
    CompilerCache,
    DeviceLike,
    chain_for,
    format_table,
    geometric_mean,
)
from repro.sim.profiler import MemoryProfiler


def run(
    workloads: Optional[Sequence[str]] = None,
    device: DeviceLike = None,
    compiler_cache: Optional[CompilerCache] = None,
) -> List[Dict[str, object]]:
    """Global traffic of unfused (PyTorch) vs fused (FlashFuser) execution."""
    workloads = list(workloads or (*GEMM_SUITE, *CONV_SUITE))
    cache = compiler_cache or CompilerCache(device=device)
    profiler = MemoryProfiler()

    rows: List[Dict[str, object]] = []
    for workload_id in workloads:
        chain = chain_for(workload_id)
        compiled = cache.get(workload_id)
        unfused = profiler.profile_unfused(chain)
        # The compiled kernel carries its fused traffic report; using it
        # (rather than re-profiling the search result) also works for
        # kernels served by the runtime plan cache, which persist the
        # traffic but not the full search state.
        fused = compiled.traffic
        ratio = unfused.total_bytes / fused.total_bytes
        rows.append(
            {
                "workload": workload_id,
                "pytorch_mb": round(unfused.total_bytes / 1e6, 2),
                "flashfuser_mb": round(fused.total_bytes / 1e6, 2),
                "traffic_ratio": round(ratio, 2),
                "reduction_percent": round((1 - 1 / ratio) * 100, 1),
            }
        )
    return rows


def summarize(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Average traffic ratio and reduction across workloads."""
    ratios = [float(row["traffic_ratio"]) for row in rows]
    mean_ratio = geometric_mean(ratios)
    return {
        "mean_traffic_ratio": round(mean_ratio, 2),
        "mean_reduction_percent": round((1 - 1 / mean_ratio) * 100, 1) if mean_ratio else 0.0,
    }


def main(device: DeviceLike = None) -> None:
    """Print Figure 11's data."""
    rows = run(device=device)
    print("Figure 11: global memory access, PyTorch vs FlashFuser")
    print(format_table(rows))
    print()
    print(summarize(rows))


if __name__ == "__main__":
    main()
