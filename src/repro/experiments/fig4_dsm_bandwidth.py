"""Figure 4: DSM bandwidth and latency versus cluster size.

Bandwidth decreases and latency increases with the cluster size, yet DSM
remains faster than global memory for every cluster size the hardware
supports (except that the largest cluster's bandwidth approaches HBM's).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import format_table
from repro.hardware.dsm import DsmModel
from repro.hardware.spec import HardwareSpec, h100_spec


def run(
    cluster_sizes: Optional[Sequence[int]] = None,
    device: Optional[HardwareSpec] = None,
) -> List[Dict[str, object]]:
    """DSM bandwidth/latency per cluster size, with global memory for scale."""
    device = device or h100_spec()
    dsm: DsmModel = device.dsm or DsmModel()
    sizes = list(cluster_sizes or dsm.supported_cluster_sizes())
    rows: List[Dict[str, object]] = []
    for size in sizes:
        rows.append(
            {
                "cluster_size": size,
                "dsm_bandwidth_tbps": round(dsm.bandwidth(size), 3),
                "dsm_latency_cycles": round(dsm.latency(size), 1),
                "bandwidth_vs_global": round(dsm.speedup_vs_global(size), 2),
                "latency_vs_global": round(dsm.latency_advantage_vs_global(size), 2),
            }
        )
    rows.append(
        {
            "cluster_size": "global",
            "dsm_bandwidth_tbps": dsm.global_bandwidth_tbps,
            "dsm_latency_cycles": dsm.global_latency_cycles,
            "bandwidth_vs_global": 1.0,
            "latency_vs_global": 1.0,
        }
    )
    return rows


def main() -> None:
    """Print Figure 4's data."""
    print("Figure 4: DSM bandwidth/latency vs cluster size")
    print(format_table(run()))


if __name__ == "__main__":
    main()
