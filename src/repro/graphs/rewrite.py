"""Rule-based graph rewriting: canonicalize operator graphs before extraction.

The chain extractor (:mod:`repro.graphs.extract`) recognises the three
Figure-1 shapes only when a graph is spelled in exactly the canonical form.
Real model exports are not: they interpose reshapes between a GEMM and its
activation, consume weights through transposes (``x @ W.T`` spellings), swap
the operands of the gating multiply, or omit the activation entirely.  Each
of those spellings is semantically a fusible chain, yet extracts zero chains
and serves fully unfused.

This module closes that gap with a small term-rewriting system:

* :class:`RewriteRule` — the rule protocol: a structural **match** on one
  anchor operator, an **applicability guard** (the part that keeps the rule
  set confluent: a rule must never undo what another rule established), and
  a **substitution** expressed as a declarative :class:`GraphEdit`.
* :func:`canonicalize` — the deterministic greedy driver: operators are
  scanned in insertion order, rules in catalog order, the first match is
  applied, and the scan restarts on the rebuilt graph until no rule fires
  (a fixpoint) or the fixpoint bound trips (:class:`~repro.errors.FusionError`
  — a diverging rule set is a bug, not a degraded mode).
* :data:`DEFAULT_RULES` — the opening catalog: dead movement-op and identity
  elimination, reshape elimination, transpose cancellation and folding,
  commutative operand ordering, and the identity-link substitution that
  normalizes activation-free GEMM-GEMM / conv-conv pairs into the canonical
  Figure-1 spellings.

Reachability pre-pruning keeps the driver cheap: each rule declares the
operator types it can anchor on, and every pass skips rules whose anchor
types are absent from the graph (the banned-rule pruning idea from equality-
saturation engines, applied to a greedy driver).

Rewriting is **plan-neutral** with respect to the per-chain plan cache: it
changes *which* chains are extracted, never which plan a given chain
compiles to, so ``FuserConfig.rewrite`` lives in the plan-neutral allowlist
of the ``cache-key-drift`` lint.  A chain extracted from a rewritten graph
has the same canonical identity — hence the same plan-cache key — as the
same chain built directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as _dataclass_fields, replace as _dc_replace
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

from repro.errors import FusionError
from repro.ir.graph import OperatorGraph
from repro.ir.ops import (
    Activation,
    ActivationKind,
    Conv2d,
    Elementwise,
    Gemm,
    Operator,
    Reshape,
    Transpose,
)
from repro.ir.tensor import TensorSpec
from repro.obs.trace import tracer

__all__ = [
    "DEFAULT_RULES",
    "GraphEdit",
    "RewriteProvenance",
    "RewriteResult",
    "RewriteRule",
    "canonicalize",
    "graph_signature",
]

#: Fixpoint bound: a sound rule set converges in far fewer firings than this
#: (every rule either removes an operator or is guarded against re-firing);
#: tripping it means two rules are inverses of each other.
_FIXPOINT_SLACK = 16
_FIXPOINT_FACTOR = 8


# --------------------------------------------------------------------- #
# Edits: declarative graph surgery
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GraphEdit:
    """One rule application, as a declarative edit over a graph.

    The driver applies an edit by rebuilding the graph in insertion order:
    operators named in ``drop`` are removed, consumed-tensor names in
    ``rename`` are rewritten on every *pre-existing* operator (inserted
    operators are taken verbatim — they may legitimately consume a tensor
    the edit reroutes around them), ``insert_after`` places new operators
    directly after a surviving anchor, and ``new_inputs`` declares synthetic
    graph inputs on graphs that declare their inputs (transpose folding
    introduces a pre-transposed weight tensor no operator produces).
    """

    drop: Tuple[str, ...] = ()
    rename: Tuple[Tuple[str, str], ...] = ()
    insert_after: Tuple[Tuple[str, Operator], ...] = ()
    new_inputs: Tuple[TensorSpec, ...] = ()


def _rename_inputs(op: Operator, rename: Dict[str, str]) -> Operator:
    """``op`` with every renamed input tensor rewired (shape/dtype kept).

    Operator outputs derive their names from the operator name, so renaming
    only ever touches input-position :class:`TensorSpec` fields.
    """
    if not rename:
        return op
    updates = {}
    for field in _dataclass_fields(op):
        value = getattr(op, field.name)
        if isinstance(value, TensorSpec) and value.name in rename:
            updates[field.name] = value.with_name(rename[value.name])
    return _dc_replace(op, **updates) if updates else op


def _apply_edit(graph: OperatorGraph, edit: GraphEdit) -> OperatorGraph:
    """Rebuild ``graph`` with ``edit`` applied (insertion order preserved)."""
    drop = set(edit.drop)
    rename = dict(edit.rename)
    inserts: Dict[str, List[Operator]] = {}
    for anchor, op in edit.insert_after:
        inserts.setdefault(anchor, []).append(op)
    operators: List[Operator] = []
    for op in graph.operators:
        if op.name not in drop:
            operators.append(_rename_inputs(op, rename))
        for inserted in inserts.get(op.name, ()):
            operators.append(inserted)
    inputs: Optional[Sequence[TensorSpec]] = None
    declared = graph.declared_inputs
    if declared is not None:
        inputs = list(declared) + list(edit.new_inputs)
    return OperatorGraph(graph.name, operators, inputs=inputs)


def graph_signature(graph: OperatorGraph) -> Tuple[object, ...]:
    """A structural identity for graph-equality assertions.

    Two graphs with equal signatures have the same operators (type, name,
    inputs, output) in the same order and the same declared inputs — the
    equality the idempotence property (``canonicalize(canonicalize(g)) ==
    canonicalize(g)``) is stated over.
    """
    declared = graph.declared_inputs
    return (
        graph.name,
        None if declared is None else tuple(declared),
        tuple(
            (type(op).__name__, op.name, tuple(op.inputs), op.output)
            for op in graph.operators
        ),
    )


# --------------------------------------------------------------------- #
# The rule protocol
# --------------------------------------------------------------------- #
@runtime_checkable
class RewriteRule(Protocol):
    """What the driver requires of a rewrite rule.

    ``anchors`` names the operator types the rule can fire on — the driver's
    reachability pre-pruning skips the rule entirely when none is present in
    the graph.  ``match`` receives each candidate anchor in deterministic
    scan order and returns the :class:`GraphEdit` to apply, or ``None``.
    Implementations conventionally split ``match`` into a structural match
    and an applicability guard (see :class:`_EliminateIdentityActivation`
    for the pattern); the guard is what makes the catalog confluent — a rule
    must refuse to fire on the exact configuration another rule establishes.
    """

    name: str
    anchors: FrozenSet[Type[Operator]]

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        """The edit this rule applies at anchor ``op``, or ``None``."""
        ...


def _sole_consumer(graph: OperatorGraph, tensor: str, expected: Operator) -> bool:
    return graph.consumers_of(tensor) == [expected]


def _single_consumer(graph: OperatorGraph, tensor: str) -> Optional[Operator]:
    consumers = graph.consumers_of(tensor)
    return consumers[0] if len(consumers) == 1 else None


def _is_graph_input(graph: OperatorGraph, tensor: str) -> bool:
    return graph.producer_of(tensor) is None


_MOVEMENT_TYPES = (Reshape, Transpose)


def _in_chain_position(graph: OperatorGraph, act: Activation) -> bool:
    """Whether ``act`` sits where a Figure-1 chain expects its activation.

    True when the activation privately bridges a compute-intensive producer
    to a single Gemm/Conv2d/Elementwise consumer — exactly the positions the
    extractor can anchor a match on (the Elementwise case is the gating
    multiply).  Identity elimination must keep such activations: removing
    one can only destroy a match, never enable anything.
    """
    producer = graph.producer_of(act.input_spec.name)
    if producer is None or not producer.is_compute_intensive:
        return False
    if not _sole_consumer(graph, act.input_spec.name, act):
        return False
    consumer = _single_consumer(graph, act.output.name)
    return isinstance(consumer, (Gemm, Conv2d, Elementwise))


# --------------------------------------------------------------------- #
# The opening rule catalog
# --------------------------------------------------------------------- #
class _EliminateDeadMovementOp:
    """Drop dangling data-movement operators (rewrite debris, export noise).

    A reshape, transpose or identity activation whose output nothing
    consumes computes nothing a model output could depend on — semantic
    outputs come from compute or arithmetic operators.  Transpose
    cancellation routinely strands the first transpose of a pair; this rule
    sweeps it up on the next pass.
    """

    name = "eliminate-dead-movement-op"
    anchors: FrozenSet[Type[Operator]] = frozenset(
        {Reshape, Transpose, Activation}
    )

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        if isinstance(op, Activation) and op.kind is not ActivationKind.IDENTITY:
            return None
        if graph.consumers_of(op.output.name):
            return None
        return GraphEdit(drop=(op.name,))


class _EliminateIdentityActivation:
    """Remove identity activations that are not in chain position.

    Match: an ``Activation(IDENTITY)`` with at least one consumer.
    Guard: the activation must *not* sit in chain position
    (:func:`_in_chain_position`) — there it is load-bearing for extraction,
    and it is exactly the configuration :class:`_InsertChainActivation`
    establishes, so eliminating it would oscillate.
    Substitution: drop the activation and rewire its consumers to its input.
    """

    name = "eliminate-identity-activation"
    anchors: FrozenSet[Type[Operator]] = frozenset({Activation})

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        assert isinstance(op, Activation)
        if op.kind is not ActivationKind.IDENTITY:
            return None
        if not graph.consumers_of(op.output.name):
            return None  # dead: _EliminateDeadMovementOp's case
        if _in_chain_position(graph, op):
            return None
        return GraphEdit(
            drop=(op.name,), rename=((op.output.name, op.input_spec.name),)
        )


class _EliminateReshape:
    """Rewire consumers of an interior reshape straight to its input.

    Consumers keep their declared shapes — edge validation is by element
    count and dtype, both of which a reshape preserves — so the reshape
    becomes unreferenced and is dropped.  This is the transpose/reshape
    "sinking" of the module docstring taken to its endpoint: an interior
    reshape sinks all the way out of existence.
    """

    name = "eliminate-reshape"
    anchors: FrozenSet[Type[Operator]] = frozenset({Reshape})

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        assert isinstance(op, Reshape)
        if not graph.consumers_of(op.output.name):
            return None  # dead: swept separately
        return GraphEdit(
            drop=(op.name,), rename=((op.output.name, op.input_spec.name),)
        )


class _CancelDoubleTranspose:
    """Cancel ``Transpose(Transpose(x))`` by rewiring consumers to ``x``.

    Only the outer transpose is dropped; the inner one may have other
    consumers, and when it does not it goes dead and the dead-movement rule
    collects it on a later pass.
    """

    name = "cancel-double-transpose"
    anchors: FrozenSet[Type[Operator]] = frozenset({Transpose})

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        assert isinstance(op, Transpose)
        inner = graph.producer_of(op.input_spec.name)
        if not isinstance(inner, Transpose):
            return None
        if not graph.consumers_of(op.output.name):
            return None
        return GraphEdit(
            drop=(op.name,), rename=((op.output.name, inner.input_spec.name),)
        )


class _FoldInputTranspose:
    """Fold a transpose of a graph input into a pre-transposed input.

    ``gemm(x, transpose(W))`` defeats extraction because the weight operand
    is a *produced* tensor.  The transpose of a graph input is free at model
    load time (lay the weight out transposed once), so the rule replaces it
    with a synthetic input tensor ``<op>.folded`` holding the transposed
    spec; the consuming GEMM then sees a resident weight again.
    """

    name = "fold-input-transpose"
    anchors: FrozenSet[Type[Operator]] = frozenset({Transpose})

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        assert isinstance(op, Transpose)
        if not _is_graph_input(graph, op.input_spec.name):
            return None
        if not graph.consumers_of(op.output.name):
            return None
        folded = op.output.with_name(f"{op.name}.folded")
        return GraphEdit(
            drop=(op.name,),
            rename=((op.output.name, folded.name),),
            new_inputs=(folded,),
        )


class _OrderCommutativeOperands:
    """Put the activation-produced operand first on commutative operators.

    The Figure-1 gated FFN is spelled ``act(gate) * up``; exporters emit the
    mirrored ``up * act(gate)`` just as often.  Both orders describe the
    same value (the output spec is shape/dtype-identical either way), so
    the rule pins one canonical spelling.  Guard: fires only when the rhs
    is activation-produced and the lhs is not — once swapped, the guard is
    false forever, which is what makes the rule idempotent.
    """

    name = "order-commutative-operands"
    anchors: FrozenSet[Type[Operator]] = frozenset({Elementwise})

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        assert isinstance(op, Elementwise)
        rhs_from_act = isinstance(graph.producer_of(op.rhs.name), Activation)
        lhs_from_act = isinstance(graph.producer_of(op.lhs.name), Activation)
        if not rhs_from_act or lhs_from_act:
            return None
        swapped = Elementwise(op.name, op.kind, lhs=op.rhs, rhs=op.lhs)
        return GraphEdit(drop=(op.name,), insert_after=((op.name, swapped),))


class _InsertChainActivation:
    """Normalize activation-free GEMM-GEMM / conv-conv pairs to Figure 1.

    An FFN exported without its activation (or a conv pair whose ReLU was
    constant-folded away) is still a fusible chain — the canonical spelling
    just requires an activation between the two compute operators.  The rule
    inserts an ``Activation(IDENTITY)`` link exactly in chain position,
    where :class:`_EliminateIdentityActivation`'s guard protects it.

    Guards: the producer's output must be privately consumed by the second
    compute operator as its data input, both weight operands must be graph
    inputs, the shapes must compose, and the link name must be free —
    anything the extractor would reject anyway is left alone.
    """

    name = "insert-chain-activation"
    anchors: FrozenSet[Type[Operator]] = frozenset({Gemm, Conv2d})

    def match(self, graph: OperatorGraph, op: Operator) -> Optional[GraphEdit]:
        consumer = _single_consumer(graph, op.output.name)
        if isinstance(op, Gemm):
            if not isinstance(consumer, Gemm):
                return None
            if consumer.lhs.name != op.output.name:
                return None  # feeds the weight slot, not the data slot
            if (consumer.m, consumer.k) != (op.m, op.n):
                return None
            weights = (op.rhs.name, consumer.rhs.name)
        elif isinstance(op, Conv2d):
            if not isinstance(consumer, Conv2d):
                return None
            if consumer.input_spec.name != op.output.name:
                return None
            if consumer.in_channels != op.out_channels:
                return None
            weights = (op.weight.name, consumer.weight.name)
        else:
            return None
        if not all(_is_graph_input(graph, name) for name in weights):
            return None
        link_name = f"{op.name}.link"
        if any(existing.name == link_name for existing in graph.operators):
            return None
        link = Activation(link_name, ActivationKind.IDENTITY, op.output)
        return GraphEdit(
            rename=((op.output.name, link.output.name),),
            insert_after=((op.name, link),),
        )


#: The opening rule catalog, in firing-priority order: eliminations first
#: (they only shrink the graph), then canonicalizations, then the one
#: inserting substitution.  The order is part of the engine's determinism
#: contract — the property suite pins it.
DEFAULT_RULES: Tuple[RewriteRule, ...] = (
    _EliminateDeadMovementOp(),
    _EliminateIdentityActivation(),
    _EliminateReshape(),
    _CancelDoubleTranspose(),
    _FoldInputTranspose(),
    _OrderCommutativeOperands(),
    _InsertChainActivation(),
)


# --------------------------------------------------------------------- #
# Provenance
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RewriteProvenance:
    """What :func:`canonicalize` did to one graph.

    Threaded through
    :attr:`~repro.graphs.extract.ExtractionResult.rewrite` into
    :meth:`~repro.graphs.plan.ModelPlan.summary` and the bench report's
    ``rewrite`` block, so a served plan always records which rules shaped
    the graph it was extracted from.

    Example
    -------
    >>> from repro.ir.builders import build_standard_ffn
    >>> graph, _ = build_standard_ffn("demo", m=64, n=128, k=32, l=32)
    >>> result = canonicalize(graph)
    >>> result.provenance.rules_fired      # already canonical: nothing fires
    ()
    >>> result.provenance.to_dict()["ops_eliminated"]
    0
    """

    graph: str
    #: Fire-and-rebuild iterations until the fixpoint (0 = already canonical).
    passes: int
    #: Rule names in firing order (one entry per application).
    rules_fired: Tuple[str, ...]
    ops_before: int
    ops_after: int
    #: Operators removed by elimination rules (same-name drop-and-reinsert
    #: replacements do not count; insertions are recoverable as
    #: ``ops_after - ops_before + ops_eliminated``).
    ops_eliminated: int
    #: Rule scans skipped because no anchor operator type was present.
    rules_pruned: int

    def fired_counts(self) -> Dict[str, int]:
        """Applications per rule name, key-sorted."""
        counts: Dict[str, int] = {}
        for name in self.rules_fired:
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form with a pinned key order."""
        return {
            "graph": self.graph,
            "passes": self.passes,
            "rules_fired": list(self.rules_fired),
            "fired_counts": self.fired_counts(),
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
            "ops_eliminated": self.ops_eliminated,
            "rules_pruned": self.rules_pruned,
        }


@dataclass(frozen=True)
class RewriteResult:
    """The rewritten graph plus its :class:`RewriteProvenance`."""

    graph: OperatorGraph
    provenance: RewriteProvenance

    @property
    def changed(self) -> bool:
        """Whether any rule fired."""
        return bool(self.provenance.rules_fired)


# --------------------------------------------------------------------- #
# The driver
# --------------------------------------------------------------------- #
def canonicalize(
    graph: OperatorGraph,
    rules: Optional[Sequence[RewriteRule]] = None,
    *,
    validate: bool = True,
    max_firings: Optional[int] = None,
) -> RewriteResult:
    """Rewrite ``graph`` to the fixpoint of ``rules`` (default catalog).

    The driver is deterministic by construction: rules are tried in catalog
    order against operators in insertion order, the first match is applied,
    and the scan restarts on the rebuilt graph.  Every pass pre-prunes rules
    whose anchor operator types are absent, so graphs containing none of a
    rule's anchors never pay for scanning it.  The rewritten graph is
    re-validated before returning — a rule that produces a malformed graph
    is a driver bug and fails loudly.

    ``max_firings`` bounds the fixpoint iteration (default
    ``8 * len(graph) + 16``); exceeding it raises
    :class:`~repro.errors.FusionError`, since a sound catalog either shrinks
    the graph or guards itself against re-firing.

    Example
    -------
    >>> from repro.ir.builders import build_gated_ffn
    >>> graph, _ = build_gated_ffn("ffn", m=64, n=128, k=32, l=32)
    >>> canonicalize(graph).changed           # already the Figure-1 spelling
    False
    """
    catalog = tuple(DEFAULT_RULES if rules is None else rules)
    if validate:
        graph.validate()
    bound = (
        max_firings
        if max_firings is not None
        else _FIXPOINT_FACTOR * len(graph) + _FIXPOINT_SLACK
    )
    ops_before = len(graph)
    fired: List[str] = []
    eliminated = 0
    pruned = 0
    passes = 0
    with tracer().span("rewrite.canonicalize", graph=graph.name) as span:
        while True:
            present = {type(op) for op in graph.operators}
            active = [
                rule
                for rule in catalog
                if any(issubclass(kind, tuple(rule.anchors)) for kind in present)
            ]
            pruned += len(catalog) - len(active)
            edit, rule_name = _first_match(graph, active)
            if edit is None:
                break
            if len(fired) >= bound:
                raise FusionError(
                    f"graph {graph.name!r}: rewrite did not reach a fixpoint "
                    f"within {bound} rule firings — the rule set oscillates "
                    f"(last fired: {fired[-3:]})"
                )
            # A drop re-inserted under the same name (operand reordering)
            # is a replacement, not an elimination.
            replaced = {op.name for _, op in edit.insert_after}
            eliminated += sum(1 for name in edit.drop if name not in replaced)
            graph = _apply_edit(graph, edit)
            fired.append(rule_name)
            passes += 1
        if fired:
            graph.validate()
        span.set("passes", passes)
        span.set("rules_fired", len(fired))
        span.set("ops_eliminated", eliminated)
        span.set("rules_pruned", pruned)
    provenance = RewriteProvenance(
        graph=graph.name,
        passes=passes,
        rules_fired=tuple(fired),
        ops_before=ops_before,
        ops_after=len(graph),
        ops_eliminated=eliminated,
        rules_pruned=pruned,
    )
    return RewriteResult(graph=graph, provenance=provenance)


def _first_match(
    graph: OperatorGraph, rules: Sequence[RewriteRule]
) -> Tuple[Optional[GraphEdit], str]:
    """The first (operator, rule) match in deterministic scan order."""
    for op in graph.operators:
        for rule in rules:
            if not isinstance(op, tuple(rule.anchors)):
                continue
            edit = rule.match(graph, op)
            if edit is not None:
                return edit, rule.name
    return None, ""
