"""Model-level serving over the kernel-serving frontend.

:class:`ModelServer` is the thin model layer above
:class:`~repro.runtime.server.KernelServer`: models register an operator
graph (or a graph *factory* parameterised by the batched token count M), and
every serve request resolves the model's extracted chains through the
existing table -> cache -> compile path, charges the residual operators on
the simulator, and answers with the assembled
:class:`~repro.graphs.plan.ModelPlan` plus per-segment resolution sources.

Model-level metrics land in a dedicated
:class:`~repro.runtime.stats.ServingStats`: each serve is recorded under the
model's name with the *most expensive* source any of its chains needed
(``compiled`` > ``compiled:transfer`` > ``cache:disk`` > ``cache:memory`` >
``table``), while the underlying :class:`KernelServer` keeps its own
per-chain stats.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.analysis.locks import make_lock
from repro.errors import FusionError

from repro.api import CompiledKernel, CompileRequest
from repro.graphs.extract import ChainMatch, ExtractionResult, extract_chains
from repro.graphs.plan import SOURCE_SIMULATED, ModelPlan, assemble_plan
from repro.ir.graph import OperatorGraph
from repro.ir.workloads import ModelConfig, get_model
from repro.obs.trace import tracer
from repro.runtime.server import (
    SOURCE_CACHE_DISK,
    SOURCE_CACHE_MEMORY,
    SOURCE_COMPILED,
    SOURCE_TABLE,
    SOURCE_TRANSFER,
    KernelServer,
)
from repro.runtime.stats import ServingStats
from repro.sim.engine import PerformanceSimulator

#: A registered model: either a fixed graph or a factory building the graph
#: for a requested batched token count M.
GraphFactory = Callable[[int], OperatorGraph]

#: Source ranking used to summarise a multi-chain serve as one source.  A
#: transfer-warmed compile still runs a (bounded) search, so it outranks
#: every hit tier but stays cheaper than a full exact compile.
_SOURCE_COST = {
    SOURCE_TABLE: 0,
    SOURCE_CACHE_MEMORY: 1,
    SOURCE_CACHE_DISK: 2,
    SOURCE_TRANSFER: 3,
    SOURCE_COMPILED: 4,
}

#: Distinct (model, m) extraction results kept in the serve-path memo.
_EXTRACTION_MEMO_CAPACITY = 64


@dataclass
class ModelServeResponse:
    """One served model request."""

    model: str
    m: int
    plan: ModelPlan
    #: Resolution source per fused segment name.
    sources: Dict[str, str]
    #: The most expensive source any chain needed (``simulated`` when the
    #: model has no fusible chains).
    source: str
    #: Wall-clock time spent serving this request.
    latency_us: float
    #: Search-effort counters summed over every chain that ran a fusion
    #: search this serve (``None`` when all chains were hits).
    search_counters: Optional[Dict[str, int]] = None
    #: Per-phase search wall clock summed over every chain that ran a
    #: fusion search this serve (``None`` when all chains were hits).
    phase_times_us: Optional[Dict[str, float]] = None

    @property
    def time_us(self) -> float:
        """Simulated model execution time under the served plan."""
        return self.plan.time_us

    @property
    def rewrite_provenance(self):
        """The extraction's rewrite provenance (``None`` when rewrite is off)."""
        return self.plan.extraction.rewrite

    @property
    def speedup_vs_unfused(self) -> float:
        """Model speedup over fully unfused execution."""
        return self.plan.speedup_vs_unfused()


class ModelServer:
    """Serve whole model graphs through the kernel-serving stack.

    Parameters
    ----------
    server:
        The backing :class:`KernelServer`.  When omitted, one is built from
        the remaining keyword arguments (``cache=``, ``config=``, ...),
        which must not be combined with an explicit ``server``.
    residual_simulator:
        Charges residual operators; defaults to library-grade kernel quality
        on the backing compiler's device.
    stats:
        Model-level metrics sink (a fresh :class:`ServingStats` by default).

    Example
    -------
    ::

        from repro import ModelServer

        with ModelServer(cache="~/.cache/ff") as server:
            server.register("bert", "BERT")        # zoo name -> layer factory
            response = server.serve("bert", m=128) # cold: fusion search
            again = server.serve("bert", m=96)     # warm: kernel-table hit
        print(response.source, again.source)       # 'compiled' 'table'
        print(server.snapshot()["models"]["hit_rate"])
    """

    def __init__(
        self,
        server: Optional[KernelServer] = None,
        *,
        residual_simulator: Optional[PerformanceSimulator] = None,
        stats: Optional[ServingStats] = None,
        **server_kwargs: object,
    ) -> None:
        if server is not None and server_kwargs:
            raise ValueError("pass either server= or KernelServer kwargs, not both")
        self.server = server if server is not None else KernelServer(**server_kwargs)
        self.simulator = residual_simulator or PerformanceSimulator.library_grade(
            self.server.compiler.device
        )
        self.stats = stats or ServingStats()
        self._factories: Dict[str, Optional[GraphFactory]] = {}
        self._static_graphs: Dict[str, OperatorGraph] = {}
        # LRU-bounded (model, m) -> (graph, extraction) memo: dynamic-M
        # traffic must not grow server state without bound (the backing
        # kernel tables are bounded by binning for the same reason).  The
        # registry and memo share a lock because the backing request path is
        # built for concurrent serving threads.
        self._extractions: "OrderedDict[Tuple[str, int], Tuple[OperatorGraph, ExtractionResult]]" = OrderedDict()
        self._lock = make_lock("model-server", reentrant=True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        model: Union[OperatorGraph, GraphFactory, ModelConfig, str],
    ) -> None:
        """Register a model under ``name``.

        ``model`` may be a fixed :class:`OperatorGraph` (servable only at
        its built shape), a callable ``m -> OperatorGraph`` building the
        graph for any batched token count, a :class:`ModelConfig`, or a
        model-zoo name — the latter two register the config's transformer
        layer graph as a factory.  Fixed graphs are validated here, so a
        malformed graph fails at registration; factory-built graphs are
        validated when first materialised for a serve.
        """
        if isinstance(model, str):
            model = get_model(model)
        with self._lock:
            if isinstance(model, ModelConfig):
                config = model
                self._factories[name] = lambda m: config.layer_graph(seq_len=m)
            elif isinstance(model, OperatorGraph):
                model.validate()
                self._factories[name] = None
                self._static_graphs[name] = model
            elif callable(model):
                self._factories[name] = model
            else:
                raise TypeError(
                    f"cannot register a {type(model).__name__} as a model"
                )
            for key in [k for k in self._extractions if k[0] == name]:
                del self._extractions[key]

    def models(self) -> List[str]:
        """Registered model names, in registration order."""
        with self._lock:
            return list(self._factories)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self, name: str, m: Optional[int] = None) -> ModelServeResponse:
        """Serve one model at batched token count ``m``.

        Every extracted chain resolves through the backing server's
        table -> cache -> compile path, concurrently when the model has
        several chains; residual operators are charged on the simulator.
        Chains are quantised to the server's M bins — a runtime M above the
        largest bin reuses the largest compiled kernel across
        ``ceil(M / bin)`` waves, which is what the plan charges.  For models
        registered as fixed graphs ``m`` must be omitted — register a
        factory to serve variable shapes.
        """
        start = time.perf_counter()
        with tracer().span("model.serve", model=name, m=m) as span:
            graph, extraction, effective_m = self._materialize(name, m)
            settled = self._resolve_all(extraction.matches)
            sources: Dict[str, str] = {
                chain_name: outcome[1]
                for chain_name, outcome in settled.items()
                if not isinstance(outcome, FusionError)
            }
            search_counters: Optional[Dict[str, int]] = None
            phase_times_us: Optional[Dict[str, float]] = None
            for outcome in settled.values():
                if isinstance(outcome, FusionError):
                    continue
                if outcome[4] is not None:
                    if search_counters is None:
                        search_counters = dict.fromkeys(outcome[4], 0)
                    for counter, value in outcome[4].items():
                        search_counters[counter] = (
                            search_counters.get(counter, 0) + value
                        )
                if outcome[5] is not None:
                    if phase_times_us is None:
                        phase_times_us = {}
                    for stage, micros in outcome[5].items():
                        phase_times_us[stage] = (
                            phase_times_us.get(stage, 0.0) + micros
                        )

            def resolve(
                match: ChainMatch,
            ) -> Tuple[CompiledKernel, str, bool, float]:
                outcome = settled[match.chain.name]
                if isinstance(outcome, FusionError):
                    raise outcome
                kernel, source, cache_hit, charged_us = outcome[:4]
                return kernel, source, cache_hit, charged_us

            plan = assemble_plan(graph.name, extraction, resolve, self.simulator)
            source = max(
                (value for value in sources.values()),
                key=lambda value: _SOURCE_COST.get(value, 0),
                default=SOURCE_SIMULATED,
            )
            latency_us = (time.perf_counter() - start) * 1e6
            self.stats.record_request(name, source, latency_us)
            span.set("source", source)
            return ModelServeResponse(
                model=name,
                m=effective_m,
                plan=plan,
                sources=sources,
                source=source,
                latency_us=latency_us,
                search_counters=search_counters,
                phase_times_us=phase_times_us,
            )

    def warm_from_cache(self, name: str, m: Optional[int] = None) -> int:
        """Warm every chain of model ``name`` at ``m`` from the plan cache.

        Materialises the model's graph, extracts its chains and resolves
        each through :meth:`KernelServer.warm_from_cache` — table entries
        are adopted from the shared plan cache without running any fusion
        search, and nothing is recorded in the serving stats.  Returns the
        number of chains warmed (chains with no cached plan are skipped).

        This is the model-level half of the fleet's warm-plan broadcast:
        after one worker cold-compiles a model's chains, its replicas adopt
        them so the next serve is a table hit.

        Example
        -------
        ::

            replica.register("bert", "BERT")
            replica.warm_from_cache("bert", m=128)    # no search runs
        """
        _, extraction, _ = self._materialize(name, m)
        warmed = 0
        for match in extraction.matches:
            source = self.server.warm_from_cache(
                CompileRequest(chain=match.chain)
            )
            if source is not None:
                warmed += 1
        return warmed

    def snapshot(self) -> Dict[str, object]:
        """Model-level metrics plus the backing kernel server's snapshot."""
        return {
            "models": self.stats.snapshot(),
            "kernels": self.server.snapshot(),
        }

    def close(self) -> None:
        """Release the backing server's compiler pools (idempotent)."""
        self.server.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _resolve_all(
        self, matches: List[ChainMatch]
    ) -> Dict[
        str,
        Union[
            Tuple[
                CompiledKernel,
                str,
                bool,
                float,
                Optional[Dict[str, int]],
                Optional[Dict[str, float]],
            ],
            FusionError,
        ],
    ]:
        """Resolve every chain through the kernel server, fanning out when
        the model has several (the backing request path is thread-safe and
        deduplicates concurrent first requests per bin)."""
        if len(matches) <= 1:
            return {
                match.chain.name: self._settle(match) for match in matches
            }
        ctx = tracer().capture()

        def settle(match: ChainMatch):
            # Re-activate the serve's trace context on the pool thread so
            # each chain's resolution spans stitch under the model serve.
            with tracer().activate(ctx):
                return self._settle(match)

        with ThreadPoolExecutor(max_workers=min(8, len(matches))) as pool:
            futures = {
                match.chain.name: pool.submit(settle, match)
                for match in matches
            }
            return {name: future.result() for name, future in futures.items()}

    def _settle(
        self, match: ChainMatch
    ) -> Union[
        Tuple[
            CompiledKernel,
            str,
            bool,
            float,
            Optional[Dict[str, int]],
            Optional[Dict[str, float]],
        ],
        FusionError,
    ]:
        """One chain's (kernel, source, cache_hit, charged time, search
        counters, phase times), or its FusionError (kept as a value so
        sibling chains still resolve)."""
        try:
            response = self.server.request(CompileRequest(chain=match.chain))
        except FusionError as exc:
            return exc
        # A runtime M above the largest compiled bin reuses that kernel
        # across multiple waves; charge them all, not just the first.
        waves = -(-match.chain.m // response.bin_m)
        # cache_hit keeps PlanSegment's plan-cache semantics: a kernel-table
        # hit resolved without the cache reports source="table", hit=False.
        cache_hit = response.source in (SOURCE_CACHE_MEMORY, SOURCE_CACHE_DISK)
        return (
            response.kernel,
            response.source,
            cache_hit,
            response.kernel.time_us * waves,
            getattr(response, "search_counters", None),
            getattr(response, "phase_times_us", None),
        )

    def _materialize(
        self, name: str, m: Optional[int]
    ) -> Tuple[OperatorGraph, ExtractionResult, int]:
        with self._lock:
            if name not in self._factories:
                raise KeyError(f"unknown model {name!r}; register() it first")
            factory = self._factories[name]
            static_graph = self._static_graphs.get(name)
        if factory is None:
            if m is not None:
                raise ValueError(
                    f"model {name!r} was registered as a fixed graph; register "
                    "a graph factory (m -> OperatorGraph) to serve variable M"
                )
            graph = static_graph
            extraction = self._extract_cached(name, 0, graph)
            effective_m = (
                extraction.matches[0].chain.m if extraction.matches else 0
            )
            return graph, extraction, effective_m
        if m is None or m <= 0:
            raise ValueError("serve(name, m) requires a positive token count m")
        graph, extraction = self._memoized_extraction(
            (name, m), lambda: self._build_and_extract(factory, m)
        )
        return graph, extraction, m

    def _build_and_extract(
        self, factory: GraphFactory, m: int
    ) -> Tuple[OperatorGraph, ExtractionResult]:
        graph = factory(m)
        return graph, extract_chains(graph, rewrite=self._rewrite_enabled())

    def _extract_cached(
        self, name: str, m: int, graph: OperatorGraph
    ) -> ExtractionResult:
        rewrite = self._rewrite_enabled()
        return self._memoized_extraction(
            (name, m),
            lambda: (graph, extract_chains(graph, validate=False, rewrite=rewrite)),
        )[1]

    def _rewrite_enabled(self) -> bool:
        # Plan-neutral knob (see PLAN_NEUTRAL_CONFIG_FIELDS): rewriting
        # changes which chains are extracted, never a chain's compiled plan.
        return self.server.compiler.config.rewrite

    def _memoized_extraction(
        self,
        key: Tuple[str, int],
        build: Callable[[], Tuple[OperatorGraph, ExtractionResult]],
    ) -> Tuple[OperatorGraph, ExtractionResult]:
        # Extraction is pattern matching over a small DAG (microseconds
        # against a cold serve's search), so building under the lock is
        # cheaper than racing duplicate builds.
        with self._lock:
            cached = self._extractions.get(key)
            if cached is None:
                cached = build()
                self._extractions[key] = cached
                while len(self._extractions) > _EXTRACTION_MEMO_CAPACITY:
                    self._extractions.popitem(last=False)
            else:
                self._extractions.move_to_end(key)
            return cached
