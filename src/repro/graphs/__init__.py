"""Graph compiler subsystem: from whole model graphs to executable plans.

The layers below this package compile one *chain* at a time; this package
turns full :class:`~repro.ir.graph.OperatorGraph` models into servable
plans:

* :mod:`repro.graphs.rewrite` — the rule-based canonicalizer that
  normalizes export spellings (interior reshapes, transposed weights,
  swapped gating operands, missing link activations) into the Figure-1
  forms before matching, behind the plan-neutral ``FuserConfig.rewrite``
  flag;
* :mod:`repro.graphs.extract` — the pattern matcher and chain extractor
  that partitions a model DAG into the fusible shapes of Figure 1
  (standard FFN, gated FFN, conv chain via im2col) plus residual operators,
  with deterministic, non-overlapping region selection;
* :mod:`repro.graphs.plan` — :func:`compile_graph` and the
  :class:`ModelPlan` scheduler: extracted chains compile concurrently
  through the :class:`~repro.api.FlashFuser` submit/cache stack, residual
  operators are charged on the performance simulator, and the result is a
  topologically ordered plan with per-segment provenance;
* :mod:`repro.graphs.server` — :class:`ModelServer`, the serving
  integration resolving every extracted chain through the existing
  table -> cache -> compile path with model-level serving stats.
"""

from repro.graphs.extract import ChainMatch, ExtractionResult, extract_chains
from repro.graphs.rewrite import (
    DEFAULT_RULES,
    GraphEdit,
    RewriteProvenance,
    RewriteResult,
    RewriteRule,
    canonicalize,
    graph_signature,
)
from repro.graphs.plan import (
    KIND_FUSED,
    KIND_UNFUSED,
    ModelPlan,
    PlanSegment,
    assemble_plan,
    compile_graph,
)
from repro.graphs.server import GraphFactory, ModelServeResponse, ModelServer

__all__ = [
    "ChainMatch",
    "ExtractionResult",
    "extract_chains",
    "DEFAULT_RULES",
    "GraphEdit",
    "RewriteProvenance",
    "RewriteResult",
    "RewriteRule",
    "canonicalize",
    "graph_signature",
    "KIND_FUSED",
    "KIND_UNFUSED",
    "ModelPlan",
    "PlanSegment",
    "assemble_plan",
    "compile_graph",
    "GraphFactory",
    "ModelServeResponse",
    "ModelServer",
]
