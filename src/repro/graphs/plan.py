"""Model plans: whole-graph compilation through the chain compiler.

:func:`compile_graph` is the graph compiler's scheduler.  It extracts the
fusible chains of an :class:`~repro.ir.graph.OperatorGraph`
(:func:`~repro.graphs.extract.extract_chains`), compiles every chain
concurrently through the existing :class:`~repro.api.FlashFuser` stack —
``submit()`` futures share the compiler's worker pool, and an attached plan
cache serves repeat shapes without re-running the search — charges the
residual (unfused) operators on the performance simulator at library kernel
quality, and assembles a topologically ordered :class:`ModelPlan` whose
segments carry full provenance: fused vs unfused, resolution source, cache
hit or miss, and simulated time.

A chain the search cannot fuse (its intermediate exceeds every on-chip
placement, e.g. the C4 conv chain) degrades gracefully: the region is
charged as its unfused kernel sequence and marked ``SOURCE_UNFUSABLE``
instead of failing the whole model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.api import CompiledKernel, CompileRequest, FlashFuser
from repro.baselines.base import unfused_launches
from repro.config import FuserConfig
from repro.errors import FusionError
from repro.graphs.extract import ChainMatch, ExtractionResult, extract_chains
from repro.ir.graph import GemmChainSpec, OperatorGraph
from repro.ir.ops import Operator
from repro.sim.engine import KernelLaunch, PerformanceSimulator

#: Segment kinds.
KIND_FUSED = "fused"
KIND_UNFUSED = "unfused"

#: Resolution sources recorded on segments.
SOURCE_SEARCH = "search"
SOURCE_CACHE = "cache"
SOURCE_UNFUSABLE = "unfusable"
SOURCE_SIMULATED = "simulated"


@dataclass
class PlanSegment:
    """One schedulable unit of a compiled model plan.

    Either a fused chain kernel or a run of unfused operators, carrying its
    full provenance: how it was resolved, whether the plan cache served it,
    and its fused-vs-unfused simulated times.

    Example
    -------
    ::

        from repro import compile_graph
        from repro.ir.workloads import get_model

        plan = compile_graph(get_model("BERT").layer_graph(seq_len=128))
        for segment in plan.segments:
            print(segment.name, segment.kind, segment.source, segment.time_us)
    """

    name: str
    kind: str
    #: Operator names the segment covers, in topological order.
    operators: Tuple[str, ...]
    #: Simulated execution time of the segment as planned.
    time_us: float
    #: Simulated time of the same operators executed fully unfused (the
    #: baseline side of the fused-vs-unfused comparison).
    unfused_time_us: float
    #: How the segment was resolved: ``search``/``cache`` (or a serving
    #: source like ``table``/``cache:memory``) for fused segments,
    #: ``unfusable`` for chains the search rejected, ``simulated`` for
    #: residual operators.
    source: str
    #: Topological position of the segment's first operator.
    anchor: int
    chain: Optional[GemmChainSpec] = None
    cache_hit: bool = False
    kernel: Optional[CompiledKernel] = field(default=None, repr=False)

    @property
    def fused(self) -> bool:
        """Whether the segment runs as one fused kernel."""
        return self.kind == KIND_FUSED

    def to_row(self) -> Dict[str, object]:
        """Flat view for tables and logs."""
        return {
            "segment": self.name,
            "kind": self.kind,
            "operators": len(self.operators),
            "source": self.source,
            "cache_hit": self.cache_hit,
            "time_us": round(self.time_us, 2),
            "unfused_us": round(self.unfused_time_us, 2),
        }


@dataclass
class ModelPlan:
    """A topologically ordered execution plan for one model graph.

    The output of :func:`compile_graph`: every :class:`PlanSegment` in
    schedule order plus the extraction it was assembled from, with
    aggregate timings (:attr:`time_us`, :meth:`speedup_vs_unfused`) and
    provenance (:attr:`cache_hits`, :meth:`rows`, :meth:`summary`).

    Example
    -------
    ::

        from repro import compile_graph
        from repro.ir.workloads import get_model

        plan = compile_graph(get_model("BERT").layer_graph(seq_len=128))
        print(plan.summary()["speedup_vs_unfused"])
        print(plan.rows())                      # per-segment provenance
    """

    graph_name: str
    segments: List[PlanSegment]
    extraction: ExtractionResult

    # ------------------------------------------------------------------ #
    # Timings
    # ------------------------------------------------------------------ #
    @property
    def time_us(self) -> float:
        """Simulated model time under this plan."""
        return sum(segment.time_us for segment in self.segments)

    @property
    def fused_time_us(self) -> float:
        """Time spent in fused chain kernels."""
        return sum(s.time_us for s in self.segments if s.fused)

    @property
    def residual_time_us(self) -> float:
        """Time spent in unfused (residual or unfusable) kernels."""
        return sum(s.time_us for s in self.segments if not s.fused)

    @property
    def unfused_time_us(self) -> float:
        """Simulated model time with every operator executed unfused."""
        return sum(segment.unfused_time_us for segment in self.segments)

    def speedup_vs_unfused(self) -> float:
        """Whole-model speedup of this plan over fully unfused execution."""
        return self.unfused_time_us / self.time_us if self.time_us > 0 else 0.0

    # ------------------------------------------------------------------ #
    # Provenance
    # ------------------------------------------------------------------ #
    @property
    def fused_segments(self) -> List[PlanSegment]:
        """The segments served by fused kernels."""
        return [s for s in self.segments if s.fused]

    @property
    def cache_hits(self) -> int:
        """Fused segments served by the plan cache instead of a search."""
        return sum(1 for s in self.segments if s.cache_hit)

    def rows(self) -> List[Dict[str, object]]:
        """Per-segment provenance rows, in schedule order."""
        return [segment.to_row() for segment in self.segments]

    def summary(self) -> Dict[str, object]:
        """Model-level provenance and timing summary.

        The ``rewrite`` entry carries the canonicalization provenance when
        the plan was compiled with the rewrite stage enabled (``None`` for a
        direct extraction), so "which rules shaped this plan" survives into
        every report built from summaries.
        """
        rewrite = self.extraction.rewrite
        return {
            "graph": self.graph_name,
            "rewrite": None if rewrite is None else rewrite.to_dict(),
            "segments": len(self.segments),
            "fused_chains": len(self.fused_segments),
            "residual_ops": sum(
                len(s.operators) for s in self.segments if not s.fused
            ),
            "cache_hits": self.cache_hits,
            "flops_coverage": round(self.extraction.flops_coverage(), 3),
            "time_us": round(self.time_us, 2),
            "unfused_time_us": round(self.unfused_time_us, 2),
            "speedup_vs_unfused": round(self.speedup_vs_unfused(), 3),
        }


class ChainResolver(Protocol):
    """How fused chains get their kernels (compiler or serving frontend)."""

    def __call__(
        self, match: ChainMatch
    ) -> Tuple[CompiledKernel, str, bool, float]:
        """Return (kernel, source, cache_hit, charged time in us).

        The charged time is usually ``kernel.time_us``; the serving path
        charges multiple kernel waves when the runtime M exceeds the
        largest compiled bin.  Raise FusionError when the chain is
        unfusable.
        """
        ...


def assemble_plan(
    graph_name: str,
    extraction: ExtractionResult,
    resolver: ChainResolver,
    simulator: PerformanceSimulator,
) -> ModelPlan:
    """Build a :class:`ModelPlan` from an extraction and a chain resolver.

    Shared by :func:`compile_graph` (chains resolved by the compiler) and
    :class:`~repro.graphs.server.ModelServer` (chains resolved through the
    serving table -> cache -> compile path); both produce identically
    structured plans, differing only in each fused segment's source.
    """
    segments: List[PlanSegment] = []
    for match in extraction.matches:
        unfused_us = simulator.simulate_kernels(
            unfused_launches(match.chain)
        ).time_us
        try:
            kernel, source, cache_hit, time_us = resolver(match)
        except FusionError:
            segments.append(
                PlanSegment(
                    name=match.chain.name,
                    kind=KIND_UNFUSED,
                    operators=match.operator_names,
                    time_us=unfused_us,
                    unfused_time_us=unfused_us,
                    source=SOURCE_UNFUSABLE,
                    anchor=match.anchor,
                    chain=match.chain,
                )
            )
            continue
        segments.append(
            PlanSegment(
                name=match.chain.name,
                kind=KIND_FUSED,
                operators=match.operator_names,
                time_us=time_us,
                unfused_time_us=unfused_us,
                source=source,
                anchor=match.anchor,
                chain=match.chain,
                cache_hit=cache_hit,
                kernel=kernel,
            )
        )
    index_of = {
        name: position for position, name in enumerate(extraction.topological_names)
    }
    for op in extraction.residual:
        time_us = simulator.simulate_kernels([_launch_for(op)]).time_us
        segments.append(
            PlanSegment(
                name=op.name,
                kind=KIND_UNFUSED,
                operators=(op.name,),
                time_us=time_us,
                unfused_time_us=time_us,
                source=SOURCE_SIMULATED,
                anchor=index_of[op.name],
            )
        )
    segments.sort(key=lambda segment: segment.anchor)
    return ModelPlan(graph_name=graph_name, segments=segments, extraction=extraction)


def compile_graph(
    graph: OperatorGraph,
    compiler: Optional[FlashFuser] = None,
    *,
    config: Optional[FuserConfig] = None,
    simulator: Optional[PerformanceSimulator] = None,
    validate: bool = True,
    **overrides: object,
) -> ModelPlan:
    """Compile a whole model graph into a :class:`ModelPlan`.

    Parameters
    ----------
    graph:
        The model graph (validated first unless ``validate=False``).
    compiler:
        The :class:`~repro.api.FlashFuser` compiling the extracted chains.
        When omitted, a throwaway compiler is built from ``config`` and the
        ``overrides`` and closed before returning; with ``compiler`` given,
        ``config``/``overrides`` must not be.
    simulator:
        Charges the residual operators and the unfused baselines; defaults
        to library-grade kernel quality on the compiler's device
        (:meth:`~repro.sim.engine.PerformanceSimulator.library_grade`), since
        residual operators run as framework kernels.

    Extracted chains are submitted through :meth:`FlashFuser.submit` — one
    submission per canonical shape, so multi-chain graphs compile distinct
    chains concurrently and identically shaped chains only once — each
    request consulting the compiler's plan cache with exactly the key that
    compiling the same :class:`~repro.ir.graph.GemmChainSpec` directly
    would use.

    Example
    -------
    ::

        from repro import FlashFuser, PlanCache, compile_graph
        from repro.ir.workloads import get_model

        graph = get_model("BERT").layer_graph(seq_len=128)
        with FlashFuser(cache=PlanCache(directory="~/.cache/ff")) as compiler:
            plan = compile_graph(graph, compiler=compiler)
        print(plan.summary())       # fused chains, cache hits, speedup
    """
    if compiler is not None and (config is not None or overrides):
        raise ValueError("pass either compiler= or config=/overrides, not both")
    owns_compiler = compiler is None
    if owns_compiler:
        compiler = FlashFuser(config, **overrides)
    try:
        # The rewrite stage is plan-neutral (it changes which chains exist,
        # never which plan a chain compiles to), so the flag lives in the
        # lint's plan-neutral allowlist rather than the cache key.
        extraction = extract_chains(
            graph, validate=validate, rewrite=compiler.config.rewrite
        )
        simulator = simulator or PerformanceSimulator.library_grade(compiler.device)
        # One submission per canonical shape: a model with N identically
        # shaped chains (e.g. every layer's FFN) runs one fusion search, not
        # N — the same dedup the BatchCompiler applies to its jobs.
        futures: Dict[str, object] = {}
        for match in extraction.matches:
            shape = match.chain.canonical_hash()
            if shape not in futures:
                futures[shape] = compiler.submit(CompileRequest(chain=match.chain))
        # Settle every future before assembly so all chains compile
        # concurrently (and to completion) even when one of them fails.
        settled = {shape: _settle(future) for shape, future in futures.items()}

        def resolve(match: ChainMatch) -> Tuple[CompiledKernel, str, bool, float]:
            outcome = settled[match.chain.canonical_hash()]
            if isinstance(outcome, FusionError):
                raise outcome
            source = SOURCE_CACHE if outcome.cache_hit else SOURCE_SEARCH
            return outcome.kernel, source, outcome.cache_hit, outcome.kernel.time_us

        return assemble_plan(graph.name, extraction, resolve, simulator)
    finally:
        if owns_compiler:
            compiler.close()


def _settle(future):
    """A future's :class:`~repro.api.CompileResponse`, or its FusionError."""
    try:
        return future.result()
    except FusionError as exc:
        return exc


def _launch_for(op: Operator) -> KernelLaunch:
    """A residual operator as one unfused kernel launch."""
    return KernelLaunch(op.name, op.flops(), op.io_bytes())
