"""Pattern matcher and chain extractor for operator graphs.

The fusion search consumes the compact :class:`~repro.ir.graph.GemmChainSpec`
form, but whole models arrive as :class:`~repro.ir.graph.OperatorGraph` DAGs.
This module bridges the two: it scans a graph for the three fusible shapes of
Figure 1 —

* **standard FFN** — GEMM -> activation -> GEMM,
* **gated FFN** — two GEMMs sharing an input, activation on one branch, an
  elementwise multiply joining them, then a GEMM,
* **conv chain** — Conv2d -> activation -> Conv2d, lowered to a GEMM chain
  through im2col

— and partitions the DAG into fusible chain regions plus the residual
operators that keep executing as separate kernels.

Matching is **deterministic and non-overlapping**: activations are visited in
topological order (ties broken by insertion order, which networkx preserves),
each activation anchors at most one candidate, and a candidate touching an
operator already claimed by an earlier match is skipped.  A chain
``G0 -> act -> G1 -> act -> G2`` therefore always yields the *first* region
``(G0, act, G1)`` and leaves the tail unfused.

A region is only fusible when its intermediates are private: every tensor
strictly inside the region must have exactly one consumer (also inside it),
and the weight operands must be graph inputs — otherwise the intermediate
would still need to be materialised in global memory, defeating the fusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.graphs.rewrite import RewriteProvenance, canonicalize
from repro.ir.graph import ChainKind, GemmChainSpec, OperatorGraph
from repro.ir.ops import (
    Activation,
    Conv2d,
    Elementwise,
    ElementwiseKind,
    Gemm,
    Operator,
)


@dataclass(frozen=True)
class ChainMatch:
    """One fusible region found in an operator graph.

    Produced by :func:`extract_chains`: the canonical
    :class:`~repro.ir.graph.GemmChainSpec` the region lowers to, the names
    of the operators it covers, and the topological index anchoring it in
    the schedule.

    Example
    -------
    >>> from repro.ir.builders import build_standard_ffn
    >>> graph, _ = build_standard_ffn("demo", m=64, n=128, k=32, l=32)
    >>> match = extract_chains(graph).matches[0]
    >>> match.kind.value, match.operator_names
    ('standard_ffn', ('demo.gemm0', 'demo.act', 'demo.gemm1'))
    """

    #: The extracted chain, canonically identical to building the same shape
    #: directly (so plan-cache keys are bit-identical).
    chain: GemmChainSpec
    #: Names of the operators the region covers, in topological order.
    operator_names: Tuple[str, ...]
    #: Topological index of the region's first operator (orders segments).
    anchor: int

    @property
    def kind(self) -> ChainKind:
        """The matched chain shape."""
        return self.chain.kind


@dataclass
class ExtractionResult:
    """The partition of a graph into fusible chains and residual operators.

    The complete answer of :func:`extract_chains`: every
    :class:`ChainMatch`, the residual operators no match covers, and the
    topological name order that fixes segment scheduling downstream.

    Example
    -------
    >>> from repro.ir.workloads import get_model
    >>> layer = get_model("BERT").layer_graph(seq_len=128)
    >>> result = extract_chains(layer)
    >>> result.num_chains, result.flops_coverage() > 0.5
    (1, True)
    """

    graph_name: str
    matches: List[ChainMatch]
    #: Operators no match covers, in topological order.
    residual: List[Operator]
    #: All operator names in topological order (segment ordering reference).
    topological_names: Tuple[str, ...]
    #: What the rewrite stage did before matching (``None`` when extraction
    #: ran directly on the caller's graph).
    rewrite: Optional[RewriteProvenance] = None

    @property
    def num_chains(self) -> int:
        """Number of fusible regions found."""
        return len(self.matches)

    def fused_operator_names(self) -> Set[str]:
        """Names of every operator covered by a match."""
        names: Set[str] = set()
        for match in self.matches:
            names.update(match.operator_names)
        return names

    def flops_coverage(self) -> float:
        """Fraction of graph FLOPs inside fusible regions (0.0 when empty)."""
        fused = sum(match.chain.total_flops() for match in self.matches)
        residual = sum(op.flops() for op in self.residual)
        total = fused + residual
        return fused / total if total > 0 else 0.0


def extract_chains(
    graph: OperatorGraph, validate: bool = True, *, rewrite: bool = False
) -> ExtractionResult:
    """Partition ``graph`` into fusible chain regions and residual operators.

    ``validate`` runs :meth:`OperatorGraph.validate` first so malformed
    graphs fail with a clear :class:`~repro.errors.FusionError` instead of
    surfacing as an obscure matching failure.

    ``rewrite`` canonicalizes the graph first
    (:func:`~repro.graphs.rewrite.canonicalize`): export spellings the
    matcher cannot see through — interior reshapes, transposed weights,
    swapped gating operands, missing link activations — are normalized to
    the Figure-1 forms, and the result records what was done in
    :attr:`ExtractionResult.rewrite`.  Off by default so direct calls stay
    a pure match over the caller's exact graph; the graph compiler and the
    model server pass ``FuserConfig.rewrite`` (on by default) instead.

    Example
    -------
    >>> from repro.ir.builders import build_gated_ffn
    >>> graph, spec = build_gated_ffn("ffn", m=64, n=128, k=32, l=32)
    >>> result = extract_chains(graph)
    >>> result.matches[0].chain.same_shape(spec)   # canonically identical
    True
    >>> len(result.residual)
    0
    >>> extract_chains(graph, rewrite=True).rewrite.rules_fired
    ()
    """
    provenance: Optional[RewriteProvenance] = None
    if rewrite:
        rewritten = canonicalize(graph, validate=validate)
        graph, provenance = rewritten.graph, rewritten.provenance
    elif validate:
        graph.validate()
    order = graph.topological_order()
    index_of = {op.name: position for position, op in enumerate(order)}

    matches: List[ChainMatch] = []
    claimed: Set[str] = set()
    for op in order:
        if not isinstance(op, Activation) or op.name in claimed:
            continue
        candidate = _match_at(graph, op)
        if candidate is None:
            continue
        names = {member.name for member in candidate}
        if names & claimed:
            continue
        claimed.update(names)
        members = sorted(candidate, key=lambda member: index_of[member.name])
        chain = _spec_for(graph, op, members, len(matches))
        matches.append(
            ChainMatch(
                chain=chain,
                operator_names=tuple(member.name for member in members),
                anchor=index_of[members[0].name],
            )
        )

    residual = [op for op in order if op.name not in claimed]
    return ExtractionResult(
        graph_name=graph.name,
        matches=matches,
        residual=residual,
        topological_names=tuple(op.name for op in order),
        rewrite=provenance,
    )


# --------------------------------------------------------------------- #
# Matching internals
# --------------------------------------------------------------------- #
def _match_at(graph: OperatorGraph, act: Activation) -> Optional[Sequence[Operator]]:
    """The operators of the fusible region anchored at ``act``, or ``None``."""
    producer = graph.producer_of(act.input_spec.name)
    if producer is None:
        return None
    if not _sole_consumer(graph, producer.output.name, act):
        return None

    if isinstance(producer, Conv2d):
        return _match_conv(graph, producer, act)
    if isinstance(producer, Gemm):
        consumer = _single_consumer(graph, act.output.name)
        if isinstance(consumer, Gemm):
            return _match_standard(graph, producer, act, consumer)
        if isinstance(consumer, Elementwise):
            return _match_gated(graph, producer, act, consumer)
    return None


def _match_standard(
    graph: OperatorGraph, gemm0: Gemm, act: Activation, gemm1: Gemm
) -> Optional[Sequence[Operator]]:
    if gemm1.lhs.name != act.output.name:
        return None
    if (gemm1.m, gemm1.k) != (gemm0.m, gemm0.n):
        return None
    if not (_is_weight(graph, gemm0.rhs.name) and _is_weight(graph, gemm1.rhs.name)):
        return None
    return (gemm0, act, gemm1)


def _match_gated(
    graph: OperatorGraph, gate: Gemm, act: Activation, mul: Elementwise
) -> Optional[Sequence[Operator]]:
    if mul.kind is not ElementwiseKind.MUL:
        return None
    other_name = mul.rhs.name if mul.lhs.name == act.output.name else mul.lhs.name
    up = graph.producer_of(other_name)
    if not isinstance(up, Gemm) or up is gate:
        return None
    # The two branches must share the input activation and project to the
    # same intermediate width for the merged two-branch GEMM0 to exist.
    if up.lhs.name != gate.lhs.name or (up.k, up.n) != (gate.k, gate.n):
        return None
    if not _sole_consumer(graph, up.output.name, mul):
        return None
    down = _single_consumer(graph, mul.output.name)
    if not isinstance(down, Gemm) or down.lhs.name != mul.output.name:
        return None
    if (down.m, down.k) != (gate.m, gate.n):
        return None
    weights = (gate.rhs.name, up.rhs.name, down.rhs.name)
    if not all(_is_weight(graph, name) for name in weights):
        return None
    return (gate, up, act, mul, down)


def _match_conv(
    graph: OperatorGraph, conv1: Conv2d, act: Activation
) -> Optional[Sequence[Operator]]:
    conv2 = _single_consumer(graph, act.output.name)
    if not isinstance(conv2, Conv2d) or conv2.input_spec.name != act.output.name:
        return None
    if conv2.in_channels != conv1.out_channels:
        return None
    if not (_is_weight(graph, conv1.weight.name) and _is_weight(graph, conv2.weight.name)):
        return None
    return (conv1, act, conv2)


def _spec_for(
    graph: OperatorGraph, act: Activation, members: Sequence[Operator], ordinal: int
) -> GemmChainSpec:
    """Lower a matched region to its canonical chain spec.

    The name is provenance only (it is excluded from the canonical identity
    the plan cache keys on): the graph name plus the region's first operator.
    """
    name = f"{graph.name}/{members[0].name}"
    first = members[0]
    if isinstance(first, Conv2d):
        conv2 = members[-1]
        assert isinstance(conv2, Conv2d)
        m, n, k = first.im2col_gemm_dims()
        kh2, kw2 = conv2.kernel_size
        return GemmChainSpec(
            name=name,
            m=m,
            n=n,
            k=k,
            l=conv2.out_channels * kh2 * kw2,
            kind=ChainKind.CONV_CHAIN,
            activation=act.kind,
            dtype=first.input_spec.dtype,
        )
    assert isinstance(first, Gemm)
    last = members[-1]
    assert isinstance(last, Gemm)
    kind = ChainKind.GATED_FFN if len(members) == 5 else ChainKind.STANDARD_FFN
    return GemmChainSpec(
        name=name,
        m=first.m,
        n=first.n,
        k=first.k,
        l=last.n,
        kind=kind,
        activation=act.kind,
        dtype=first.lhs.dtype,
    )


def _single_consumer(graph: OperatorGraph, tensor_name: str) -> Optional[Operator]:
    consumers = graph.consumers_of(tensor_name)
    return consumers[0] if len(consumers) == 1 else None


def _sole_consumer(graph: OperatorGraph, tensor_name: str, expected: Operator) -> bool:
    return graph.consumers_of(tensor_name) == [expected]


def _is_weight(graph: OperatorGraph, tensor_name: str) -> bool:
    """Whether a tensor is a graph input (resident weights, not a produced value)."""
    return graph.producer_of(tensor_name) is None
