"""FlashFuser reproduction: DSM-aware kernel fusion for compute-intensive chains.

The package reproduces "FlashFuser: Expanding the Scale of Kernel Fusion for
Compute-Intensive Operators via Inter-Core Connection" (HPCA 2026) as a pure
Python library: the dsm_comm communication abstraction, the dataflow
analyzer, the fusion search engine, an analytical H100 model and performance
simulator standing in for the paper's hardware testbed, the baseline
strategies it compares against, and one experiment driver per table and
figure of the evaluation.

Typical usage::

    from repro import FuserConfig, FlashFuser
    from repro.ir import get_workload

    config = FuserConfig(device="h100")
    with FlashFuser(config) as compiler:
        kernel = compiler.compile(get_workload("G5").to_spec())
    print(kernel.summary())
"""

from repro.api import (
    CompiledKernel,
    CompileRequest,
    CompileResponse,
    FlashFuser,
    FusionError,
    KernelTable,
    compile_chain,
)
from repro.config import FuserConfig
from repro.hardware import (
    HardwareSpec,
    a100_spec,
    get_device,
    h100_spec,
    list_devices,
    register_device,
)
from repro.ir import GemmChainSpec, OperatorGraph, get_workload, list_workloads
from repro.search import ParallelSearchEngine, SearchEngine
from repro.runtime import (
    BatchCompiler,
    KernelServer,
    PlanCache,
    ServingStats,
    warmup_workloads,
)
from repro.graphs import (
    ChainMatch,
    ExtractionResult,
    ModelPlan,
    ModelServer,
    PlanSegment,
    RewriteProvenance,
    canonicalize,
    compile_graph,
    extract_chains,
)
from repro.bench import (
    BenchConfig,
    LoadDriver,
    PerfReport,
    Trace,
)
from repro.fleet import FleetConfig, FleetStats, ServingFleet
from repro.analysis import OrderedLock, PlanVerifier, run_repo_lint

__all__ = [
    "CompiledKernel",
    "CompileRequest",
    "CompileResponse",
    "FlashFuser",
    "FuserConfig",
    "FusionError",
    "KernelTable",
    "compile_chain",
    "HardwareSpec",
    "a100_spec",
    "h100_spec",
    "get_device",
    "list_devices",
    "register_device",
    "GemmChainSpec",
    "OperatorGraph",
    "get_workload",
    "list_workloads",
    "ChainMatch",
    "ExtractionResult",
    "ModelPlan",
    "ModelServer",
    "PlanSegment",
    "RewriteProvenance",
    "canonicalize",
    "compile_graph",
    "extract_chains",
    "ParallelSearchEngine",
    "SearchEngine",
    "BatchCompiler",
    "KernelServer",
    "PlanCache",
    "ServingStats",
    "warmup_workloads",
    "BenchConfig",
    "LoadDriver",
    "PerfReport",
    "Trace",
    "FleetConfig",
    "FleetStats",
    "ServingFleet",
    "OrderedLock",
    "PlanVerifier",
    "run_repo_lint",
]

__version__ = "0.7.0"
