"""FlashFuser reproduction: DSM-aware kernel fusion for compute-intensive chains.

The package reproduces "FlashFuser: Expanding the Scale of Kernel Fusion for
Compute-Intensive Operators via Inter-Core Connection" (HPCA 2026) as a pure
Python library: the dsm_comm communication abstraction, the dataflow
analyzer, the fusion search engine, an analytical H100 model and performance
simulator standing in for the paper's hardware testbed, the baseline
strategies it compares against, and one experiment driver per table and
figure of the evaluation.

Typical usage::

    from repro import compile_chain, h100_spec
    from repro.ir import get_workload

    chain = get_workload("G5").to_spec()
    plan = compile_chain(chain, device=h100_spec())
    print(plan.summary())
"""

from repro.api import (
    CompiledKernel,
    FlashFuser,
    FusionError,
    KernelTable,
    compile_chain,
)
from repro.hardware import HardwareSpec, a100_spec, h100_spec
from repro.ir import GemmChainSpec, get_workload, list_workloads
from repro.search import ParallelSearchEngine, SearchEngine
from repro.runtime import (
    BatchCompiler,
    KernelServer,
    PlanCache,
    ServingStats,
    warmup_workloads,
)

__all__ = [
    "CompiledKernel",
    "FlashFuser",
    "FusionError",
    "KernelTable",
    "compile_chain",
    "HardwareSpec",
    "a100_spec",
    "h100_spec",
    "GemmChainSpec",
    "get_workload",
    "list_workloads",
    "ParallelSearchEngine",
    "SearchEngine",
    "BatchCompiler",
    "KernelServer",
    "PlanCache",
    "ServingStats",
    "warmup_workloads",
]

__version__ = "0.1.0"
