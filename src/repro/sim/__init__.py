"""GPU simulator: the reproduction's stand-in for the H100 testbed.

Three pieces:

* :mod:`repro.sim.engine` — an analytical performance simulator that turns a
  dataflow analysis (per-level traffic volumes plus the dsm_comm plan) into
  an execution time, modelling wave quantisation, compute/memory overlap and
  kernel launch overheads.  It plays the role of on-device profiling for the
  search engine's top-K candidates and of kernel measurement for the
  evaluation figures.
* :mod:`repro.sim.executor` — a NumPy functional executor that runs the fused
  dataflow tile-by-tile through the dsm_comm reference primitives and checks
  numerical equivalence with the unfused reference computation.
* :mod:`repro.sim.profiler` — a global-memory-traffic profiler (the Nsight
  Compute substitute) used by the Figure 11 experiment.
"""

from repro.sim.engine import KernelLaunch, PerformanceSimulator, SimulationReport
from repro.sim.executor import FunctionalExecutor, make_chain_inputs
from repro.sim.profiler import MemoryProfiler, TrafficReport

__all__ = [
    "KernelLaunch",
    "PerformanceSimulator",
    "SimulationReport",
    "FunctionalExecutor",
    "make_chain_inputs",
    "MemoryProfiler",
    "TrafficReport",
]
