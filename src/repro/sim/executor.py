"""Functional executor: NumPy execution of fused and unfused chains.

The executor proves the fused dataflow *computes the right answer*.  The
unfused reference evaluates the chain with plain matrix products; the fused
path walks the problem cluster-tile by cluster-tile, reproducing the
GEMM0 / GEMM1 / store phases of Figure 7 with the dsm_comm reference
primitives (:mod:`repro.dsm_comm.functional`) providing every inter-block
exchange.  Tests assert the two paths agree to floating-point tolerance for
standard and gated FFNs across cluster geometries.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.functional import (
    dsm_all_exchange,
    dsm_reduce_scatter,
    dsm_shuffle,
)
from repro.dsm_comm.geometry import ClusterGeometry
from repro.ir.graph import ChainKind, GemmChainSpec
from repro.ir.ops import ActivationKind


def _apply_activation(kind: ActivationKind, values: np.ndarray) -> np.ndarray:
    """Apply one activation function elementwise."""
    if kind is ActivationKind.RELU:
        return np.maximum(values, 0.0)
    if kind is ActivationKind.SILU:
        return values / (1.0 + np.exp(-values))
    if kind is ActivationKind.GELU:
        return 0.5 * values * (1.0 + np.tanh(0.7978845608 * (values + 0.044715 * values**3)))
    return values


def make_chain_inputs(chain: GemmChainSpec, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random FP32 inputs for one chain (A, B or B0/B1, D)."""
    rng = np.random.default_rng(seed)
    scale = 0.1
    inputs: Dict[str, np.ndarray] = {
        "A": rng.standard_normal((chain.m, chain.k)).astype(np.float64) * scale,
        "D": rng.standard_normal((chain.n, chain.l)).astype(np.float64) * scale,
    }
    if chain.kind is ChainKind.GATED_FFN:
        inputs["B0"] = rng.standard_normal((chain.k, chain.n)).astype(np.float64) * scale
        inputs["B1"] = rng.standard_normal((chain.k, chain.n)).astype(np.float64) * scale
    else:
        inputs["B"] = rng.standard_normal((chain.k, chain.n)).astype(np.float64) * scale
    return inputs


class FunctionalExecutor:
    """Execute a chain either unfused (reference) or fused (tile-level)."""

    def __init__(self, chain: GemmChainSpec):
        self.chain = chain

    # ------------------------------------------------------------------ #
    # Reference
    # ------------------------------------------------------------------ #
    def run_reference(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Unfused execution: explicit intermediate materialisation."""
        chain = self.chain
        a = inputs["A"]
        if chain.kind is ChainKind.GATED_FFN:
            gate = a @ inputs["B0"]
            up = a @ inputs["B1"]
            intermediate = _apply_activation(chain.activation, gate) * up
        else:
            intermediate = _apply_activation(chain.activation, a @ inputs["B"])
        return intermediate @ inputs["D"]

    # ------------------------------------------------------------------ #
    # Fused tile-level execution
    # ------------------------------------------------------------------ #
    def run_fused(
        self,
        inputs: Dict[str, np.ndarray],
        geometry: ClusterGeometry,
        tile: TileConfig,
    ) -> np.ndarray:
        """Fused execution that routes every exchange through dsm_comm.

        The cluster tile must divide every problem extent (Rule 1); the
        executor raises otherwise because the index arithmetic assumes exact
        tiling.
        """
        chain = self.chain
        cluster = tile.cluster_tile(geometry)
        sizes = chain.dimension_sizes()
        for dim, extent in sizes.items():
            if extent % cluster[dim] != 0:
                raise ValueError(
                    f"cluster tile along {dim} ({cluster[dim]}) does not divide "
                    f"the problem extent ({extent}); pick a Rule-1-compliant tile"
                )

        a = inputs["A"]
        d = inputs["D"]
        gated = chain.kind is ChainKind.GATED_FFN
        output = np.zeros((chain.m, chain.l), dtype=np.float64)

        ct_m, ct_n, ct_k, ct_l = (cluster[d_] for d_ in ("m", "n", "k", "l"))
        blk_m, blk_n, blk_k, blk_l = (tile.block_of(d_) for d_ in ("m", "n", "k", "l"))

        for m0 in range(0, chain.m, ct_m):
            for l0 in range(0, chain.l, ct_l):
                cluster_out = np.zeros((ct_m, ct_l), dtype=np.float64)
                # Temporal loop over the GEMM1 reduction dimension in
                # cluster-tile chunks.
                for n0 in range(0, chain.n, ct_n):
                    c_tiles = self._gemm0_phase(a, inputs, m0, n0, geometry, tile, gated)
                    partial = self._gemm1_and_store_phase(
                        c_tiles, d, m0, n0, l0, geometry, tile
                    )
                    cluster_out += partial
                output[m0 : m0 + ct_m, l0 : l0 + ct_l] = cluster_out
        return output

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def _gemm0_phase(
        self,
        a: np.ndarray,
        inputs: Dict[str, np.ndarray],
        m0: int,
        n0: int,
        geometry: ClusterGeometry,
        tile: TileConfig,
        gated: bool,
    ) -> Dict[tuple, np.ndarray]:
        """Compute activated C tiles for one cluster (m0, n0) position.

        Returns a mapping from (mi, ni) block coordinates to the complete,
        activated C block tile.
        """
        chain = self.chain
        blk_m, blk_n = tile.block_m, tile.block_n
        k_chunk = chain.k // geometry.cls_k

        c_tiles: Dict[tuple, np.ndarray] = {}
        for mi in range(geometry.cls_m):
            row = slice(m0 + mi * blk_m, m0 + (mi + 1) * blk_m)
            for ni in range(geometry.cls_n):
                col = slice(n0 + ni * blk_n, n0 + (ni + 1) * blk_n)
                if gated:
                    gate_partials: List[np.ndarray] = []
                    up_partials: List[np.ndarray] = []
                    for ki in range(geometry.cls_k):
                        kslice = slice(ki * k_chunk, (ki + 1) * k_chunk)
                        gate_partials.append(a[row, kslice] @ inputs["B0"][kslice, col])
                        up_partials.append(a[row, kslice] @ inputs["B1"][kslice, col])
                    gate = dsm_all_exchange(gate_partials, op="add")[0]
                    up = dsm_all_exchange(up_partials, op="add")[0]
                    activated = _apply_activation(chain.activation, gate)
                    # The Mul variant of dsm_all_exchange combines the two
                    # branch results held by different blocks.
                    c_tiles[(mi, ni)] = dsm_all_exchange([activated, up], op="mul")[0]
                else:
                    partials = []
                    for ki in range(geometry.cls_k):
                        kslice = slice(ki * k_chunk, (ki + 1) * k_chunk)
                        partials.append(a[row, kslice] @ inputs["B"][kslice, col])
                    full = dsm_all_exchange(partials, op="add")[0]
                    c_tiles[(mi, ni)] = _apply_activation(chain.activation, full)
        return c_tiles

    def _gemm1_and_store_phase(
        self,
        c_tiles: Dict[tuple, np.ndarray],
        d: np.ndarray,
        m0: int,
        n0: int,
        l0: int,
        geometry: ClusterGeometry,
        tile: TileConfig,
    ) -> np.ndarray:
        """GEMM1 + store phases for one cluster position.

        Shuffle groups along the n partition exchange their C slices, every
        block multiplies its gathered row with its D slice, and the partial
        E tiles of different shuffle groups are combined with the
        reduce-scatter collective.
        """
        blk_n, blk_l = tile.block_n, tile.block_l
        ct_m = tile.block_m * geometry.cls_m
        ct_l = blk_l * geometry.cls_l
        shuffle_size = geometry.cls_shuffle

        partial = np.zeros((ct_m, ct_l), dtype=np.float64)
        for mi in range(geometry.cls_m):
            row_out = slice(mi * tile.block_m, (mi + 1) * tile.block_m)
            n_indices = list(range(geometry.cls_n))
            groups = [
                n_indices[start : start + shuffle_size]
                for start in range(0, len(n_indices), shuffle_size)
            ]
            for li in range(geometry.cls_l):
                col_out = slice(li * blk_l, (li + 1) * blk_l)
                d_col = slice(l0 + li * blk_l, l0 + (li + 1) * blk_l)
                group_partials: List[np.ndarray] = []
                for group in groups:
                    # Shuffle: every block of the group gathers the full row
                    # of C owned by the group.
                    slices = [c_tiles[(mi, ni)] for ni in group]
                    gathered = dsm_shuffle(slices, axis=1)[0]
                    d_rows = np.concatenate(
                        [
                            d[n0 + ni * blk_n : n0 + (ni + 1) * blk_n, d_col]
                            for ni in group
                        ],
                        axis=0,
                    )
                    group_partials.append(gathered @ d_rows)
                if len(group_partials) > 1:
                    shards = dsm_reduce_scatter(group_partials, op="add", axis=1)
                    combined = np.concatenate(shards, axis=1)
                else:
                    combined = group_partials[0]
                partial[row_out, col_out] += combined
        return partial
