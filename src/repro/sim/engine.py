"""Analytical performance simulator.

The simulator estimates execution time for two kinds of work:

* a **fused plan** described by a :class:`~repro.dataflow.analyzer
  .DataflowResult` — per-level traffic is charged against per-level
  bandwidth, the dsm_comm collectives add latency and fabric traffic, and
  compute is charged against the tensor-core roofline, with partial overlap
  between the compute and memory pipelines (asynchronous TMA copies);
* a sequence of **unfused kernel launches** (:class:`KernelLaunch`) — each
  kernel pays its own roofline time plus a launch overhead, which is how the
  library/compiler baselines execute operator chains they cannot fuse.

The absolute numbers are calibrated to H100 ballpark figures; what the
reproduction relies on is that the *relative* ordering of strategies follows
their data-movement behaviour, which is what the paper's evaluation
demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.dataflow.analyzer import DataflowResult
from repro.hardware.memory import MemoryLevelName
from repro.hardware.spec import HardwareSpec


@dataclass(frozen=True)
class KernelLaunch:
    """One unfused kernel: its FLOPs and its global-memory traffic."""

    name: str
    flops: float
    global_bytes: float

    def __post_init__(self) -> None:
        if self.flops < 0 or self.global_bytes < 0:
            raise ValueError("flops and global_bytes must be non-negative")


@dataclass
class SimulationReport:
    """Result of simulating one kernel or kernel sequence."""

    time_us: float
    compute_us: float
    memory_us: float
    launch_us: float
    global_bytes: float
    dsm_bytes: float
    per_level_us: Dict[str, float] = field(default_factory=dict)
    kernels: int = 1

    @property
    def tflops(self) -> float:
        """Sustained TFLOPS implied by the simulated time (needs ``flops``)."""
        return self._flops / self.time_us / 1e6 if self.time_us > 0 else 0.0

    _flops: float = 0.0

    def with_flops(self, flops: float) -> "SimulationReport":
        """Attach the FLOP count so :attr:`tflops` can be computed."""
        self._flops = flops
        return self

    # ------------------------------------------------------------------ #
    # Serialization (used by the runtime plan cache)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, float]:
        """Serialize the report to plain JSON-compatible data."""
        return {
            "time_us": self.time_us,
            "compute_us": self.compute_us,
            "memory_us": self.memory_us,
            "launch_us": self.launch_us,
            "global_bytes": self.global_bytes,
            "dsm_bytes": self.dsm_bytes,
            "per_level_us": dict(self.per_level_us),
            "kernels": self.kernels,
            "flops": self._flops,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationReport":
        """Rebuild a report from :meth:`to_dict` output."""
        report = cls(
            time_us=float(payload["time_us"]),
            compute_us=float(payload["compute_us"]),
            memory_us=float(payload["memory_us"]),
            launch_us=float(payload["launch_us"]),
            global_bytes=float(payload["global_bytes"]),
            dsm_bytes=float(payload["dsm_bytes"]),
            per_level_us={
                str(k): float(v) for k, v in payload.get("per_level_us", {}).items()
            },
            kernels=int(payload.get("kernels", 1)),
        )
        return report.with_flops(float(payload.get("flops", 0.0)))


class PerformanceSimulator:
    """Estimate kernel execution times on the modelled GPU.

    Parameters
    ----------
    device:
        Hardware model.
    compute_efficiency:
        Sustained fraction of peak tensor-core throughput.
    overlap:
        Fraction of memory time hidden behind compute (TMA async copies and
        software pipelining); the exposed memory time is
        ``(1 - overlap) * memory_us`` when compute dominates, and the full
        memory time otherwise.
    launch_overhead_us:
        Per-kernel launch, dispatch and tail latency.
    memory_efficiency:
        Fraction of peak HBM bandwidth the kernels sustain.  Specialised,
        TMA-driven kernels reach ~0.9; generic library kernels for the
        skinny (M=128) shapes of the evaluation sustain noticeably less.
    """

    def __init__(
        self,
        device: HardwareSpec,
        compute_efficiency: float = 0.75,
        overlap: float = 0.8,
        launch_overhead_us: float = 4.0,
        memory_efficiency: float = 0.92,
    ) -> None:
        if not 0.0 < compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 <= overlap < 1.0:
            raise ValueError("overlap must be in [0, 1)")
        if not 0.0 < memory_efficiency <= 1.0:
            raise ValueError("memory_efficiency must be in (0, 1]")
        self.device = device
        self.compute_efficiency = compute_efficiency
        self.overlap = overlap
        self.launch_overhead_us = launch_overhead_us
        self.memory_efficiency = memory_efficiency

    @classmethod
    def library_grade(cls, device: HardwareSpec) -> "PerformanceSimulator":
        """A simulator calibrated to library (PyTorch-like) kernel quality.

        This is the efficiency point Table I profiles standard framework
        execution at; the transformer timing model and the graph compiler's
        residual (unfused) operators are both charged here, while fused
        FlashFuser kernels use the specialised-kernel defaults.
        """
        return cls(
            device,
            compute_efficiency=0.45,
            overlap=0.5,
            launch_overhead_us=8.0,
            memory_efficiency=0.65,
        )

    # ------------------------------------------------------------------ #
    # Fused plans
    # ------------------------------------------------------------------ #
    def simulate_plan(self, result: DataflowResult) -> SimulationReport:
        """Simulate a fused kernel described by a dataflow analysis."""
        chain = result.chain
        cluster_size = result.geometry.blocks_per_cluster
        hierarchy = self.device.memory_hierarchy_for_cluster(cluster_size)

        per_level_us: Dict[str, float] = {}
        for name, volume in result.volumes.items():
            if volume <= 0:
                continue
            level = (
                hierarchy.get(name)
                if hierarchy.has(name)
                else hierarchy.get(MemoryLevelName.GLOBAL)
            )
            bandwidth_gbps = level.bandwidth_gbps
            if name in (MemoryLevelName.REGISTER, MemoryLevelName.SMEM):
                bandwidth_gbps *= self._occupied_sms(result)
            if name in (MemoryLevelName.GLOBAL, MemoryLevelName.L2):
                bandwidth_gbps *= self.memory_efficiency
            per_level_us[name] = volume / (bandwidth_gbps * 1e3)

        # dsm_comm latency term (per-invocation barrier/latency cost).
        dsm_latency_us = 0.0
        if self.device.dsm is not None and result.geometry.uses_dsm:
            dsm_latency_us = result.comm_plan.time_us(
                self.device.dsm, self.device.clock_ghz
            ) - result.comm_plan.dsm_bytes() / (
                self.device.dsm.bandwidth_gbps(
                    min(max(cluster_size, 2), self.device.dsm.max_cluster_size)
                )
                * 1e3
            )
            dsm_latency_us = max(0.0, dsm_latency_us)

        memory_us = max(per_level_us.values(), default=0.0) + dsm_latency_us
        compute_us = self._compute_time_us(chain.total_flops(), result)
        time_us = self._combine(compute_us, memory_us) + self.launch_overhead_us

        return SimulationReport(
            time_us=time_us,
            compute_us=compute_us,
            memory_us=memory_us,
            launch_us=self.launch_overhead_us,
            global_bytes=result.global_bytes,
            dsm_bytes=result.dsm_bytes,
            per_level_us=per_level_us,
            kernels=1,
        ).with_flops(chain.total_flops())

    def profile(self, result: DataflowResult) -> float:
        """Profiler callback for the search engine (time in microseconds)."""
        return self.simulate_plan(result).time_us

    # ------------------------------------------------------------------ #
    # Unfused kernel sequences
    # ------------------------------------------------------------------ #
    def simulate_kernels(self, kernels: Sequence[KernelLaunch]) -> SimulationReport:
        """Simulate a sequence of separate kernel launches."""
        total_time = 0.0
        total_compute = 0.0
        total_memory = 0.0
        total_bytes = 0.0
        total_flops = 0.0
        global_bw = self.device.global_bandwidth_gbps * self.memory_efficiency
        for kernel in kernels:
            compute_us = kernel.flops / (
                self.device.peak_fp16_tflops * self.compute_efficiency * 1e6
            )
            memory_us = kernel.global_bytes / (global_bw * 1e3)
            total_time += self._combine(compute_us, memory_us) + self.launch_overhead_us
            total_compute += compute_us
            total_memory += memory_us
            total_bytes += kernel.global_bytes
            total_flops += kernel.flops
        return SimulationReport(
            time_us=total_time,
            compute_us=total_compute,
            memory_us=total_memory,
            launch_us=self.launch_overhead_us * len(kernels),
            global_bytes=total_bytes,
            dsm_bytes=0.0,
            per_level_us={MemoryLevelName.GLOBAL: total_memory},
            kernels=len(kernels),
        ).with_flops(total_flops)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _combine(self, compute_us: float, memory_us: float) -> float:
        """Overlap compute and memory pipelines."""
        if compute_us >= memory_us:
            return compute_us + (1.0 - self.overlap) * memory_us
        return memory_us + (1.0 - self.overlap) * compute_us

    def _compute_time_us(self, flops: float, result: DataflowResult) -> float:
        efficiency = self.compute_efficiency
        # Small launches do not fill the machine; derate by occupancy.
        occupancy = self._occupied_sms(result) / self.device.num_sms
        efficiency *= max(0.25, min(1.0, occupancy))
        return flops / (self.device.peak_fp16_tflops * efficiency * 1e6)

    def _occupied_sms(self, result: DataflowResult) -> int:
        chain = result.chain
        blocks = 1
        for dim in ("m", "n", "k", "l"):
            if result.schedule.is_spatial(dim):
                extent = chain.dimension_sizes()[dim]
                blocks *= max(1, extent // max(1, result.tile.block_of(dim)))
            else:
                blocks *= result.geometry.size_of(dim)
        return max(1, min(self.device.num_sms, blocks))
