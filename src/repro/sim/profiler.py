"""Global-memory-traffic profiler (Nsight Compute substitute).

Figure 11 of the paper compares the global memory traffic of FlashFuser
kernels against PyTorch's unfused execution, measured with Nsight Compute.
Without hardware counters, the reproduction derives the same quantities from
the analytical models: the unfused traffic comes from each operator's
inputs/outputs (intermediates make a full round trip), and the fused traffic
from the dataflow analysis of the selected plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.analyzer import DataflowResult
from repro.ir.graph import ChainKind, GemmChainSpec


@dataclass(frozen=True)
class TrafficReport:
    """Global-memory traffic of one execution strategy, in bytes."""

    strategy: str
    read_bytes: float
    write_bytes: float

    @property
    def total_bytes(self) -> float:
        """Reads plus writes."""
        return self.read_bytes + self.write_bytes


class MemoryProfiler:
    """Derive global-memory traffic for fused and unfused executions."""

    # ------------------------------------------------------------------ #
    # Unfused (PyTorch-style) execution
    # ------------------------------------------------------------------ #
    def profile_unfused(self, chain: GemmChainSpec) -> TrafficReport:
        """Traffic of the unfused chain: every intermediate round-trips."""
        reads = chain.a_bytes + chain.b_bytes + chain.d_bytes
        writes = chain.e_bytes
        # GEMM0 writes C, the activation reads and rewrites it, GEMM1 reads it.
        intermediate = chain.c_bytes
        writes += intermediate  # GEMM0 output
        reads += intermediate  # activation input
        writes += intermediate  # activation output
        reads += intermediate  # GEMM1 input
        if chain.kind is ChainKind.GATED_FFN:
            # The second branch result also round-trips, and the elementwise
            # multiply reads both branches and writes the combined tensor.
            reads += intermediate
            writes += intermediate
        return TrafficReport("unfused", read_bytes=float(reads), write_bytes=float(writes))

    # ------------------------------------------------------------------ #
    # Fused execution
    # ------------------------------------------------------------------ #
    def profile_fused(self, result: DataflowResult) -> TrafficReport:
        """Traffic of a fused plan, split into reads and writes."""
        chain = result.chain
        total = result.global_bytes
        writes = float(chain.e_bytes)
        # Any global spill of the persistent intermediate adds both reads and
        # writes; attribute half of the extra traffic to each direction.
        extra = max(0.0, total - writes - chain.a_bytes - chain.weight_bytes())
        reads = total - writes - extra / 2.0
        writes += extra / 2.0
        return TrafficReport("fused", read_bytes=max(0.0, reads), write_bytes=writes)

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def traffic_ratio(self, chain: GemmChainSpec, result: DataflowResult) -> float:
        """Unfused traffic divided by fused traffic (Figure 11's metric)."""
        unfused = self.profile_unfused(chain).total_bytes
        fused = self.profile_fused(result).total_bytes
        return unfused / fused if fused > 0 else float("inf")

    def reduction_percent(self, chain: GemmChainSpec, result: DataflowResult) -> float:
        """Percentage of global traffic removed by fusion."""
        ratio = self.traffic_ratio(chain, result)
        if ratio <= 0:
            return 0.0
        return (1.0 - 1.0 / ratio) * 100.0
