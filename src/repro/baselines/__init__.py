"""Baseline execution strategies the paper compares against.

Each baseline reimplements, at the strategy level, how a published system
executes a compute-intensive operator chain, and charges it on the same
performance simulator FlashFuser uses:

=====================  =================================================
module                 system it models
=====================  =================================================
``unfused``            PyTorch / cuBLAS: every operator is its own kernel
``epilogue_fusion``    TVM/Relay: activation fused into the producer GEMM
``graph_subst``        TASO: graph substitutions (parallel-branch merge),
                       no chain fusion
``fixed_order``        BOLT: reg/SMEM chain fusion with a fixed block
                       execution order
``smem_fusion``        Chimera / MCFuser: analytical SMEM-only chain fusion
``tuned_library``      TensorRT: tuned unfused kernels + epilogue fusion
``cluster_handwritten``Mirage-style hand-written cluster kernel (fixed
                       geometry, no search)
``pipelined``          PipeThreader-style inter-kernel pipelining
=====================  =================================================

:mod:`repro.baselines.registry` exposes them by name for the experiments.
"""

from repro.baselines.base import Baseline, BaselineResult
from repro.baselines.unfused import PyTorchBaseline
from repro.baselines.epilogue_fusion import RelayBaseline
from repro.baselines.graph_subst import TasoBaseline
from repro.baselines.fixed_order import BoltBaseline
from repro.baselines.smem_fusion import ChimeraBaseline
from repro.baselines.tuned_library import TensorRTBaseline
from repro.baselines.cluster_handwritten import MirageBaseline
from repro.baselines.pipelined import PipeThreaderBaseline
from repro.baselines.registry import (
    BASELINE_NAMES,
    COMPILER_BASELINES,
    LIBRARY_BASELINES,
    make_baseline,
)

__all__ = [
    "Baseline",
    "BaselineResult",
    "PyTorchBaseline",
    "RelayBaseline",
    "TasoBaseline",
    "BoltBaseline",
    "ChimeraBaseline",
    "TensorRTBaseline",
    "MirageBaseline",
    "PipeThreaderBaseline",
    "BASELINE_NAMES",
    "COMPILER_BASELINES",
    "LIBRARY_BASELINES",
    "make_baseline",
]
