"""Mirage-style baseline: hand-written cluster kernels from a fixed menu.

Hand-written DSM kernels (the paper compares against Mirage in Figure 14) do
exploit the SM-to-SM fabric, but only through a small menu of author-chosen
templates — fixed cluster geometry, loop order and tile sizes.  Shapes no
template supports legally fall back to unfused execution, and shapes a
template does support get whatever that template's configuration delivers,
with no per-shape search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.baselines.base import Baseline, BaselineResult, epilogue_fused_launches
from repro.dataflow.analyzer import DataflowAnalyzer
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.ir.graph import GemmChainSpec
from repro.search.pruning import Pruner
from repro.search.space import FusionCandidate


@dataclass(frozen=True)
class HandwrittenTemplate:
    """One author-written kernel template."""

    label: str
    schedule: LoopSchedule
    geometry: ClusterGeometry
    tile: TileConfig


class MirageBaseline(Baseline):
    """Fixed-template DSM fusion without any search."""

    name = "mirage"
    COMPUTE_EFFICIENCY = 0.68
    MEMORY_EFFICIENCY = 0.85
    OVERLAP = 0.75
    LAUNCH_OVERHEAD_US = 4.0

    #: The template menu: a K-partitioned cluster kernel for large reduction
    #: dimensions (the LLM FFN case the authors targeted) and a small 2x2
    #: output-partitioned cluster kernel for modest shapes.
    TEMPLATES: Tuple[HandwrittenTemplate, ...] = (
        HandwrittenTemplate(
            label="k_partitioned_cluster",
            schedule=LoopSchedule.from_string(spatial="km", temporal="nl"),
            geometry=ClusterGeometry(cls_m=1, cls_n=1, cls_k=16, cls_l=16),
            tile=TileConfig(128, 128, 256, 128),
        ),
        HandwrittenTemplate(
            label="k_partitioned_cluster_small",
            schedule=LoopSchedule.from_string(spatial="km", temporal="nl"),
            geometry=ClusterGeometry(cls_m=1, cls_n=1, cls_k=8, cls_l=8),
            tile=TileConfig(128, 128, 256, 128),
        ),
        HandwrittenTemplate(
            label="output_partitioned_cluster",
            schedule=LoopSchedule.from_string(spatial="m", temporal="nlk"),
            geometry=ClusterGeometry(cls_m=1, cls_n=2, cls_k=1, cls_l=2),
            tile=TileConfig(128, 128, 64, 128),
        ),
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.analyzer = DataflowAnalyzer(self.device, include_dsm=True)
        self._pruner = Pruner(self.device, include_dsm=True)

    def run(self, chain: GemmChainSpec) -> BaselineResult:
        template = self._select_template(chain)
        if template is None:
            launches = epilogue_fused_launches(chain)
            report = self.simulator.simulate_kernels(launches)
            return BaselineResult(
                strategy=self.name,
                workload=chain.name,
                time_us=report.time_us,
                global_bytes=report.global_bytes,
                kernels=len(launches),
                fused=False,
                notes="no hand-written template supports this shape",
            ).with_flops(chain.total_flops())

        result = self.analyzer.analyze(
            chain, template.schedule, template.tile, template.geometry
        )
        report = self.simulator.simulate_plan(result)
        return BaselineResult(
            strategy=self.name,
            workload=chain.name,
            time_us=report.time_us,
            global_bytes=report.global_bytes,
            kernels=1,
            fused=True,
            notes=f"template {template.label}",
        ).with_flops(chain.total_flops())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _select_template(self, chain: GemmChainSpec) -> Optional[HandwrittenTemplate]:
        """First template whose fixed configuration is legal for the shape."""
        for template in self.TEMPLATES:
            candidate = FusionCandidate(
                chain=chain,
                schedule=template.schedule,
                tile=template.tile,
                geometry=template.geometry,
            )
            if self._pruner.passes(candidate):
                return template
        return None
