"""TensorRT baseline: highly tuned unfused kernels with epilogue fusion.

TensorRT selects aggressively tuned kernels per shape and fuses
memory-intensive epilogues, but it does not fuse consecutive
compute-intensive operators; the intermediate still crosses global memory.
Relative to the PyTorch baseline it sustains a higher fraction of peak and
pays less launch overhead.
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import Baseline, epilogue_fused_launches
from repro.ir.graph import GemmChainSpec
from repro.sim.engine import KernelLaunch


class TensorRTBaseline(Baseline):
    """Tuned library execution: better kernels, same fusion scope as Relay."""

    name = "tensorrt"
    # TensorRT's tactic selection sustains a higher fraction of peak and
    # launches with less overhead than framework dispatch.
    COMPUTE_EFFICIENCY = 0.5
    MEMORY_EFFICIENCY = 0.68
    OVERLAP = 0.7
    LAUNCH_OVERHEAD_US = 5.0

    def kernel_launches(self, chain: GemmChainSpec) -> List[KernelLaunch]:
        return epilogue_fused_launches(chain)
