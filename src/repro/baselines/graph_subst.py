"""TASO baseline: automatic graph substitution without chain fusion.

TASO rewrites the graph with functionally equivalent substitutions — most
relevantly, merging the two parallel GEMM branches of a gated FFN into one
wider GEMM so the shared input activation is read once — but it cannot fuse
*sequential* compute-intensive operators, so the intermediate still travels
through global memory.
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import Baseline, epilogue_fused_launches
from repro.ir.graph import ChainKind, GemmChainSpec
from repro.sim.engine import KernelLaunch


class TasoBaseline(Baseline):
    """Graph substitution: merges parallel branches, keeps chains unfused."""

    name = "taso"
    # TASO re-emits the substituted graph through library kernels without
    # tuned epilogues, landing slightly below eager PyTorch overall.
    COMPUTE_EFFICIENCY = 0.35
    MEMORY_EFFICIENCY = 0.5
    OVERLAP = 0.5
    LAUNCH_OVERHEAD_US = 8.0

    def kernel_launches(self, chain: GemmChainSpec) -> List[KernelLaunch]:
        if chain.kind is not ChainKind.GATED_FFN:
            return epilogue_fused_launches(chain)
        # Substitution: concatenate the two branch weights along N and run a
        # single (m x 2n x k) GEMM, then one elementwise kernel applies the
        # activation and gate multiplication.
        c = chain.c_bytes
        merged_gemm = KernelLaunch(
            "gemm0_merged",
            chain.gemm0_flops(),
            chain.a_bytes + chain.b_bytes + 2 * c,
        )
        glue = KernelLaunch("silu_mul", 3 * (c // chain.itemsize), 3 * c)
        gemm1 = KernelLaunch(
            "gemm1", chain.gemm1_flops(), c + chain.d_bytes + chain.e_bytes
        )
        return [merged_gemm, glue, gemm1]
