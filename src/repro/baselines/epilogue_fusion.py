"""TVM / Relay baseline: compute + epilogue (activation) fusion only.

Relay's fusion pass attaches memory-intensive consumers (activations, bias
adds, elementwise multiplies) to the preceding compute-intensive operator,
but never fuses two compute-intensive operators together — so the
intermediate matrix still round-trips through global memory between the two
GEMMs.
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import Baseline, epilogue_fused_launches
from repro.ir.graph import GemmChainSpec
from repro.sim.engine import KernelLaunch


class RelayBaseline(Baseline):
    """Epilogue fusion: GEMM + activation in one kernel, chains unfused."""

    name = "relay"
    # TVM-generated tensor-core kernels fall well short of cuBLAS on the
    # skinny shapes of the evaluation, which is why Relay trails PyTorch in
    # Figure 10 despite fusing the activation epilogue.
    COMPUTE_EFFICIENCY = 0.22
    MEMORY_EFFICIENCY = 0.42
    OVERLAP = 0.5
    LAUNCH_OVERHEAD_US = 8.0

    def kernel_launches(self, chain: GemmChainSpec) -> List[KernelLaunch]:
        return epilogue_fused_launches(chain)
