"""BOLT baseline: reg/SMEM chain fusion with a fixed block execution order.

BOLT pattern-matches GEMM chains onto CUTLASS back-to-back templates: the
intermediate lives in registers or SMEM of a single thread block, the block
execution order is the template's fixed one (no loop rescheduling), and the
tile sizes come from manual tuning over a small menu.  When the intermediate
tile no longer fits on a single SM, BOLT abandons fusion and falls back to
separate (epilogue-fused) kernels — exactly the behaviour the paper observes
for the larger workloads.
"""

from __future__ import annotations


from repro.baselines.base import Baseline, BaselineResult, epilogue_fused_launches
from repro.dataflow.analyzer import DataflowAnalyzer
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.ir.graph import GemmChainSpec


class BoltBaseline(Baseline):
    """Fixed-schedule, single-SM fusion with unfused fallback."""

    name = "bolt"
    # The fixed-order CUTLASS back-to-back templates are tuned for square
    # shapes; on the evaluation's skinny chains they sustain little of peak,
    # which is why BOLT is the slowest baseline in Figure 10.
    COMPUTE_EFFICIENCY = 0.22
    MEMORY_EFFICIENCY = 0.38
    OVERLAP = 0.55
    LAUNCH_OVERHEAD_US = 6.0

    #: The CUTLASS back-to-back template keeps the whole N extent resident
    #: per M tile and iterates K innermost; the block order is not searched.
    FIXED_SCHEDULE = LoopSchedule.from_string(spatial="m", temporal="lnk")
    #: Tuning menu of block tiles BOLT's templates instantiate.
    TILE_MENU = (
        TileConfig(128, 128, 32, 128),
        TileConfig(64, 64, 32, 64),
        TileConfig(128, 64, 32, 64),
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.analyzer = DataflowAnalyzer(self.device, include_dsm=False)

    def run(self, chain: GemmChainSpec) -> BaselineResult:
        plan = self._try_fuse(chain)
        if plan is None:
            launches = epilogue_fused_launches(chain)
            report = self.simulator.simulate_kernels(launches)
            return BaselineResult(
                strategy=self.name,
                workload=chain.name,
                time_us=report.time_us,
                global_bytes=report.global_bytes,
                kernels=len(launches),
                fused=False,
                notes="intermediate exceeds single-SM capacity; fusion abandoned",
            ).with_flops(chain.total_flops())

        report = self.simulator.simulate_plan(plan)
        return BaselineResult(
            strategy=self.name,
            workload=chain.name,
            time_us=report.time_us,
            global_bytes=report.global_bytes,
            kernels=1,
            fused=True,
            notes="cutlass b2b template",
        ).with_flops(chain.total_flops())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _try_fuse(self, chain: GemmChainSpec):
        """Analyse the fixed-order template for each menu tile; keep the
        first one whose intermediate stays on chip."""
        geometry = ClusterGeometry.single_block()
        sizes = chain.dimension_sizes()
        for tile in self.TILE_MENU:
            if any(tile.block_of(dim) > sizes[dim] for dim in sizes):
                continue
            if any(sizes[dim] % tile.block_of(dim) != 0 for dim in sizes):
                continue
            result = self.analyzer.analyze(chain, self.FIXED_SCHEDULE, tile, geometry)
            if result.feasible:
                return result
        return None
