"""Shared infrastructure for baseline execution strategies."""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import List, Optional

from repro.hardware.spec import HardwareSpec, h100_spec
from repro.ir.graph import ChainKind, GemmChainSpec
from repro.sim.engine import KernelLaunch, PerformanceSimulator


@dataclass
class BaselineResult:
    """Outcome of running one chain under one baseline strategy."""

    strategy: str
    workload: str
    time_us: float
    global_bytes: float
    kernels: int
    fused: bool
    notes: str = ""

    @property
    def tflops(self) -> float:
        """Sustained TFLOPS given the chain FLOPs recorded in ``_flops``."""
        return self._flops / self.time_us / 1e6 if self.time_us > 0 else 0.0

    _flops: float = 0.0

    def with_flops(self, flops: float) -> "BaselineResult":
        """Attach the chain FLOP count for TFLOPS reporting."""
        self._flops = flops
        return self


class Baseline(ABC):
    """Base class for baseline strategies.

    Subclasses implement :meth:`kernel_launches` (for unfused strategies) or
    override :meth:`run` entirely (for strategies that fuse).  The class
    attributes below calibrate each system's kernel quality: how much of
    peak compute and HBM bandwidth its kernels sustain on the evaluation's
    skinny (M=128) shapes, and how much per-kernel dispatch overhead its
    runtime adds.  Published microbenchmarks and the paper's own relative
    results guided the values; the reproduction relies on their ordering,
    not their absolute magnitudes.
    """

    #: Display name used in figures and tables.
    name: str = "baseline"
    #: Fraction of peak tensor-core throughput this system's kernels sustain.
    COMPUTE_EFFICIENCY: float = 0.5
    #: Fraction of peak HBM bandwidth this system's kernels sustain.
    MEMORY_EFFICIENCY: float = 0.65
    #: Compute/memory overlap quality of the generated or library kernels.
    OVERLAP: float = 0.6
    #: Per-kernel launch plus framework dispatch overhead in microseconds.
    LAUNCH_OVERHEAD_US: float = 8.0

    def __init__(
        self,
        device: Optional[HardwareSpec] = None,
        simulator: Optional[PerformanceSimulator] = None,
    ) -> None:
        self.device = device or h100_spec()
        self.simulator = simulator or PerformanceSimulator(
            self.device,
            compute_efficiency=self.COMPUTE_EFFICIENCY,
            overlap=self.OVERLAP,
            launch_overhead_us=self.LAUNCH_OVERHEAD_US,
            memory_efficiency=self.MEMORY_EFFICIENCY,
        )

    # ------------------------------------------------------------------ #
    # Default unfused execution path
    # ------------------------------------------------------------------ #
    def kernel_launches(self, chain: GemmChainSpec) -> List[KernelLaunch]:
        """The kernel sequence this strategy launches for ``chain``.

        The default is fully unfused execution; subclasses override this to
        express their fusion policy.
        """
        return unfused_launches(chain)

    def run(self, chain: GemmChainSpec) -> BaselineResult:
        """Execute ``chain`` under this strategy on the simulator."""
        launches = self.kernel_launches(chain)
        report = self.simulator.simulate_kernels(launches)
        return BaselineResult(
            strategy=self.name,
            workload=chain.name,
            time_us=report.time_us,
            global_bytes=report.global_bytes,
            kernels=len(launches),
            fused=len(launches) == 1,
        ).with_flops(chain.total_flops())


# ---------------------------------------------------------------------- #
# Kernel-sequence builders shared by several baselines
# ---------------------------------------------------------------------- #
def unfused_launches(chain: GemmChainSpec) -> List[KernelLaunch]:
    """Fully unfused execution: one kernel per operator.

    GEMM0 (twice for gated FFNs), a separate elementwise activation kernel,
    an elementwise multiply for gated FFNs, and GEMM1.  Every intermediate
    makes a full round trip through global memory.
    """
    launches: List[KernelLaunch] = []
    c = chain.c_bytes
    if chain.kind is ChainKind.GATED_FFN:
        per_branch_b = chain.b_bytes / 2
        launches.append(
            KernelLaunch("gemm0_gate", chain.gemm0_flops() / 2, chain.a_bytes + per_branch_b + c)
        )
        launches.append(
            KernelLaunch("gemm0_up", chain.gemm0_flops() / 2, chain.a_bytes + per_branch_b + c)
        )
        launches.append(KernelLaunch("activation", c // chain.itemsize, 2 * c))
        launches.append(KernelLaunch("mul", c // chain.itemsize, 3 * c))
    else:
        launches.append(
            KernelLaunch("gemm0", chain.gemm0_flops(), chain.a_bytes + chain.b_bytes + c)
        )
        launches.append(KernelLaunch("activation", c // chain.itemsize, 2 * c))
    launches.append(
        KernelLaunch("gemm1", chain.gemm1_flops(), c + chain.d_bytes + chain.e_bytes)
    )
    return launches


def epilogue_fused_launches(chain: GemmChainSpec) -> List[KernelLaunch]:
    """GEMM kernels with activations fused into their epilogues.

    The intermediate still round-trips through global memory between the two
    GEMMs, but the separate elementwise kernels disappear.
    """
    launches: List[KernelLaunch] = []
    c = chain.c_bytes
    if chain.kind is ChainKind.GATED_FFN:
        per_branch_b = chain.b_bytes / 2
        launches.append(
            KernelLaunch(
                "gemm0_gate_silu", chain.gemm0_flops() / 2, chain.a_bytes + per_branch_b + c
            )
        )
        launches.append(
            KernelLaunch("gemm0_up", chain.gemm0_flops() / 2, chain.a_bytes + per_branch_b + c)
        )
        # The multiply is fused into the second branch's epilogue by reading
        # the first branch's result.
        launches[-1] = KernelLaunch(
            "gemm0_up_mul", chain.gemm0_flops() / 2, chain.a_bytes + per_branch_b + 2 * c
        )
    else:
        launches.append(
            KernelLaunch(
                "gemm0_act", chain.gemm0_flops(), chain.a_bytes + chain.b_bytes + c
            )
        )
    launches.append(
        KernelLaunch("gemm1", chain.gemm1_flops(), c + chain.d_bytes + chain.e_bytes)
    )
    return launches
