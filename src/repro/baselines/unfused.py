"""PyTorch / cuBLAS baseline: fully unfused execution.

PyTorch dispatches every operator of the chain to its own kernel (cuBLAS for
the GEMMs, elementwise kernels for activations and multiplies), so every
intermediate round-trips through global memory.  ``torch.compile`` removes
framework overhead but — as the paper's Figure 11 analysis observes — does
not fuse the compute-intensive chain itself.
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import Baseline, unfused_launches
from repro.ir.graph import GemmChainSpec
from repro.sim.engine import KernelLaunch


class PyTorchBaseline(Baseline):
    """Eager-style execution: one kernel per operator."""

    name = "pytorch"
    COMPUTE_EFFICIENCY = 0.42
    MEMORY_EFFICIENCY = 0.6
    OVERLAP = 0.5
    LAUNCH_OVERHEAD_US = 12.0

    def __init__(self, *args, torch_compile: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: ``torch.compile`` halves the effective launch overhead by removing
        #: framework dispatch between kernels; it does not change the kernel
        #: decomposition of the compute-intensive chain.
        self.torch_compile = torch_compile

    def kernel_launches(self, chain: GemmChainSpec) -> List[KernelLaunch]:
        return unfused_launches(chain)

    def run(self, chain: GemmChainSpec):
        result = super().run(chain)
        if self.torch_compile:
            saved = 0.5 * self.simulator.launch_overhead_us * (result.kernels - 1)
            result.time_us = max(result.time_us - saved, 1e-3)
            result.notes = "torch.compile enabled"
        return result
