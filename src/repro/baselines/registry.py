"""Baseline registry: build baselines by name.

The experiments refer to baselines by the names used in the paper's figures
(``pytorch``, ``tensorrt``, ``relay``, ``taso``, ``bolt``, ``chimera``,
``mirage``, ``pipethreader``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baselines.base import Baseline
from repro.baselines.cluster_handwritten import MirageBaseline
from repro.baselines.epilogue_fusion import RelayBaseline
from repro.baselines.fixed_order import BoltBaseline
from repro.baselines.graph_subst import TasoBaseline
from repro.baselines.pipelined import PipeThreaderBaseline
from repro.baselines.smem_fusion import ChimeraBaseline
from repro.baselines.tuned_library import TensorRTBaseline
from repro.baselines.unfused import PyTorchBaseline
from repro.hardware.spec import HardwareSpec

_REGISTRY: Dict[str, Callable[..., Baseline]] = {
    PyTorchBaseline.name: PyTorchBaseline,
    RelayBaseline.name: RelayBaseline,
    TasoBaseline.name: TasoBaseline,
    BoltBaseline.name: BoltBaseline,
    ChimeraBaseline.name: ChimeraBaseline,
    TensorRTBaseline.name: TensorRTBaseline,
    MirageBaseline.name: MirageBaseline,
    PipeThreaderBaseline.name: PipeThreaderBaseline,
}

#: All registered baseline names.
BASELINE_NAMES: List[str] = list(_REGISTRY)

#: Industry libraries (Figure 10's "libraries" group).
LIBRARY_BASELINES: List[str] = ["pytorch", "tensorrt"]

#: Research compilers (Figure 10's "compilers" group).
COMPILER_BASELINES: List[str] = ["relay", "taso", "bolt", "chimera"]


def make_baseline(name: str, device: Optional[HardwareSpec] = None, **kwargs) -> Baseline:
    """Instantiate a baseline by its figure name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; available: {BASELINE_NAMES}")
    return _REGISTRY[name](device=device, **kwargs)
