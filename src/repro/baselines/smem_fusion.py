"""Chimera / MCFuser baseline: analytical SMEM-only chain fusion.

Chimera reschedules the block execution order of a GEMM chain analytically
and keeps the intermediate in the shared memory (or registers) of a single
SM.  It therefore matches FlashFuser on small chains but fails — or must
round-trip through global memory — when the intermediate tile exceeds the
227 KB SMEM of one H100 SM, which is exactly what Figure 5 demonstrates on
OPT-1.3B- and GPT-6.7B-sized FFNs.
"""

from __future__ import annotations


from repro.baselines.base import Baseline, BaselineResult, unfused_launches
from repro.ir.graph import GemmChainSpec
from repro.search.engine import SearchEngine
from repro.search.space import SearchSpace


class ChimeraBaseline(Baseline):
    """Analytical single-SM fusion (no DSM), unfused fallback on failure."""

    name = "chimera"
    # Chimera's generated kernels trail hand-tuned libraries, and its SMEM-
    # only fusion degrades further once the intermediate no longer fits.
    COMPUTE_EFFICIENCY = 0.28
    MEMORY_EFFICIENCY = 0.42
    OVERLAP = 0.6
    LAUNCH_OVERHEAD_US = 6.0

    def __init__(self, *args, fallback: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fallback = fallback
        self._engine = SearchEngine(
            self.device,
            top_k=5,
            include_dsm=False,
            profiler=self.simulator.profile,
            space=SearchSpace(self.device, include_clusters=False),
        )

    # ------------------------------------------------------------------ #
    # Capability probe used by the Figure 5 experiment
    # ------------------------------------------------------------------ #
    def can_fuse(self, chain: GemmChainSpec) -> bool:
        """Whether single-SM fusion is feasible for this chain."""
        return self._engine.search(chain).succeeded

    def required_smem_bytes(self, chain: GemmChainSpec) -> int:
        """SMEM the intermediate of a (128, N) tile needs — Figure 5's metric."""
        m_tile = min(128, chain.m)
        return m_tile * chain.n * chain.itemsize * chain.num_gemm0_branches

    def run(self, chain: GemmChainSpec) -> BaselineResult:
        search = self._engine.search(chain)
        if search.succeeded:
            best = search.best
            assert best is not None
            report = self.simulator.simulate_plan(best.result)
            return BaselineResult(
                strategy=self.name,
                workload=chain.name,
                time_us=report.time_us,
                global_bytes=report.global_bytes,
                kernels=1,
                fused=True,
                notes="smem-only fusion",
            ).with_flops(chain.total_flops())

        if not self.fallback:
            return BaselineResult(
                strategy=self.name,
                workload=chain.name,
                time_us=float("inf"),
                global_bytes=float("inf"),
                kernels=0,
                fused=False,
                notes="fusion failed (intermediate exceeds SMEM)",
            ).with_flops(chain.total_flops())

        launches = unfused_launches(chain)
        report = self.simulator.simulate_kernels(launches)
        return BaselineResult(
            strategy=self.name,
            workload=chain.name,
            time_us=report.time_us,
            global_bytes=report.global_bytes,
            kernels=len(launches),
            fused=False,
            notes="fusion failed; unfused fallback",
        ).with_flops(chain.total_flops())
