"""PipeThreader-style baseline: inter-kernel pipelining without fusion.

PipeThreader overlaps the execution of dependent kernels at tile granularity
(the consumer starts as soon as the producer has finished the tiles it
needs), which hides part of the second kernel's time behind the first, but
the intermediate tensor still travels through global memory because the two
kernels remain separate.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineResult, epilogue_fused_launches
from repro.ir.graph import GemmChainSpec


class PipeThreaderBaseline(Baseline):
    """Epilogue-fused kernels whose executions partially overlap."""

    name = "pipethreader"
    COMPUTE_EFFICIENCY = 0.6
    MEMORY_EFFICIENCY = 0.75
    OVERLAP = 0.7
    LAUNCH_OVERHEAD_US = 5.0

    #: Fraction of the later kernels' time hidden behind their producers.
    PIPELINE_OVERLAP = 0.35

    def run(self, chain: GemmChainSpec) -> BaselineResult:
        launches = epilogue_fused_launches(chain)
        report = self.simulator.simulate_kernels(launches)
        per_kernel = report.time_us / max(1, len(launches))
        hidden = self.PIPELINE_OVERLAP * per_kernel * (len(launches) - 1)
        time_us = max(report.time_us - hidden, per_kernel)
        return BaselineResult(
            strategy=self.name,
            workload=chain.name,
            time_us=time_us,
            global_bytes=report.global_bytes,
            kernels=len(launches),
            fused=False,
            notes="tile-granular inter-kernel pipelining",
        ).with_flops(chain.total_flops())
