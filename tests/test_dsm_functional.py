"""Tests for the NumPy reference implementations of the dsm_comm collectives."""

import numpy as np
import pytest

from repro.dsm_comm.functional import (
    dsm_all_exchange,
    dsm_reduce_scatter,
    dsm_shuffle,
    inter_cluster_reduce,
)


def _blocks(count, shape=(4, 4), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(count)]


class TestAllExchange:
    def test_add_produces_sum_everywhere(self):
        blocks = _blocks(4)
        result = dsm_all_exchange(blocks, op="add")
        expected = sum(blocks)
        assert len(result) == 4
        for tile in result:
            np.testing.assert_allclose(tile, expected)

    def test_mul_produces_product(self):
        blocks = _blocks(3)
        result = dsm_all_exchange(blocks, op="mul")
        np.testing.assert_allclose(result[0], blocks[0] * blocks[1] * blocks[2])

    def test_single_block_identity(self):
        blocks = _blocks(1)
        result = dsm_all_exchange(blocks)
        np.testing.assert_allclose(result[0], blocks[0])

    def test_does_not_mutate_inputs(self):
        blocks = _blocks(2)
        copies = [b.copy() for b in blocks]
        dsm_all_exchange(blocks)
        for original, copy in zip(blocks, copies):
            np.testing.assert_array_equal(original, copy)

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            dsm_all_exchange(_blocks(2), op="max")

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            dsm_all_exchange([np.zeros((2, 2)), np.zeros((3, 3))])

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            dsm_all_exchange([])


class TestShuffle:
    def test_gathers_slices_in_order(self):
        blocks = [np.full((2, 3), float(i)) for i in range(4)]
        result = dsm_shuffle(blocks, axis=1)
        assert result[0].shape == (2, 12)
        np.testing.assert_allclose(result[0][:, 0:3], 0.0)
        np.testing.assert_allclose(result[0][:, 9:12], 3.0)

    def test_all_participants_get_same_result(self):
        blocks = _blocks(3)
        result = dsm_shuffle(blocks, axis=0)
        for tile in result[1:]:
            np.testing.assert_array_equal(result[0], tile)

    def test_axis_zero_concatenation(self):
        blocks = [np.ones((2, 2)), np.zeros((2, 2))]
        gathered = dsm_shuffle(blocks, axis=0)[0]
        assert gathered.shape == (4, 2)


class TestReduceScatter:
    def test_shards_reconstruct_the_sum(self):
        blocks = _blocks(4, shape=(4, 8))
        shards = dsm_reduce_scatter(blocks, op="add", axis=1)
        reconstructed = np.concatenate(shards, axis=1)
        np.testing.assert_allclose(reconstructed, sum(blocks))

    def test_each_block_owns_one_shard(self):
        blocks = _blocks(4, shape=(4, 8))
        shards = dsm_reduce_scatter(blocks, axis=1)
        assert len(shards) == 4
        assert all(shard.shape == (4, 2) for shard in shards)

    def test_mul_reduction(self):
        blocks = [np.full((2, 4), 2.0), np.full((2, 4), 3.0)]
        shards = dsm_reduce_scatter(blocks, op="mul", axis=1)
        np.testing.assert_allclose(np.concatenate(shards, axis=1), np.full((2, 4), 6.0))


class TestInterClusterReduce:
    def test_sums_partials(self):
        partials = _blocks(3)
        result = inter_cluster_reduce(partials)
        np.testing.assert_allclose(result, sum(partials))

    def test_single_cluster_identity(self):
        partials = _blocks(1)
        np.testing.assert_allclose(inter_cluster_reduce(partials), partials[0])
