"""Tests for the graph rewrite layer (canonicalize-then-extract).

Three groups:

* per-rule unit tests over the opening catalog (each rule's match, guard
  and substitution, exercised on the smallest graph that triggers it);
* driver contract tests (determinism, idempotence, fixpoint bound,
  reachability pre-pruning, provenance threading through extraction,
  plans, serving and the metrics registry);
* differential oracle tests pinning plan-neutrality: when no rule fires,
  rewrite on vs off is bit-identical down to the plan-cache keys, and when
  rules only eliminate identity operators the compiled segment costs equal
  those of the hand-canonical graph.

The named ``TestFuzzerRegressions`` cases are minimized counterexamples the
property fuzzer (``tests/test_rewrite_properties.py``) surfaced while the
rule set was being developed — committed as deterministic tests so the
exact shapes stay covered without the fuzzer in the loop.
"""

from __future__ import annotations

import pytest

from repro.api import FlashFuser, FusionError
from repro.analysis.lint import PLAN_NEUTRAL_CONFIG_FIELDS
from repro.config import FuserConfig
from repro.graphs import ModelServer, compile_graph, extract_chains
from repro.graphs.rewrite import (
    DEFAULT_RULES,
    GraphEdit,
    RewriteProvenance,
    canonicalize,
    graph_signature,
)
from repro.ir.builders import (
    build_attention_ffn_variant,
    build_conv_chain,
    build_gated_ffn,
    build_moe_layer,
    build_multibranch_residual_block,
    build_standard_ffn,
    build_transformer_layer,
)
from repro.ir.graph import ChainKind, OperatorGraph
from repro.ir.ops import (
    Activation,
    ActivationKind,
    Conv2d,
    Elementwise,
    Gemm,
    Reshape,
    Transpose,
)
from repro.ir.tensor import TensorSpec
from repro.ir.workloads import get_model, get_zoo_graph, list_graph_zoo
from repro.obs.metrics import MetricsRegistry
from repro.runtime import PlanCache

TINY = dict(m=64, n=256, k=128, l=128)


def _names(graph: OperatorGraph):
    return [op.name for op in graph.operators]


# --------------------------------------------------------------------- #
# Rule unit tests
# --------------------------------------------------------------------- #
class TestEliminationRules:
    def test_dead_reshape_and_transpose_are_dropped(self):
        graph, _ = build_standard_ffn("dead", **TINY)
        graph.add(Reshape("dead.flat", TensorSpec("dead.A", (64, 128)), (8192,)))
        graph.add(Transpose("dead.t", TensorSpec("dead.A", (64, 128))))
        result = canonicalize(graph)
        assert result.changed
        assert sorted(result.provenance.rules_fired) == [
            "eliminate-dead-movement-op",
            "eliminate-dead-movement-op",
        ]
        assert _names(result.graph) == ["dead.gemm0", "dead.act", "dead.gemm1"]

    def test_dead_identity_activation_is_dropped(self):
        graph, _ = build_standard_ffn("deadid", **TINY)
        tail = graph.producer_of("deadid.gemm1.out")
        graph.add(Activation("deadid.noop", ActivationKind.IDENTITY, tail.output))
        result = canonicalize(graph)
        assert result.provenance.rules_fired == ("eliminate-dead-movement-op",)
        assert "deadid.noop" not in _names(result.graph)

    def test_dead_nonidentity_activation_is_kept(self):
        # A ReLU with no consumers is a graph output, not debris.
        graph, _ = build_standard_ffn("out", **TINY)
        tail = graph.producer_of("out.gemm1.out")
        graph.add(Activation("out.final", ActivationKind.RELU, tail.output))
        assert not canonicalize(graph).changed

    def test_interior_identity_is_eliminated_and_rewired(self):
        # x -> identity -> gemm: not chain position (producer is an input).
        x = TensorSpec("g.x", (16, 8))
        w = TensorSpec("g.w", (8, 4))
        graph = OperatorGraph("g")
        noop = graph.add(Activation("g.noop", ActivationKind.IDENTITY, x))
        graph.add(Gemm("g.mm", lhs=noop.output.with_shape((16, 8)), rhs=w))
        result = canonicalize(graph)
        assert result.provenance.rules_fired == ("eliminate-identity-activation",)
        (gemm,) = result.graph.operators
        assert gemm.lhs.name == "g.x"

    def test_identity_in_chain_position_is_kept(self):
        # gemm -> identity -> gemm is the canonical activation-free chain
        # spelling; eliminating the link would oscillate with insertion.
        graph, _ = build_standard_ffn("keep", **TINY)
        graph = OperatorGraph(
            "keep",
            [
                op
                if not isinstance(op, Activation)
                else Activation(op.name, ActivationKind.IDENTITY, op.input_spec)
                for op in graph.operators
            ],
        )
        assert not canonicalize(graph).changed
        assert extract_chains(graph).num_chains == 1

    def test_interior_reshape_is_eliminated(self):
        graph = build_multibranch_residual_block(
            "res", batch=2, channels=16, height=4, width=4, mid_channels=8
        )
        result = canonicalize(graph)
        assert result.provenance.rules_fired == ("eliminate-reshape",)
        assert "res.flatten" not in _names(result.graph)
        conv2 = result.graph.producer_of("res.conv2.out")
        assert conv2.input_spec.name == "res.act.out"


class TestTransposeRules:
    def test_double_transpose_cancels_and_inner_goes_dead(self):
        # The pair transposes a *produced* tensor (folding does not apply):
        # cancellation rewires around it, the dead-movement sweep collects
        # the stranded inner transpose, and the now-adjacent GEMM pair gets
        # its chain link — three rules composing across passes.
        a = TensorSpec("t.A", (8, 4))
        b = TensorSpec("t.B", (4, 8))
        w = TensorSpec("t.w", (8, 2))
        graph = OperatorGraph("t")
        mm0 = graph.add(Gemm("t.mm0", lhs=a, rhs=b))
        t0 = graph.add(Transpose("t.t0", mm0.output))
        t1 = graph.add(Transpose("t.t1", t0.output))
        graph.add(Gemm("t.mm1", lhs=t1.output, rhs=w))
        result = canonicalize(graph)
        assert result.provenance.rules_fired == (
            "cancel-double-transpose",
            "eliminate-dead-movement-op",
            "insert-chain-activation",
        )
        mm1 = result.graph.producer_of("t.mm1.out")
        assert mm1.lhs.name == "t.mm0.link.out"
        assert extract_chains(result.graph).num_chains == 1

    def test_input_double_transpose_folds_instead(self):
        # Both transposes sit on a graph input, so folding (which comes
        # later in the catalog but earlier in operator scan order) resolves
        # the pair one transpose at a time.
        x = TensorSpec("t2.x", (8, 4))
        w = TensorSpec("t2.w", (4, 2))
        graph = OperatorGraph("t2")
        t0 = graph.add(Transpose("t2.t0", x))
        t1 = graph.add(Transpose("t2.t1", t0.output))
        graph.add(Gemm("t2.mm", lhs=t1.output, rhs=w))
        result = canonicalize(graph)
        assert result.provenance.fired_counts() == {"fold-input-transpose": 2}
        (gemm,) = result.graph.operators
        assert gemm.lhs.shape == (8, 4)

    def test_input_transpose_folds_to_synthetic_weight(self):
        x = TensorSpec("f.x", (8, 4))
        w_t = TensorSpec("f.Wt", (2, 4))  # stored transposed
        graph = OperatorGraph("f")
        t = graph.add(Transpose("f.T", w_t))
        graph.add(Gemm("f.mm", lhs=x, rhs=t.output))
        result = canonicalize(graph)
        assert result.provenance.rules_fired == ("fold-input-transpose",)
        (gemm,) = result.graph.operators
        assert gemm.rhs.name == "f.T.folded"
        assert gemm.rhs.shape == (4, 2)
        assert result.graph.producer_of("f.T.folded") is None

    def test_fold_records_new_input_on_declared_graphs(self):
        x = TensorSpec("d.x", (8, 4))
        w_t = TensorSpec("d.Wt", (2, 4))
        graph = OperatorGraph("d", inputs=[x, w_t])
        t = graph.add(Transpose("d.T", w_t))
        graph.add(Gemm("d.mm", lhs=x, rhs=t.output))
        result = canonicalize(graph)
        declared = {spec.name for spec in result.graph.declared_inputs}
        assert "d.T.folded" in declared
        assert result.graph.validate() is result.graph

    def test_interior_transpose_is_left_alone(self):
        # transpose of a *produced* tensor that is not a double transpose:
        # no rule claims it (folding it would change real data movement).
        x = TensorSpec("i.x", (8, 8))
        w = TensorSpec("i.w", (8, 8))
        graph = OperatorGraph("i")
        mm = graph.add(Gemm("i.mm", lhs=x, rhs=w))
        t = graph.add(Transpose("i.T", mm.output))
        graph.add(Gemm("i.mm2", lhs=t.output, rhs=w))
        assert not canonicalize(graph).changed


class TestCanonicalizationRules:
    def test_mirrored_gating_operands_are_swapped(self):
        graph = build_moe_layer("moe", m=16, hidden=8, intermediate=16, experts=1)
        result = canonicalize(graph)
        assert result.provenance.fired_counts() == {
            "eliminate-reshape": 1,
            "order-commutative-operands": 1,
        }
        mul = result.graph.producer_of("moe.e0.mul.out")
        assert isinstance(result.graph.producer_of(mul.lhs.name), Activation)

    def test_canonical_operand_order_is_stable(self):
        graph, _ = build_gated_ffn("gated", **TINY)
        assert not canonicalize(graph).changed

    def test_missing_activation_gets_identity_link(self):
        a = TensorSpec("bare.A", (16, 8))
        b = TensorSpec("bare.B", (8, 4))
        d = TensorSpec("bare.D", (4, 4))
        graph = OperatorGraph("bare")
        g0 = graph.add(Gemm("bare.g0", lhs=a, rhs=b))
        graph.add(Gemm("bare.g1", lhs=g0.output, rhs=d))
        result = canonicalize(graph)
        assert result.provenance.rules_fired == ("insert-chain-activation",)
        link = result.graph.producer_of("bare.g0.link.out")
        assert isinstance(link, Activation)
        assert link.kind is ActivationKind.IDENTITY
        extraction = extract_chains(result.graph)
        assert extraction.num_chains == 1
        assert extraction.matches[0].kind is ChainKind.STANDARD_FFN

    def test_conv_pair_without_activation_gets_link(self):
        graph, _ = build_conv_chain(
            "cc",
            batch=1,
            in_channels=8,
            height=4,
            width=4,
            out_channels1=16,
            out_channels2=8,
            kernel1=1,
            kernel2=1,
        )
        conv1 = graph.producer_of("cc.conv1.out")
        conv2 = graph.producer_of("cc.conv2.out")
        # The same pair with its ReLU constant-folded away by an exporter.
        bare = OperatorGraph(
            "cc", [conv1, Conv2d(conv2.name, conv1.output, conv2.weight)]
        )
        result = canonicalize(bare)
        assert result.provenance.rules_fired == ("insert-chain-activation",)
        assert extract_chains(result.graph).num_chains == 1


# --------------------------------------------------------------------- #
# Driver contract
# --------------------------------------------------------------------- #
class _AlwaysSwap:
    """A deliberately diverging rule: swaps elementwise operands forever."""

    name = "always-swap"
    anchors = frozenset({Elementwise})

    def match(self, graph, op):
        swapped = Elementwise(op.name, op.kind, lhs=op.rhs, rhs=op.lhs)
        return GraphEdit(drop=(op.name,), insert_after=((op.name, swapped),))


class TestDriver:
    def test_oscillating_rule_set_trips_fixpoint_bound(self):
        graph, _ = build_gated_ffn("osc", **TINY)
        with pytest.raises(FusionError, match="fixpoint"):
            canonicalize(graph, rules=[_AlwaysSwap()], max_firings=5)

    def test_rule_firing_order_is_deterministic(self):
        first = canonicalize(get_zoo_graph("moe_layer", m=32))
        second = canonicalize(get_zoo_graph("moe_layer", m=32))
        assert first.provenance.rules_fired == second.provenance.rules_fired
        assert graph_signature(first.graph) == graph_signature(second.graph)

    @pytest.mark.parametrize("entry", list_graph_zoo())
    def test_canonicalize_is_idempotent_on_zoo(self, entry):
        once = canonicalize(get_zoo_graph(entry, m=32))
        twice = canonicalize(once.graph)
        assert not twice.changed
        assert graph_signature(twice.graph) == graph_signature(once.graph)

    def test_pre_pruning_skips_absent_anchor_types(self):
        graph, _ = build_standard_ffn("plain", **TINY)
        provenance = canonicalize(graph).provenance
        assert provenance.rules_fired == ()
        # Reshape/Transpose-anchored rules prune on a movement-op-free graph.
        assert provenance.rules_pruned > 0

    def test_invalid_graph_is_rejected_before_rewriting(self):
        graph = OperatorGraph("cyclic")
        graph.add(Gemm("a", lhs=TensorSpec("b.out", (4, 4)), rhs=TensorSpec("w", (4, 4))))
        graph.add(Gemm("b", lhs=TensorSpec("a.out", (4, 4)), rhs=TensorSpec("v", (4, 4))))
        with pytest.raises(FusionError, match="cycle"):
            canonicalize(graph)

    def test_provenance_payload_shape_is_pinned(self):
        provenance = canonicalize(get_zoo_graph("residual_block", m=64)).provenance
        payload = provenance.to_dict()
        assert list(payload) == [
            "graph",
            "passes",
            "rules_fired",
            "fired_counts",
            "ops_before",
            "ops_after",
            "ops_eliminated",
            "rules_pruned",
        ]
        assert payload["ops_eliminated"] == 1
        assert payload["ops_before"] - payload["ops_eliminated"] == payload["ops_after"]

    def test_default_catalog_order_is_pinned(self):
        assert [rule.name for rule in DEFAULT_RULES] == [
            "eliminate-dead-movement-op",
            "eliminate-identity-activation",
            "eliminate-reshape",
            "cancel-double-transpose",
            "fold-input-transpose",
            "order-commutative-operands",
            "insert-chain-activation",
        ]


# --------------------------------------------------------------------- #
# Wiring: extraction, plans, serving, config, metrics
# --------------------------------------------------------------------- #
class TestWiring:
    def test_extract_chains_is_rewrite_off_by_default(self):
        graph = get_zoo_graph("attention_ffn", m=32)
        assert extract_chains(graph).num_chains == 0
        assert extract_chains(graph).rewrite is None
        assert extract_chains(graph, rewrite=True).num_chains == 1

    def test_rewrite_flag_is_plan_neutral(self):
        config = FuserConfig()
        assert config.rewrite is True
        assert "rewrite" in PLAN_NEUTRAL_CONFIG_FIELDS
        assert "rewrite" not in config.cache_key_fields()

    def test_plan_summary_carries_rewrite_provenance(self, h100):
        graph = get_zoo_graph("moe_layer", m=32)
        with FlashFuser(device=h100, top_k=3, max_tile=128) as compiler:
            plan = compile_graph(graph, compiler=compiler)
        summary = plan.summary()
        assert summary["rewrite"]["fired_counts"] == {
            "eliminate-reshape": 2,
            "order-commutative-operands": 2,
        }
        assert len(plan.fused_segments) == 2

    def test_rewrite_off_compiler_plans_without_provenance(self, h100):
        graph, _ = build_standard_ffn("off", **TINY)
        with FlashFuser(
            device=h100, top_k=3, max_tile=128, rewrite=False
        ) as compiler:
            plan = compile_graph(graph, compiler=compiler)
        assert plan.summary()["rewrite"] is None

    def test_model_server_exposes_rewrite_provenance(self, h100):
        with ModelServer(device=h100, top_k=3, max_tile=128) as server:
            server.register("moe", lambda m: get_zoo_graph("moe_layer", m=m))
            response = server.serve("moe", m=32)
        assert response.rewrite_provenance is not None
        assert response.rewrite_provenance.rules_fired != ()

    def test_metrics_publisher_renders_rewrite_counters(self):
        provenance = canonicalize(get_zoo_graph("moe_layer", m=32)).provenance
        registry = MetricsRegistry()
        registry.publish_rewrite_provenance(provenance.to_dict(), graph="moe")
        text = registry.prometheus_text()
        assert "repro_rewrite_passes_total" in text
        assert 'rule="eliminate-reshape"' in text
        assert "repro_rewrite_ops_eliminated_total" in text


# --------------------------------------------------------------------- #
# Differential oracles: plan-neutrality, pinned bit-identically
# --------------------------------------------------------------------- #
class TestDifferentialOracle:
    @pytest.mark.parametrize("model", ["BERT", "LLaMA-1B"])
    def test_zoo_models_extract_identically_with_rewrite_on(self, model):
        # Canonical graphs fire no rule, so rewrite on vs off must agree
        # down to the plan-cache identity of every extracted chain.
        graph = get_model(model).layer_graph(seq_len=64)
        off = extract_chains(graph)
        on = extract_chains(graph, rewrite=True)
        assert on.rewrite.rules_fired == ()
        assert [m.operator_names for m in on.matches] == [
            m.operator_names for m in off.matches
        ]
        assert [m.chain.canonical_hash() for m in on.matches] == [
            m.chain.canonical_hash() for m in off.matches
        ]

    def test_hand_canonical_graphs_fire_no_rules(self):
        graphs = [
            build_standard_ffn("h1", **TINY)[0],
            build_gated_ffn("h2", **TINY)[0],
            build_conv_chain(
                "h3",
                batch=1,
                in_channels=8,
                height=4,
                width=4,
                out_channels1=16,
                out_channels2=8,
                kernel1=1,
                kernel2=1,
            )[0],
            build_transformer_layer("h4", m=32, hidden=64, intermediate=128),
        ]
        for graph in graphs:
            result = canonicalize(graph)
            assert not result.changed, graph.name
            assert graph_signature(result.graph) == graph_signature(graph)

    def test_rewrite_on_reuses_rewrite_off_cache_entries(self, h100, tmp_path):
        # The strongest key oracle: plans compiled with rewrite off must be
        # cache hits for a rewrite-on compiler over the same store.
        graph, _ = build_standard_ffn("oracle", **TINY)
        cache = PlanCache(directory=tmp_path / "plans")
        with FlashFuser(
            device=h100, top_k=3, max_tile=128, cache=cache, rewrite=False
        ) as compiler:
            cold = compile_graph(graph, compiler=compiler)
        assert cold.cache_hits == 0
        with FlashFuser(
            device=h100, top_k=3, max_tile=128, cache=cache, rewrite=True
        ) as compiler:
            warm = compile_graph(graph, compiler=compiler)
        assert warm.cache_hits == len(warm.fused_segments) == 1
        assert warm.time_us == cold.time_us

    def test_identity_only_elimination_keeps_segment_costs(self, h100):
        # A graph whose only rewrites eliminate identity/dead movement ops
        # must compile to the same segment costs as the clean spelling.
        clean, _ = build_standard_ffn("samecost", **TINY)
        noisy, _ = build_standard_ffn("samecost", **TINY)
        tail = noisy.producer_of("samecost.gemm1.out")
        noisy.add(
            Activation("samecost.noop", ActivationKind.IDENTITY, tail.output)
        )
        with FlashFuser(device=h100, top_k=3, max_tile=128) as compiler:
            clean_plan = compile_graph(clean, compiler=compiler)
            noisy_plan = compile_graph(noisy, compiler=compiler)
        assert noisy_plan.extraction.rewrite.fired_counts() == {
            "eliminate-dead-movement-op": 1
        }
        assert [
            (segment.kind, segment.time_us, segment.unfused_time_us)
            for segment in noisy_plan.segments
        ] == [
            (segment.kind, segment.time_us, segment.unfused_time_us)
            for segment in clean_plan.segments
        ]


# --------------------------------------------------------------------- #
# Fuzzer-minimized regressions (committed as deterministic tests)
# --------------------------------------------------------------------- #
class TestFuzzerRegressions:
    def test_shared_intermediate_blocks_match_both_ways(self):
        # The activation output feeds two GEMMs: the region intermediate is
        # not private, so neither raw nor rewritten extraction may match —
        # and the rewriter must not fabricate privacy.
        graph, _ = build_standard_ffn("shared", **TINY)
        act = graph.producer_of("shared.act.out")
        graph.add(
            Gemm(
                "shared.branch",
                lhs=act.output.with_shape((TINY["m"], TINY["n"])),
                rhs=TensorSpec("shared.W2", (TINY["n"], TINY["l"])),
            )
        )
        on = extract_chains(graph, rewrite=True)
        assert extract_chains(graph).num_chains == 0
        assert on.num_chains == 0
        assert on.rewrite.rules_fired == ()

    def test_produced_weight_blocks_link_insertion(self):
        # gemm1's weight is itself produced by a GEMM: the pair is not a
        # resident-weight chain, so insert-chain-activation must not fire —
        # neither on the data-slot pair nor on the weight-producing GEMM.
        a = TensorSpec("pw.A", (16, 8))
        b = TensorSpec("pw.B", (8, 4))
        u = TensorSpec("pw.U", (4, 4))
        v = TensorSpec("pw.V", (4, 4))
        graph = OperatorGraph("pw")
        g0 = graph.add(Gemm("pw.g0", lhs=a, rhs=b))
        wgen = graph.add(Gemm("pw.wgen", lhs=u, rhs=v))
        graph.add(Gemm("pw.g1", lhs=g0.output, rhs=wgen.output))
        result = canonicalize(graph)
        assert not result.changed
        assert extract_chains(result.graph).num_chains == 0

    def test_inserted_link_does_not_steal_the_first_region(self):
        # G0 -> act -> G1 -> G2: the raw graph matches (G0, act, G1); the
        # rewriter also links G1 -> G2, but the overlap tie-break must keep
        # claiming the first region, never fewer chains and the same anchor.
        a = TensorSpec("tie.A", (16, 8))
        b = TensorSpec("tie.B", (8, 8))
        c = TensorSpec("tie.C", (8, 8))
        d = TensorSpec("tie.D", (8, 8))
        graph = OperatorGraph("tie")
        g0 = graph.add(Gemm("tie.g0", lhs=a, rhs=b))
        act = graph.add(Activation("tie.act", ActivationKind.RELU, g0.output))
        g1 = graph.add(Gemm("tie.g1", lhs=act.output, rhs=c))
        graph.add(Gemm("tie.g2", lhs=g1.output, rhs=d))
        off = extract_chains(graph)
        on = extract_chains(graph, rewrite=True)
        assert on.rewrite.rules_fired == ("insert-chain-activation",)
        assert off.num_chains == on.num_chains == 1
        assert on.matches[0].operator_names == ("tie.g0", "tie.act", "tie.g1")

    def test_gated_chain_identity_link_survives_elimination(self):
        # A gated FFN whose activation was exported as IDENTITY: the link
        # sits producer->Elementwise, which is chain position, so identity
        # elimination must keep it and extraction must still match.
        graph, _ = build_gated_ffn("gid", **TINY)
        graph = OperatorGraph(
            "gid",
            [
                op
                if not isinstance(op, Activation)
                else Activation(op.name, ActivationKind.IDENTITY, op.input_spec)
                for op in graph.operators
            ],
        )
        result = canonicalize(graph)
        assert not result.changed
        assert extract_chains(graph, rewrite=True).num_chains == 1

    @pytest.mark.parametrize("entry", list_graph_zoo())
    def test_zoo_graphs_never_extract_fewer_chains(self, entry):
        graph = get_zoo_graph(entry, m=64)
        off = extract_chains(graph).num_chains
        on = extract_chains(graph, rewrite=True).num_chains
        assert off == 0
        assert on >= 1
