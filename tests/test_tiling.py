"""Tests for tile configurations and candidate tile enumeration."""

import pytest

from repro.dataflow.tiling import (
    TileConfig,
    candidate_tile_sizes,
    count_unpruned_tiles,
    enumerate_block_tiles,
)
from repro.dsm_comm.geometry import ClusterGeometry
from repro.hardware.cluster import ClusterLimits
from repro.ir.builders import build_standard_ffn


def _chain(m=128, n=512, k=256, l=256):
    _, spec = build_standard_ffn("tile-chain", m=m, n=n, k=k, l=l)
    return spec


class TestTileConfig:
    def test_accessors(self):
        tile = TileConfig(64, 128, 32, 16)
        assert tile.block_of("m") == 64
        assert tile.as_dict() == {"m": 64, "n": 128, "k": 32, "l": 16}

    def test_positive_required(self):
        with pytest.raises(ValueError):
            TileConfig(0, 16, 16, 16)

    def test_cluster_tile_multiplies_geometry(self):
        tile = TileConfig(64, 64, 32, 64)
        cluster = tile.cluster_tile(ClusterGeometry(2, 4, 2, 4))
        assert cluster == {"m": 128, "n": 256, "k": 64, "l": 256}

    def test_respects_mma(self):
        limits = ClusterLimits()
        assert TileConfig(64, 64, 32, 64).respects_mma(limits)
        assert not TileConfig(64, 60, 32, 64).respects_mma(limits)

    def test_divides_problem_exact(self):
        chain = _chain()
        geometry = ClusterGeometry.single_block()
        assert TileConfig(64, 128, 64, 64).divides_problem(chain, geometry)
        assert not TileConfig(96, 128, 64, 64).divides_problem(chain, geometry)

    def test_divides_problem_with_padding_waste(self):
        chain = _chain(m=196)  # irregular conv-style extent
        geometry = ClusterGeometry.single_block()
        tile = TileConfig(16, 128, 64, 64)
        assert not tile.divides_problem(chain, geometry)
        assert tile.divides_problem(chain, geometry, max_padding_waste=0.10)

    def test_fits_problem(self):
        chain = _chain()
        assert TileConfig(128, 256, 128, 128).fits_problem(chain)
        assert not TileConfig(256, 256, 128, 128).fits_problem(chain)


class TestCandidateTiles:
    def test_powers_of_two_sequence(self):
        assert candidate_tile_sizes(256) == [16, 32, 64, 128, 256]

    def test_respects_max_tile(self):
        assert max(candidate_tile_sizes(4096, max_tile=128)) == 128

    def test_small_extent_gets_at_least_one(self):
        assert candidate_tile_sizes(8) == [8]

    def test_non_power_of_two_option(self):
        sizes = candidate_tile_sizes(96, powers_of_two_only=False)
        assert 48 in sizes and 96 in sizes

    def test_rejects_non_positive_extent(self):
        with pytest.raises(ValueError):
            candidate_tile_sizes(0)

    def test_enumerate_block_tiles_cross_product(self):
        chain = _chain(m=64, n=64, k=64, l=64)
        tiles = list(enumerate_block_tiles(chain, max_tile=64))
        assert len(tiles) == 3**4  # {16,32,64} per dimension

    def test_count_unpruned_tiles_matches_paper_formula(self):
        # GPT-6.7B pruning-analysis problem: 256 x 16384 x 4096 x 4096.
        chain = _chain(m=256, n=16384, k=4096, l=4096)
        assert count_unpruned_tiles(chain) == (256 // 16) * (16384 // 16) * (4096 // 16) ** 2
