"""Tests for footprints, reuse analysis (Figure 9) and I/O traffic."""

import pytest

from repro.dataflow.footprint import (
    ACCUMULATOR_ITEMSIZE,
    TENSOR_DIMS,
    block_tile_footprint,
    cluster_tile_footprint,
    io_tensor_traffic,
    reused_tensor_footprint,
    tensor_size_bytes,
    temporal_trip_count,
)
from repro.dataflow.loop_schedule import LoopSchedule
from repro.dataflow.tiling import TileConfig
from repro.dsm_comm.geometry import ClusterGeometry
from repro.ir.builders import build_gated_ffn, build_standard_ffn


def _chain(m=128, n=1024, k=512, l=512, gated=False):
    builder = build_gated_ffn if gated else build_standard_ffn
    _, spec = builder("fp-chain", m=m, n=n, k=k, l=l)
    return spec


TILE = TileConfig(128, 128, 64, 128)
SINGLE = ClusterGeometry.single_block()


class TestSizes:
    def test_tensor_dims_cover_all_tensors(self):
        assert set(TENSOR_DIMS) == {"A", "B", "C", "D", "E"}

    def test_tensor_size_bytes(self):
        chain = _chain()
        assert tensor_size_bytes("A", chain) == chain.a_bytes
        assert tensor_size_bytes("C", chain) == chain.c_bytes
        assert tensor_size_bytes("B", _chain(gated=True)) == _chain(gated=True).b_bytes

    def test_block_tile_footprint(self):
        assert block_tile_footprint("C", TILE, itemsize=2) == 128 * 128 * 2

    def test_cluster_tile_footprint_scales_with_geometry(self):
        geometry = ClusterGeometry(2, 2, 1, 2)
        assert cluster_tile_footprint("C", TILE, geometry, 2) == 256 * 256 * 2


class TestTripCount:
    def test_spatial_dimension_has_one_trip(self):
        chain = _chain()
        schedule = LoopSchedule.from_string("n", "mlk")
        assert temporal_trip_count("n", chain, schedule, TILE, SINGLE) == 1

    def test_temporal_trip_count_uses_cluster_tile(self):
        chain = _chain(n=1024)
        schedule = LoopSchedule.from_string("m", "nlk")
        assert temporal_trip_count("n", chain, schedule, TILE, SINGLE) == 8
        assert temporal_trip_count("n", chain, schedule, TILE, ClusterGeometry(1, 2, 1, 2)) == 4


class TestReusedTensor:
    def test_l_outer_keeps_full_c_row(self):
        # Figure 9(a): MLNK requires the complete intermediate row of C.
        chain = _chain()
        schedule = LoopSchedule.from_string("m", "lnk")
        info = reused_tensor_footprint(chain, schedule, TILE, SINGLE)
        assert info.tensor == "C"
        assert info.footprint_bytes == 128 * chain.n * 2
        assert info.accesses_per_trip == 1

    def test_n_outer_keeps_partial_e(self):
        # Figure 9(b): MNLK accumulates partial E across the n loop.
        chain = _chain()
        schedule = LoopSchedule.from_string("m", "nlk")
        info = reused_tensor_footprint(chain, schedule, TILE, SINGLE)
        assert info.tensor == "E"
        assert info.footprint_bytes == 128 * chain.l * ACCUMULATOR_ITEMSIZE
        assert info.accesses_per_trip == 2

    def test_spatial_n_shrinks_footprint_to_cluster_tile(self):
        chain = _chain()
        schedule = LoopSchedule.from_string("n", "mlk")
        info = reused_tensor_footprint(chain, schedule, TILE, SINGLE)
        assert info.tensor == "C"
        assert info.footprint_bytes == 128 * TILE.block_n * 2

    def test_spatial_l_keeps_accumulators(self):
        chain = _chain()
        schedule = LoopSchedule.from_string("l", "mnk")
        info = reused_tensor_footprint(chain, schedule, TILE, SINGLE)
        assert info.tensor == "E"

    def test_both_spatial_consumed_in_place(self):
        chain = _chain()
        schedule = LoopSchedule.from_string("nl", "mk")
        info = reused_tensor_footprint(chain, schedule, TILE, SINGLE)
        assert info.reuse_trips == 1

    def test_cluster_reduces_reuse_trips(self):
        chain = _chain()
        schedule = LoopSchedule.from_string("m", "lnk")
        single = reused_tensor_footprint(chain, schedule, TILE, SINGLE)
        clustered = reused_tensor_footprint(chain, schedule, TILE, ClusterGeometry(1, 4, 1, 4))
        assert clustered.reuse_trips < single.reuse_trips

    def test_bigger_intermediate_means_bigger_footprint(self):
        schedule = LoopSchedule.from_string("m", "lnk")
        small = reused_tensor_footprint(_chain(n=1024), schedule, TILE, SINGLE)
        large = reused_tensor_footprint(_chain(n=4096), schedule, TILE, SINGLE)
        assert large.footprint_bytes > small.footprint_bytes


class TestIoTraffic:
    def test_weight_reread_when_m_is_outer(self):
        # With m temporal and outer, the weights B and D are streamed once
        # per m tile.
        chain = _chain(m=512)
        schedule = LoopSchedule.from_string("k", "mnl")
        traffic = io_tensor_traffic("B", chain, schedule, TILE, SINGLE)
        # B is indexed by (k, n); m sits outside its innermost loop (n), so
        # the whole tensor is re-read for every one of the four m tiles.
        assert traffic == pytest.approx(4 * tensor_size_bytes("B", chain))

    def test_no_reread_when_unrelated_loop_is_innermost(self):
        chain = _chain()
        # A is indexed by (m, k); l and n nested inside its loops do not
        # force re-reads ... but here n is outer than k so it does.
        schedule = LoopSchedule.from_string("m", "nlk")
        traffic_a = io_tensor_traffic("A", chain, schedule, TILE, SINGLE)
        assert traffic_a >= tensor_size_bytes("A", chain)

    def test_spatial_dims_do_not_multiply_traffic(self):
        chain = _chain()
        schedule_spatial = LoopSchedule.from_string("mn", "lk")
        traffic = io_tensor_traffic("D", chain, schedule_spatial, TILE, SINGLE)
        assert traffic == pytest.approx(tensor_size_bytes("D", chain))

    def test_traffic_never_below_tensor_size(self):
        chain = _chain()
        for spatial, temporal in [("m", "nlk"), ("m", "lnk"), ("mn", "lk")]:
            schedule = LoopSchedule.from_string(spatial, temporal)
            for tensor in ("A", "B", "D"):
                assert io_tensor_traffic(tensor, chain, schedule, TILE, SINGLE) >= tensor_size_bytes(
                    tensor, chain
                ) - 1e-6
