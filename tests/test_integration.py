"""Integration tests: the full pipeline from workload to generated kernel.

These tests tie the layers together the way the paper's system does:
workload -> search engine (pruning + cost model) -> dataflow analysis ->
execution plan -> code generation -> simulated performance -> comparison
against baselines, plus functional validation of the selected plan's cluster
geometry through the NumPy executor.
"""

import numpy as np
import pytest

from repro import FlashFuser
from repro.baselines import make_baseline
from repro.codegen.kernel_ir import KernelSection
from repro.dataflow.tiling import TileConfig
from repro.ir.builders import build_standard_ffn
from repro.ir.workloads import get_workload
from repro.sim.executor import FunctionalExecutor, make_chain_inputs


class TestEndToEndCompilation:
    def test_paper_workload_pipeline(self, fast_compiler):
        kernel = fast_compiler.compile_workload("G4")
        # The selected plan respects every pruning rule by construction.
        plan = kernel.plan
        sizes = plan.chain.dimension_sizes()
        for dim in sizes:
            assert plan.tile.block_of(dim) <= sizes[dim]
        # The generated source reflects the plan's cluster geometry.
        assert plan.kernel_name in kernel.source
        assert kernel.kernel_ir.section(KernelSection.MAINLOOP)

    def test_large_workload_beats_every_baseline(self, fast_compiler):
        chain = get_workload("G8").to_spec()
        kernel = fast_compiler.compile(chain)
        for name in ("pytorch", "relay", "chimera", "bolt"):
            baseline = make_baseline(name, device=fast_compiler.device)
            assert baseline.run(chain).time_us > kernel.time_us

    def test_fused_traffic_below_pytorch(self, fast_compiler):
        chain = get_workload("C5").to_spec()
        kernel = fast_compiler.compile(chain)
        pytorch = make_baseline("pytorch", device=fast_compiler.device)
        assert kernel.traffic.total_bytes < pytorch.run(chain).global_bytes

    def test_selected_plan_is_numerically_correct(self, fast_compiler):
        # Compile a small chain, then execute its cluster geometry with the
        # functional executor and compare against the reference.
        _, chain = build_standard_ffn("int-func", m=64, n=256, k=128, l=128)
        kernel = fast_compiler.compile(chain)
        geometry = kernel.plan.geometry
        executor = FunctionalExecutor(chain)
        inputs = make_chain_inputs(chain, seed=9)
        tile = TileConfig(16, 16, 16, 16)
        if all(
            chain.dimension_sizes()[dim] % (16 * geometry.size_of(dim)) == 0
            for dim in ("m", "n", "k", "l")
        ):
            fused = executor.run_fused(inputs, geometry, tile)
            np.testing.assert_allclose(
                fused, executor.run_reference(inputs), rtol=1e-9, atol=1e-9
            )

    def test_dsm_ablation_consistency(self, h100, small_chain, large_chain):
        # With DSM disabled the large chain cannot fuse; the small one still
        # can, and its plan never uses a cluster.
        no_dsm = FlashFuser(device=h100, include_dsm=False, top_k=3, max_tile=128)
        small_kernel = no_dsm.compile(small_chain)
        assert small_kernel.plan.geometry.blocks_per_cluster == 1
        from repro.api import FusionError

        with pytest.raises(FusionError):
            no_dsm.compile(large_chain)

    def test_search_is_deterministic(self, h100, small_chain):
        first = FlashFuser(device=h100, top_k=3, max_tile=128).compile(small_chain)
        second = FlashFuser(device=h100, top_k=3, max_tile=128).compile(small_chain)
        assert first.plan.summary() == second.plan.summary()
        assert first.time_us == pytest.approx(second.time_us)

    def test_kernel_table_runtime_binning(self, fast_compiler, small_chain):
        table = fast_compiler.compile_table(small_chain, m_bins=(64, 128))
        assert table.lookup(100).plan.chain.m == 128
        assert table.lookup(10).plan.chain.m == 64
